"""Query registry, execution context, and shared validation helpers.

Execution model
---------------

A :class:`QueryContext` carries everything a handler needs: the
database, the virtual clock, the journal, the authenticated caller, and
the client-program name (which becomes ``modwith`` in audit fields).

A :class:`Query` couples the paper's metadata (long name, 4-char short
name, argument and return signatures) with two callables:

``check_access(ctx, args)``
    Returns True if the caller may run the query with these arguments.
    This implements both the capacls capability lists and the paper's
    per-query relaxations ("the target user may retrieve his own
    information", "anyone adding themselves to a public list", "someone
    on the ACE of the target service", ...).

``handler(ctx, args)``
    Performs the query, returning a list of result tuples (possibly
    empty) for retrievals or ``[]`` for mutations.  Raises
    :class:`MoiraError` on any failure.

Side-effecting queries are journaled on success.  Retrieval queries that
produce no rows raise ``MR_NO_MATCH`` exactly as the paper specifies.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace as _replace
from typing import Callable, Optional, Sequence

from repro.db.engine import Database, Row, WildcardPattern
from repro.db.journal import Journal
from repro.errors import (
    MoiraError,
    MR_ACE,
    MR_ARGS,
    MR_CLUSTER,
    MR_LIST,
    MR_MACHINE,
    MR_NO_MATCH,
    MR_NOT_UNIQUE,
    MR_PERM,
    MR_TYPE,
    MR_USER,
    MR_WILDCARD,
)
from repro.sim.clock import Clock

__all__ = [
    "Query",
    "QueryContext",
    "register",
    "get_query",
    "all_queries",
    "exactly_one",
    "no_wildcards",
    "query_lock",
]

_REGISTRY: dict[str, "Query"] = {}
_BY_SHORT: dict[str, "Query"] = {}

Handler = Callable[["QueryContext", Sequence[str]], list[tuple]]
AccessCheck = Callable[["QueryContext", Sequence[str]], bool]


@dataclass
class Query:
    """One predefined query: metadata + handler + access policy."""
    name: str
    shortname: str
    args: tuple[str, ...]
    returns: tuple[str, ...]
    handler: Handler
    side_effects: bool
    check_access: Optional[AccessCheck] = None
    public: bool = False           # "safe for the ACL to be everybody"
    variable_args: bool = False    # e.g. none currently; reserved
    # §5.1 D: "the ultimate capability of Moira supporting multiple
    # databases through the same query mechanism" — each handle names
    # the database it resolves against; "moira" is the primary.
    database: str = "moira"
    # Full relation footprint (reads AND writes) of a mutation, used to
    # map it onto writer shards: a tuple of table names, or a callable
    # ``(args) -> Sequence[str]`` when the footprint is data-dependent.
    # None means undeclared — the executor falls back to full exclusion.
    # System tables (values/strings) need not be listed; they are
    # shard-free.
    tables: Optional[object] = None
    # Sub-shard routing for single-row mutations of a partitioned
    # shard: ``(db, args) -> Optional[int]`` returning the partition
    # column's value (the target uid) or None when unresolvable.  Read
    # *before* any lock is taken — the value it keys on must be
    # immutable (uid is), else the row guard catches the stale route.
    shard_key: Optional[Callable] = None

    def help_text(self) -> str:
        """The _help line for this query."""
        args = ", ".join(self.args) or "none"
        rets = ", ".join(self.returns) or "none"
        return f"{self.name} ({self.shortname}): args: {args}; returns: {rets}"


_UNSET = object()  # caller-row memo sentinel (None is a valid cached miss)


@dataclass
class QueryContext:
    """Everything a query handler needs to run on behalf of a caller."""

    db: Database
    clock: Clock
    caller: str = ""                 # authenticated principal ("" = unauth)
    client: str = "unknown"          # program name -> modwith
    journal: Optional[Journal] = None
    privileged: bool = False         # direct "glue" library / DCM as root
    # additional databases reachable through the same query mechanism
    # (§5.1 D); keys are database names referenced by Query.database.
    extra_databases: Optional[dict[str, Database]] = None
    # caller-row memo, validated against the users table data version so
    # a long-lived context (DirectClient) never serves a stale row;
    # init=False keeps dataclasses.replace() from carrying it across
    # databases
    _caller_row_cache: object = field(default=_UNSET, init=False,
                                      repr=False, compare=False)
    _caller_row_version: object = field(default=None, init=False,
                                        repr=False, compare=False)

    def database_for(self, query: "Query") -> Database:
        """Resolve the database a query handle runs against."""
        if query.database == "moira":
            return self.db
        try:
            return (self.extra_databases or {})[query.database]
        except KeyError:
            from repro.errors import MR_NO_HANDLE
            raise MoiraError(
                MR_NO_HANDLE, f"database {query.database!r}") from None

    @property
    def now(self) -> int:
        """Current virtual time."""
        return self.clock.now()

    # -- identity helpers -------------------------------------------------

    def caller_row(self) -> Optional[Row]:
        """The caller's users row, or None (memoised per data version).

        The access path used to re-select this row on every capability
        and ACE check; the memo is validated against the users table's
        data version, so it is exact even on a long-lived context that
        spans mutations.
        """
        if not self.caller:
            return None
        users = self.db.table("users")
        version = getattr(users, "version", None)
        if (version is not None and self._caller_row_cache is not _UNSET
                and self._caller_row_version == version):
            return self._caller_row_cache  # type: ignore[return-value]
        rows = users.select({"login": self.caller})
        row = rows[0] if rows else None
        self._caller_row_cache = row
        self._caller_row_version = version
        return row

    def is_caller(self, login: str) -> bool:
        """Is *login* the authenticated caller?"""
        return bool(self.caller) and self.caller == login

    # -- capability ACLs (capacls relation) --------------------------------

    def on_capability(self, query_name: str) -> bool:
        """True if the caller is on the capability list for *query_name*.

        ``privileged`` contexts (the DCM and backup programs going
        through the direct glue library, which "does not use Kerberos
        authentication") and the root principal bypass ACL checks.
        """
        if self.privileged or self.caller == "root":
            return True
        if not self.caller:
            return False
        rows = self.db.table("capacls").select({"capability": query_name})
        if not rows:
            return False
        return self.user_on_list_id(rows[0]["list_id"], self.caller)

    def _membership_closure(self):
        """The database's closure index, or None (disabled / no
        ``members`` relation / backend without one)."""
        if not getattr(self.db, "closure_enabled", False):
            return None
        factory = getattr(self.db, "membership_closure", None)
        return factory() if factory is not None else None

    def _login_users_id(self, login: str) -> Optional[int]:
        """users_id for *login* (via the caller-row memo when it is
        the caller being resolved), or None."""
        if self.caller and login == self.caller:
            row = self.caller_row()
            return None if row is None else row["users_id"]
        rows = self.db.table("users").select({"login": login})
        return rows[0]["users_id"] if rows else None

    def user_on_list_id(self, list_id: int, login: str) -> bool:
        """Recursive list membership check (sub-lists expanded).

        Answered from the membership-closure index when available —
        O(direct lists of the user) instead of a per-call graph walk —
        with the seed's recursive walk as the fallback, so the
        optimisation can never change an answer.
        """
        users_id = self._login_users_id(login)
        if users_id is None:
            return False
        closure = self._membership_closure()
        if closure is not None:
            try:
                return closure.contains(int(list_id), "USER", users_id)
            except Exception:
                pass  # fall back to the walk rather than fail the check
        return self._user_on_list_walk(int(list_id), users_id)

    def _user_on_list_walk(self, list_id: int, users_id: int) -> bool:
        """The seed's downward graph walk (closure fallback/oracle)."""
        seen: set[int] = set()
        stack = [int(list_id)]
        members = self.db.table("members")
        while stack:
            lid = stack.pop()
            if lid in seen:
                continue
            seen.add(lid)
            for row in members.select({"list_id": lid}):
                if row["member_type"] == "USER" and row["member_id"] == users_id:
                    return True
                if row["member_type"] == "LIST":
                    stack.append(int(row["member_id"]))
        return False

    def lists_containing(self, member_type: str, member_id: int) -> set[int]:
        """Every list_id transitively containing (member_type, member_id).

        The R-typed retrievals (``get_lists_of_member``,
        ``get_ace_use``) build on this; closure-indexed when available,
        upward walk otherwise.
        """
        closure = self._membership_closure()
        if closure is not None:
            try:
                return closure.lists_containing(member_type, int(member_id))
            except Exception:
                pass
        return self._lists_containing_walk(member_type, int(member_id))

    def _lists_containing_walk(self, member_type: str,
                               member_id: int) -> set[int]:
        """Upward breadth-first walk over ``members`` (closure oracle)."""
        members = self.db.table("members")
        found: set[int] = set()
        frontier = [m["list_id"] for m in members.select(
            {"member_type": member_type, "member_id": member_id})]
        while frontier:
            lid = frontier.pop()
            if lid in found:
                continue
            found.add(lid)
            frontier.extend(m["list_id"] for m in members.select(
                {"member_type": "LIST", "member_id": lid}))
        return found

    def caller_satisfies_ace(self, ace_type: str, ace_id: int) -> bool:
        """True if the caller matches an (acl_type, acl_id) entity."""
        if self.privileged or self.caller == "root":
            return True
        if not self.caller:
            return False
        if ace_type == "USER":
            row = self.caller_row()
            return row is not None and row["users_id"] == ace_id
        if ace_type == "LIST":
            return self.user_on_list_id(ace_id, self.caller)
        return False

    # -- type checking against the alias relation ---------------------------

    def check_type(self, type_name: str, value: str,
                   errcode: int = MR_TYPE) -> str:
        """Validate *value* as a legal TYPE alias for *type_name*.

        Returns the canonical (stored) spelling.  Raises *errcode* if the
        value is not registered — e.g. ``MR_BAD_CLASS`` for user classes.
        """
        alias = self.db.table("alias")
        for row in alias.select({"name": type_name, "type": "TYPE"}):
            if row["trans"].upper() == str(value).upper():
                return row["trans"]
        raise MoiraError(errcode, f"{type_name}={value!r}")

    # -- object resolution ---------------------------------------------------

    def find_user(self, login: str, *, errcode: int = MR_USER) -> Row:
        """Exactly one user by login, or raise."""
        rows = self.db.table("users").select({"login": login})
        return exactly_one(rows, errcode, f"user {login!r}")

    def find_machine(self, name: str) -> Row:
        """Exactly one machine by name, or raise."""
        rows = self.db.table("machine").select({"name": name.upper()})
        return exactly_one(rows, MR_MACHINE, f"machine {name!r}")

    def find_cluster(self, name: str) -> Row:
        """Exactly one cluster by name, or raise."""
        rows = self.db.table("cluster").select({"name": name})
        return exactly_one(rows, MR_CLUSTER, f"cluster {name!r}")

    def find_list(self, name: str) -> Row:
        """Exactly one list by name, or raise."""
        rows = self.db.table("list").select({"name": name})
        return exactly_one(rows, MR_LIST, f"list {name!r}")

    def resolve_ace(self, ace_type: str, ace_name: str) -> tuple[str, int]:
        """Resolve an access-control entity to (type, id).

        Types are USER, LIST, or NONE; MR_ACE on anything unresolvable.
        """
        ace_type = str(ace_type).upper()
        if ace_type == "NONE":
            return "NONE", 0
        if ace_type == "USER":
            rows = self.db.table("users").select({"login": ace_name})
            if len(rows) != 1:
                raise MoiraError(MR_ACE, f"user {ace_name!r}")
            return "USER", rows[0]["users_id"]
        if ace_type == "LIST":
            rows = self.db.table("list").select({"name": ace_name})
            if len(rows) != 1:
                raise MoiraError(MR_ACE, f"list {ace_name!r}")
            return "LIST", rows[0]["list_id"]
        raise MoiraError(MR_ACE, f"type {ace_type!r}")

    def ace_name(self, ace_type: str, ace_id: int) -> str:
        """Inverse of resolve_ace, for query return values."""
        if ace_type == "USER":
            rows = self.db.table("users").select({"users_id": ace_id})
            return rows[0]["login"] if rows else "???"
        if ace_type == "LIST":
            rows = self.db.table("list").select({"list_id": ace_id})
            return rows[0]["name"] if rows else "???"
        return "NONE"

    # -- string interning (the strings relation) -----------------------------

    def intern_string(self, text: str) -> int:
        """The string_id for *text*, creating it if new.

        On a sharded database the strings heap is shard-free and
        serializes on the system latch, so any shard transaction can
        intern without escalating; new ids are recorded as bindings on
        the transaction so journal replay reproduces them.
        """
        db = self.db
        latch = getattr(db, "_sys_latch", None)
        if latch is None or getattr(db, "shards", None) is None:
            table = db.table("strings")
            rows = table.select({"string": text})
            if rows:
                return rows[0]["string_id"]
            string_id = db.next_id("strings_id", now=self.now)
            table.insert({"string_id": string_id, "string": text},
                         now=self.now)
            return string_id
        with latch:
            table = db.table("strings")
            rows = table.select({"string": text})
            if rows:
                # bind lookups too: the looking-up transaction can
                # commit before its allocator, so replay (commit-seq
                # order) must be able to pre-seed the row
                db._bind_intern(text, rows[0]["string_id"])
                return rows[0]["string_id"]
            string_id = db.next_id("strings_id", now=self.now)
            table.insert({"string_id": string_id, "string": text},
                         now=self.now)
            db._bind_intern(text, string_id)
            return string_id

    def string_by_id(self, string_id: int) -> str:
        """The text for a string_id."""
        rows = self.db.table("strings").select({"string_id": string_id})
        return rows[0]["string"] if rows else "???"

    # -- audit fields ---------------------------------------------------------

    def audit(self, prefix: str = "") -> dict:
        """modtime/modby/modwith triple (optionally prefixed: f..., p...)."""
        return {
            f"{prefix}modtime": self.now,
            f"{prefix}modby": self.caller or "unauthenticated",
            f"{prefix}modwith": self.client,
        }

    # -- boolean tri-state for qualified_get_* --------------------------------

    def tristate(self, value: str) -> Optional[bool]:
        """Parse TRUE/FALSE/DONTCARE to bool/None."""
        v = str(value).upper()
        if v == "TRUE":
            return True
        if v == "FALSE":
            return False
        if v == "DONTCARE":
            return None
        raise MoiraError(MR_TYPE, f"expected TRUE/FALSE/DONTCARE, got {value!r}")


def exactly_one(rows: list[Row], errcode: int, what: str) -> Row:
    """The paper's "must match exactly one" rule.

    No match raises *errcode* ("No such user" / "Unknown machine"...);
    more than one raises MR_NOT_UNIQUE.
    """
    if not rows:
        raise MoiraError(errcode, what)
    if len(rows) > 1:
        raise MoiraError(MR_NOT_UNIQUE, what)
    return rows[0]


def no_wildcards(value: str) -> str:
    """Reject wildcard characters where the paper forbids them."""
    if WildcardPattern.is_wild(value):
        raise MoiraError(MR_WILDCARD, value)
    return value


def register(
    name: str,
    shortname: str,
    args: Sequence[str],
    returns: Sequence[str],
    *,
    side_effects: bool,
    access: Optional[AccessCheck] = None,
    public: bool = False,
    database: str = "moira",
    tables: Optional[object] = None,
    shard_key: Optional[Callable] = None,
) -> Callable[[Handler], Handler]:
    """Decorator registering a predefined query."""

    def wrap(handler: Handler) -> Handler:
        """Register *handler* and return it unchanged."""
        if name in _REGISTRY:
            raise ValueError(f"duplicate query {name}")
        if shortname in _BY_SHORT:
            raise ValueError(f"duplicate short name {shortname}")
        query = Query(
            name=name,
            shortname=shortname,
            args=tuple(args),
            returns=tuple(returns),
            handler=handler,
            side_effects=side_effects,
            check_access=access,
            public=public,
            database=database,
            tables=tuple(tables) if isinstance(tables, (list, tuple, set))
            else tables,
            shard_key=shard_key,
        )
        _REGISTRY[name] = query
        _BY_SHORT[shortname] = query
        return handler

    return wrap


def unregister(name: str) -> None:
    """Remove a query handle (supports tests and site extensions)."""
    query = _REGISTRY.pop(name, None)
    if query is not None:
        _BY_SHORT.pop(query.shortname, None)


def get_query(name: str) -> Optional[Query]:
    """Look up a query by long or short name."""
    return _REGISTRY.get(name) or _BY_SHORT.get(name)


def all_queries() -> dict[str, Query]:
    """The registry, keyed by long name."""
    return dict(_REGISTRY)


def check_query_access(ctx: QueryContext, query: Query,
                       args: Sequence[str]) -> None:
    """Raise MR_PERM unless the caller may execute *query* with *args*.

    Policy, per §5.5 and §7: public retrieval queries are open; a query
    whose per-query relaxation (``check_access``) grants access is
    allowed; otherwise the caller must be on the capability ACL.
    """
    if query.public and not query.side_effects:
        return
    if ctx.on_capability(query.name):
        return
    if query.check_access is not None and query.check_access(ctx, args):
        return
    raise MoiraError(MR_PERM, query.name)


def query_lock(db, side_effects: bool):
    """The right critical section for a query against *db*: shared mode
    for side-effect-free retrievals (when the backend offers it),
    exclusive mode for mutations."""
    if side_effects:
        return db.write_locked() if hasattr(db, "write_locked") else db.lock
    return db.read_locked() if hasattr(db, "read_locked") else db.lock


def execute_query(ctx: QueryContext, name: str,
                  args: Sequence[str]) -> list[tuple]:
    """Resolve, validate, access-check, run, and journal one query."""
    from repro.errors import MR_NO_HANDLE

    query = get_query(name)
    if query is None:
        raise MoiraError(MR_NO_HANDLE, name)
    if not query.variable_args and len(args) != len(query.args):
        raise MoiraError(
            MR_ARGS, f"{query.name} wants {len(query.args)}, got {len(args)}"
        )
    check_query_access(ctx, query, args)
    target_db = ctx.database_for(query)
    if target_db is not ctx.db:
        # §5.1 D: "the application merely passes a query handle to a
        # function, which then resolves the database and query"
        ctx = _replace(ctx, db=target_db)
    if not query.side_effects and getattr(ctx.db, "mvcc_enabled", False):
        # MVCC read path: pin a consistent snapshot instead of taking
        # the shared lock — the retrieval never blocks on (or is
        # blocked by) writers
        snapshot = ctx.db.pin_snapshot()
        try:
            result = query.handler(_replace(ctx, db=snapshot), args)
            if not isinstance(result, list):
                result = list(result)
        finally:
            ctx.db.unpin_snapshot(snapshot)
        if not result:
            raise MoiraError(MR_NO_MATCH, query.name)
        return result
    with query_lock(ctx.db, query.side_effects):
        result = query.handler(ctx, args)
        if not isinstance(result, list):
            # lazy handlers stream on the server path; the direct
            # library drains them under the lock
            result = list(result)
        if query.side_effects and ctx.journal is not None:
            # inside the exclusive section: journal order always
            # matches the order mutations hit the database.  On a
            # sharded database the facade transaction is still open
            # here — stamp its commit seq and any id/string bindings
            # into the entry so replay can check seq order and
            # reproduce system-table state.
            info = getattr(ctx.db, "_txn_info", None)
            seq, bindings = info() if info is not None else (0, None)
            ctx.journal.record(ctx.now, ctx.caller or "unauthenticated",
                               query.name, tuple(str(a) for a in args),
                               client=ctx.client, commit_seq=seq,
                               bindings=bindings)
    if not query.side_effects and not result:
        raise MoiraError(MR_NO_MATCH, query.name)
    return result
