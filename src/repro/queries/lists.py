"""List and membership queries (paper §7.0.3).

Lists are Moira's general grouping mechanism (mailing lists, unix
groups, and access control lists all in one relation).  Membership is
(type, id) pairs — USER, LIST (sub-list), or STRING (interned text,
e.g. external mail addresses).  Access control entities (ACEs) guard
each list; the paper's per-query relaxations (public lists allow
self-add/remove, ACE members manage the list) are implemented here.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.db.schema import UNIQUE_GID
from repro.errors import (
    MoiraError,
    MR_EXISTS,
    MR_IN_USE,
    MR_LIST,
    MR_NO_MATCH,
    MR_TYPE,
)
from repro.queries.base import (QueryContext, exactly_one,
                                no_wildcards, register)

_LIST_INFO_FIELDS = ("list", "active", "public", "hidden", "maillist",
                     "group", "gid", "ace_type", "ace_name", "description",
                     "modtime", "modby", "modwith")


def _list_tuple(ctx: QueryContext, row) -> tuple:
    return (row["name"], row["active"], row["public"], row["hidden"],
            row["maillist"], row["grouplist"], row["gid"], row["acl_type"],
            ctx.ace_name(row["acl_type"], row["acl_id"]), row["desc"],
            row["modtime"], row["modby"], row["modwith"])


def _caller_on_list_ace(ctx: QueryContext, row) -> bool:
    return ctx.caller_satisfies_ace(row["acl_type"], row["acl_id"])


def _ace_of_named_list(ctx: QueryContext, args: Sequence[str]) -> bool:
    """Access relaxation: caller is on the ACE of the list named in args[0]."""
    rows = ctx.db.table("list").select({"name": str(args[0])})
    return len(rows) == 1 and _caller_on_list_ace(ctx, rows[0])


def _visible_or_ace(ctx: QueryContext, args: Sequence[str]) -> bool:
    """Access relaxation: list is not hidden, or caller is on its ACE."""
    rows = ctx.db.table("list").select({"name": str(args[0])})
    if len(rows) != 1:
        # wildcards or unknown names require the capability ACL
        return False
    return not rows[0]["hidden"] or _caller_on_list_ace(ctx, rows[0])


@register("get_list_info", "glin", ("list",), _LIST_INFO_FIELDS,
          side_effects=False, access=_visible_or_ace)
def get_list_info(ctx: QueryContext, args: Sequence[str]) -> list[tuple]:
    """Full list attributes; hidden lists need ACE or capability."""
    rows = ctx.db.table("list").select({"name": args[0]})
    out = []
    for row in rows:
        if row["hidden"] and not (
                ctx.on_capability("get_list_info")
                or _caller_on_list_ace(ctx, row)):
            continue
        out.append(_list_tuple(ctx, row))
    return out


@register("expand_list_names", "exln", ("list",), ("list",),
          side_effects=False, public=True)
def expand_list_names(ctx: QueryContext, args: Sequence[str]) -> list[tuple]:
    """Expand a wildcard pattern to visible list names."""
    return [(r["name"],)
            for r in ctx.db.table("list").select({"name": args[0]})
            if not r["hidden"]]


@register("add_list", "alis",
          ("list", "active", "public", "hidden", "maillist", "group", "gid",
           "ace_type", "ace_name", "description"),
          (), side_effects=True, tables=("list", "users"))
def add_list(ctx: QueryContext, args: Sequence[str]) -> list[tuple]:
    """Create a list; UNIQUE_GID allocates, the ACE may be itself."""
    (name, active, public, hidden, maillist, group, gid,
     ace_type, ace_name, desc) = args
    lists = ctx.db.table("list")
    no_wildcards(name)
    if lists.select({"name": name}):
        raise MoiraError(MR_EXISTS, name)
    gid = int(gid)
    if int(group) and gid == UNIQUE_GID:
        gid = ctx.db.next_id("gid", now=ctx.now)
    list_id = ctx.db.next_id("list_id", now=ctx.now)
    # "The access list may be the list that is being created
    # (self-referential)."
    if str(ace_type).upper() == "LIST" and ace_name == name:
        acl_type, acl_id = "LIST", list_id
    else:
        acl_type, acl_id = ctx.resolve_ace(ace_type, ace_name)
    lists.insert(
        dict(name=name, list_id=list_id, active=int(active),
             public=int(public), hidden=int(hidden), maillist=int(maillist),
             grouplist=int(group), gid=gid, desc=desc, acl_type=acl_type,
             acl_id=acl_id, **ctx.audit()),
        now=ctx.now)
    return []


@register("update_list", "ulis",
          ("list", "newname", "active", "public", "hidden", "maillist",
           "group", "gid", "ace_type", "ace_name", "description"),
          (), side_effects=True, access=_ace_of_named_list,
          tables=("list", "users"))
def update_list(ctx: QueryContext, args: Sequence[str]) -> list[tuple]:
    """Change list attributes; references follow a rename."""
    (name, newname, active, public, hidden, maillist, group, gid,
     ace_type, ace_name, desc) = args
    lists = ctx.db.table("list")
    row = exactly_one(lists.select({"name": name}), MR_LIST, name)
    if newname != name and lists.select({"name": newname}):
        raise MoiraError(MR_EXISTS, newname)
    gid = int(gid)
    if int(group) and gid == UNIQUE_GID:
        gid = ctx.db.next_id("gid", now=ctx.now)
    if str(ace_type).upper() == "LIST" and ace_name in (name, newname):
        acl_type, acl_id = "LIST", row["list_id"]
    else:
        acl_type, acl_id = ctx.resolve_ace(ace_type, ace_name)
    lists.update_rows(
        [row],
        dict(name=newname, active=int(active), public=int(public),
             hidden=int(hidden), maillist=int(maillist),
             grouplist=int(group), gid=gid, desc=desc, acl_type=acl_type,
             acl_id=acl_id, **ctx.audit()),
        now=ctx.now)
    return []


def _list_referenced(ctx: QueryContext, list_id: int) -> bool:
    """Is the list a member of another list or an ACL for any object?"""
    if ctx.db.table("members").select(
            {"member_type": "LIST", "member_id": list_id}):
        return True
    for table in ("list", "servers", "hostaccess"):
        if ctx.db.table(table).select({"acl_type": "LIST",
                                       "acl_id": list_id}):
            # a list may be its own ACE; that self-reference doesn't
            # block deletion
            refs = ctx.db.table(table).select(
                {"acl_type": "LIST", "acl_id": list_id})
            if table != "list" or any(r["list_id"] != list_id for r in refs):
                return True
    if ctx.db.table("filesys").select({"owners": list_id}):
        return True
    if ctx.db.table("capacls").select({"list_id": list_id}):
        return True
    zephyr = ctx.db.table("zephyr")
    for col in ("xmt", "sub", "iws", "iui"):
        if zephyr.select({f"{col}_type": "LIST", f"{col}_id": list_id}):
            return True
    return False


@register("delete_list", "dlis", ("list",), (), side_effects=True,
          access=_ace_of_named_list,
          tables=("list", "members", "servers", "hostaccess", "filesys",
                  "capacls", "zephyr"))
def delete_list(ctx: QueryContext, args: Sequence[str]) -> list[tuple]:
    """Delete an empty, unreferenced list."""
    lists = ctx.db.table("list")
    row = exactly_one(lists.select({"name": args[0]}), MR_LIST, args[0])
    members = ctx.db.table("members")
    if members.select({"list_id": row["list_id"]}):
        raise MoiraError(MR_IN_USE, f"{args[0]} is not empty")
    if _list_referenced(ctx, row["list_id"]):
        raise MoiraError(MR_IN_USE, args[0])
    lists.delete_rows([row], now=ctx.now)
    return []


# -- members ---------------------------------------------------------------


def _resolve_member(ctx: QueryContext, mtype: str,
                    member: str) -> tuple[str, int]:
    mtype = str(mtype).upper()
    if mtype == "USER":
        rows = ctx.db.table("users").select({"login": member})
        if len(rows) != 1:
            raise MoiraError(MR_NO_MATCH, f"user {member!r}")
        return "USER", rows[0]["users_id"]
    if mtype == "LIST":
        rows = ctx.db.table("list").select({"name": member})
        if len(rows) != 1:
            raise MoiraError(MR_NO_MATCH, f"list {member!r}")
        return "LIST", rows[0]["list_id"]
    if mtype == "STRING":
        return "STRING", ctx.intern_string(member)
    raise MoiraError(MR_TYPE, mtype)


def _member_name(ctx: QueryContext, mtype: str, member_id: int) -> str:
    if mtype == "USER":
        rows = ctx.db.table("users").select({"users_id": member_id})
        return rows[0]["login"] if rows else "???"
    if mtype == "LIST":
        rows = ctx.db.table("list").select({"list_id": member_id})
        return rows[0]["name"] if rows else "???"
    return ctx.string_by_id(member_id)


def _self_on_public_list(ctx: QueryContext, args: Sequence[str]) -> bool:
    """Anyone may add/delete *themselves* as USER on a public list."""
    list_name, mtype, member = str(args[0]), str(args[1]), str(args[2])
    if mtype.upper() != "USER" or not ctx.is_caller(member):
        return _ace_of_named_list(ctx, args)
    rows = ctx.db.table("list").select({"name": list_name})
    if len(rows) != 1:
        return False
    return bool(rows[0]["public"]) or _caller_on_list_ace(ctx, rows[0])


@register("add_member_to_list", "amtl", ("list", "type", "member"), (),
          side_effects=True, access=_self_on_public_list,
          tables=("list", "members", "users"))
def add_member_to_list(ctx: QueryContext, args: Sequence[str]) -> list[tuple]:
    """Add a USER/LIST/STRING member (self-add on public lists)."""
    row = ctx.find_list(args[0])
    mtype, member_id = _resolve_member(ctx, args[1], args[2])
    members = ctx.db.table("members")
    if members.select({"list_id": row["list_id"], "member_type": mtype,
                       "member_id": member_id}):
        raise MoiraError(MR_EXISTS, f"{args[2]} already on {args[0]}")
    members.insert({"list_id": row["list_id"], "member_type": mtype,
                    "member_id": member_id}, now=ctx.now)
    ctx.db.table("list").update_rows([row], ctx.audit(), now=ctx.now)
    return []


@register("delete_member_from_list", "dmfl", ("list", "type", "member"), (),
          side_effects=True, access=_self_on_public_list,
          tables=("list", "members", "users"))
def delete_member_from_list(ctx: QueryContext,
                            args: Sequence[str]) -> list[tuple]:
    """Remove a member (self-remove on public lists)."""
    row = ctx.find_list(args[0])
    mtype, member_id = _resolve_member(ctx, args[1], args[2])
    members = ctx.db.table("members")
    found = members.select({"list_id": row["list_id"], "member_type": mtype,
                            "member_id": member_id})
    if not found:
        raise MoiraError(MR_NO_MATCH, f"{args[2]} not on {args[0]}")
    members.delete_rows(found, now=ctx.now)
    ctx.db.table("list").update_rows([row], ctx.audit(), now=ctx.now)
    return []


@register("get_members_of_list", "gmol", ("list",), ("type", "value"),
          side_effects=False, access=_visible_or_ace)
def get_members_of_list(ctx: QueryContext, args: Sequence[str]) -> list[tuple]:
    """All (type, name) members of one list."""
    row = ctx.find_list(args[0])
    out = []
    for member in ctx.db.table("members").select({"list_id": row["list_id"]}):
        out.append((member["member_type"],
                    _member_name(ctx, member["member_type"],
                                 member["member_id"])))
    return out


@register("count_members_of_list", "cmol", ("list",), ("count",),
          side_effects=False, access=_visible_or_ace)
def count_members_of_list(ctx: QueryContext,
                          args: Sequence[str]) -> list[tuple]:
    """How many members are on one list."""
    row = ctx.find_list(args[0])
    return [(ctx.db.table("members").count({"list_id": row["list_id"]}),)]


@register("get_lists_of_member", "glom", ("type", "value"),
          ("list", "active", "public", "hidden", "maillist", "group"),
          side_effects=False,
          access=lambda ctx, args: (str(args[0]).upper() in ("USER", "RUSER")
                                    and ctx.is_caller(str(args[1]))))
def get_lists_of_member(ctx: QueryContext, args: Sequence[str]) -> list[tuple]:
    """Lists containing a member; R-types recurse sub-lists."""
    mtype, value = str(args[0]).upper(), str(args[1])
    recursive = mtype.startswith("R")
    base_type = mtype[1:] if recursive else mtype
    if base_type not in ("USER", "LIST", "STRING"):
        raise MoiraError(MR_TYPE, mtype)
    _, member_id = _resolve_member(ctx, base_type, value)

    if recursive:
        # closure-indexed: direct lists plus every ancestor, no walk
        found = ctx.lists_containing(base_type, member_id)
    else:
        found = {m["list_id"] for m in ctx.db.table("members").select(
            {"member_type": base_type, "member_id": member_id})}

    lists = ctx.db.table("list")
    out = []
    for lid in sorted(found):
        rows = lists.select({"list_id": lid})
        if rows:
            r = rows[0]
            out.append((r["name"], r["active"], r["public"], r["hidden"],
                        r["maillist"], r["grouplist"]))
    return out


@register("qualified_get_lists", "qgli",
          ("active", "public", "hidden", "maillist", "group"), ("list",),
          side_effects=False,
          access=lambda ctx, args: (str(args[0]).upper() == "TRUE"
                                    and str(args[2]).upper() == "FALSE"))
def qualified_get_lists(ctx: QueryContext, args: Sequence[str]) -> list[tuple]:
    """List names matching five TRUE/FALSE/DONTCARE flags."""
    flags = ["active", "public", "hidden", "maillist", "grouplist"]
    wanted: list[tuple[str, Optional[bool]]] = [
        (flag, ctx.tristate(arg)) for flag, arg in zip(flags, args)
    ]

    def matches(row) -> bool:
        """Row satisfies every non-DONTCARE flag."""
        return all(want is None or bool(row[flag]) == want
                   for flag, want in wanted)

    return [(r["name"],)
            for r in ctx.db.table("list").iter_select(predicate=matches)]


@register("get_ace_use", "gaus", ("ace_type", "ace_name"),
          ("object_type", "object_name"), side_effects=False,
          access=lambda ctx, args: (
              str(args[0]).upper() in ("USER", "RUSER")
              and ctx.is_caller(str(args[1]))))
def get_ace_use(ctx: QueryContext, args: Sequence[str]) -> list[tuple]:
    """Objects guarded by an entity as ACE; R-types check sub-lists."""
    ace_type, ace_name = str(args[0]).upper(), str(args[1])
    recursive = ace_type.startswith("R")
    base_type = ace_type[1:] if recursive else ace_type
    if base_type not in ("USER", "LIST"):
        raise MoiraError(MR_TYPE, ace_type)
    _, target_id = _resolve_member(ctx, base_type, ace_name)

    # Candidate ACE entities: the target itself, plus (recursively) every
    # list the target is a member of when the R-type is used — one
    # closure-index lookup instead of a per-call graph walk.
    entities: set[tuple[str, int]] = {(base_type, target_id)}
    if recursive:
        entities |= {("LIST", lid)
                     for lid in ctx.lists_containing(base_type, target_id)}

    # Per-entity *reverse* probes against the ACE composite indexes
    # (and the filesys owner / capacls list_id single indexes) instead
    # of five full-table scans: O(entities + results), not O(database).
    # Each category is emitted name-sorted, so the answer is a function
    # of the data alone.
    db = ctx.db
    out: list[tuple[str, str]] = []
    for kind, table in (("LIST", "list"), ("SERVICE", "servers")):
        names = {row["name"]
                 for acl_type, acl_id in entities
                 for row in db.table(table).select(
                     {"acl_type": acl_type, "acl_id": acl_id})}
        out.extend((kind, name) for name in sorted(names))
    # a filesys row can match through owner AND owners: dedupe by row
    matched_filesys: dict[int, str] = {}
    filesys = db.table("filesys")
    for acl_type, acl_id in entities:
        column = {"USER": "owner", "LIST": "owners"}.get(acl_type)
        if column is not None:
            for row in filesys.select({column: acl_id}):
                matched_filesys[id(row)] = row["label"]
    out.extend(("FILESYS", label)
               for label in sorted(matched_filesys.values()))
    caps = {row["capability"]
            for acl_type, acl_id in entities if acl_type == "LIST"
            for row in db.table("capacls").select({"list_id": acl_id})}
    out.extend(("QUERY", cap) for cap in sorted(caps))
    hosts = set()
    for acl_type, acl_id in entities:
        for row in db.table("hostaccess").select(
                {"acl_type": acl_type, "acl_id": acl_id}):
            machines = db.table("machine").select(
                {"mach_id": row["mach_id"]})
            if machines:
                hosts.add(machines[0]["name"])
    out.extend(("HOSTACCESS", host) for host in sorted(hosts))
    for row in ctx.db.table("zephyr").rows:
        for col in ("xmt", "sub", "iws", "iui"):
            if (row[f"{col}_type"], row[f"{col}_id"]) in entities:
                out.append(("ZEPHYR", row["class"]))
                break
    return out
