"""Machine and cluster queries (paper §7.0.2)."""

from __future__ import annotations

from typing import Sequence

from repro.errors import (
    MoiraError,
    MR_CLUSTER,
    MR_IN_USE,
    MR_MACHINE,
    MR_NO_MATCH,
    MR_NOT_UNIQUE,
    MR_TYPE,
)
from repro.queries.base import (QueryContext, exactly_one,
                                no_wildcards, register)


@register("get_machine", "gmac", ("name",),
          ("name", "type", "modtime", "modby", "modwith"),
          side_effects=False, public=True)
def get_machine(ctx: QueryContext, args: Sequence[str]):
    """Machine info by (wildcardable, case-insensitive) name.

    Lazy: yields tuples as the scan produces them, so the server can
    stream MR_MORE_DATA replies before a large wildcard scan finishes.
    """
    return ((r["name"], r["type"], r["modtime"], r["modby"], r["modwith"])
            for r in ctx.db.table("machine").iter_select(
                {"name": args[0].upper()}))


@register("add_machine", "amac", ("name", "type"), (), side_effects=True,
          tables=("machine", "alias"))
def add_machine(ctx: QueryContext, args: Sequence[str]) -> list[tuple]:
    """Add a machine; the name is uppercased, the type checked."""
    name, mtype = args
    name = no_wildcards(name.upper())
    machines = ctx.db.table("machine")
    if machines.select({"name": name}):
        raise MoiraError(MR_NOT_UNIQUE, name)
    mtype = ctx.check_type("mach_type", mtype, MR_TYPE)
    mach_id = ctx.db.next_id("mach_id", now=ctx.now)
    machines.insert(dict(name=name, mach_id=mach_id, type=mtype,
                         **ctx.audit()), now=ctx.now)
    return []


@register("update_machine", "umac", ("name", "newname", "type"), (),
          side_effects=True, tables=("machine", "alias"))
def update_machine(ctx: QueryContext, args: Sequence[str]) -> list[tuple]:
    """Rename a machine and/or change its type."""
    name, newname, mtype = args
    newname = newname.upper()
    machines = ctx.db.table("machine")
    row = exactly_one(machines.select({"name": name.upper()}),
                      MR_MACHINE, name)
    if newname != row["name"] and machines.select({"name": newname}):
        raise MoiraError(MR_NOT_UNIQUE, newname)
    mtype = ctx.check_type("mach_type", mtype, MR_TYPE)
    machines.update_rows([row], dict(name=newname, type=mtype,
                                     **ctx.audit()), now=ctx.now)
    return []


def _machine_in_use(ctx: QueryContext, mach_id: int) -> bool:
    """Post office, file system, printer spooling host, hostaccess, or
    DCM service update reference (paper's delete_machine constraints)."""
    checks = [
        ("users", {"pop_id": mach_id, "potype": "POP"}),
        ("filesys", {"mach_id": mach_id}),
        ("nfsphys", {"mach_id": mach_id}),
        ("printcap", {"mach_id": mach_id}),
        ("hostaccess", {"mach_id": mach_id}),
        ("serverhosts", {"mach_id": mach_id}),
    ]
    return any(ctx.db.table(t).select(w) for t, w in checks)


@register("delete_machine", "dmac", ("name",), (), side_effects=True,
          tables=("machine", "users", "filesys", "nfsphys", "printcap",
                  "hostaccess", "serverhosts", "mcmap"))
def delete_machine(ctx: QueryContext, args: Sequence[str]) -> list[tuple]:
    """Delete a machine that nothing references."""
    machines = ctx.db.table("machine")
    row = exactly_one(machines.select({"name": args[0].upper()}),
                      MR_MACHINE, args[0])
    if _machine_in_use(ctx, row["mach_id"]):
        raise MoiraError(MR_IN_USE, row["name"])
    # drop cluster memberships silently (they are pure mappings)
    mcmap = ctx.db.table("mcmap")
    mcmap.delete_rows(mcmap.select({"mach_id": row["mach_id"]}), now=ctx.now)
    machines.delete_rows([row], now=ctx.now)
    return []


# -- clusters -----------------------------------------------------------------


@register("get_cluster", "gclu", ("name",),
          ("name", "description", "location", "modtime", "modby", "modwith"),
          side_effects=False, public=True)
def get_cluster(ctx: QueryContext, args: Sequence[str]) -> list[tuple]:
    """Cluster info by (wildcardable, case-sensitive) name."""
    return [(r["name"], r["desc"], r["location"], r["modtime"], r["modby"],
             r["modwith"])
            for r in ctx.db.table("cluster").select({"name": args[0]})]


@register("add_cluster", "aclu", ("name", "description", "location"), (),
          side_effects=True, tables=("cluster",))
def add_cluster(ctx: QueryContext, args: Sequence[str]) -> list[tuple]:
    """Add a cluster; names are case sensitive."""
    name, desc, location = args
    no_wildcards(name)
    clusters = ctx.db.table("cluster")
    if clusters.select({"name": name}):
        raise MoiraError(MR_NOT_UNIQUE, name)
    clu_id = ctx.db.next_id("clu_id", now=ctx.now)
    clusters.insert(dict(name=name, clu_id=clu_id, desc=desc,
                         location=location, **ctx.audit()), now=ctx.now)
    return []


@register("update_cluster", "uclu",
          ("name", "newname", "description", "location"), (),
          side_effects=True, tables=("cluster",))
def update_cluster(ctx: QueryContext, args: Sequence[str]) -> list[tuple]:
    """Rename a cluster and/or change its description/location."""
    name, newname, desc, location = args
    clusters = ctx.db.table("cluster")
    row = exactly_one(clusters.select({"name": name}), MR_CLUSTER, name)
    if newname != name and clusters.select({"name": newname}):
        raise MoiraError(MR_NOT_UNIQUE, newname)
    clusters.update_rows([row], dict(name=newname, desc=desc,
                                     location=location, **ctx.audit()),
                         now=ctx.now)
    return []


@register("delete_cluster", "dclu", ("name",), (), side_effects=True,
          tables=("cluster", "mcmap", "svc"))
def delete_cluster(ctx: QueryContext, args: Sequence[str]) -> list[tuple]:
    """Delete a machine-less cluster (service data goes too)."""
    clusters = ctx.db.table("cluster")
    row = exactly_one(clusters.select({"name": args[0]}),
                      MR_CLUSTER, args[0])
    if ctx.db.table("mcmap").select({"clu_id": row["clu_id"]}):
        raise MoiraError(MR_IN_USE, row["name"])
    svc = ctx.db.table("svc")
    svc.delete_rows(svc.select({"clu_id": row["clu_id"]}), now=ctx.now)
    clusters.delete_rows([row], now=ctx.now)
    return []


# -- machine/cluster map ---------------------------------------------------------


@register("get_machine_to_cluster_map", "gmcm", ("machine", "cluster"),
          ("machine", "cluster"), side_effects=False, public=True)
def get_machine_to_cluster_map(ctx: QueryContext,
                               args: Sequence[str]) -> list[tuple]:
    """Machine/cluster pairs matching both patterns."""
    machine_pat, cluster_pat = args
    machines = {m["mach_id"]: m["name"]
                for m in ctx.db.table("machine").select(
                    {"name": machine_pat.upper()})}
    clusters = {c["clu_id"]: c["name"]
                for c in ctx.db.table("cluster").select(
                    {"name": cluster_pat})}
    out = []
    for row in ctx.db.table("mcmap").rows:
        if row["mach_id"] in machines and row["clu_id"] in clusters:
            out.append((machines[row["mach_id"]], clusters[row["clu_id"]]))
    return out


@register("add_machine_to_cluster", "amtc", ("machine", "cluster"), (),
          side_effects=True, tables=("machine", "cluster", "mcmap"))
def add_machine_to_cluster(ctx: QueryContext,
                           args: Sequence[str]) -> list[tuple]:
    """Put a machine in a cluster."""
    machine = ctx.find_machine(args[0])
    cluster = ctx.find_cluster(args[1])
    ctx.db.table("mcmap").insert(
        {"mach_id": machine["mach_id"], "clu_id": cluster["clu_id"]},
        now=ctx.now)
    ctx.db.table("machine").update_rows([machine], ctx.audit(), now=ctx.now)
    return []


@register("delete_machine_from_cluster", "dmfc", ("machine", "cluster"), (),
          side_effects=True, tables=("machine", "cluster", "mcmap"))
def delete_machine_from_cluster(ctx: QueryContext,
                                args: Sequence[str]) -> list[tuple]:
    """Take a machine out of a cluster."""
    machine = ctx.find_machine(args[0])
    cluster = ctx.find_cluster(args[1])
    mcmap = ctx.db.table("mcmap")
    rows = mcmap.select({"mach_id": machine["mach_id"],
                         "clu_id": cluster["clu_id"]})
    if not rows:
        raise MoiraError(MR_NO_MATCH, args[0])
    mcmap.delete_rows(rows, now=ctx.now)
    ctx.db.table("machine").update_rows([machine], ctx.audit(), now=ctx.now)
    return []


# -- cluster service data ---------------------------------------------------------


@register("get_cluster_data", "gcld", ("cluster", "label"),
          ("cluster", "label", "data"), side_effects=False, public=True)
def get_cluster_data(ctx: QueryContext, args: Sequence[str]) -> list[tuple]:
    """Service (label, data) records for matching clusters."""
    cluster_pat, label_pat = args
    clusters = {c["clu_id"]: c["name"]
                for c in ctx.db.table("cluster").select({"name": cluster_pat})}
    out = []
    for row in ctx.db.table("svc").select({"serv_label": label_pat}):
        if row["clu_id"] in clusters:
            out.append((clusters[row["clu_id"]], row["serv_label"],
                        row["serv_cluster"]))
    return out


@register("add_cluster_data", "acld", ("cluster", "label", "data"), (),
          side_effects=True, tables=("cluster", "svc", "alias"))
def add_cluster_data(ctx: QueryContext, args: Sequence[str]) -> list[tuple]:
    """Attach service data to a cluster (label type-checked)."""
    cluster = ctx.find_cluster(args[0])
    label = ctx.check_type("slabel", args[1], MR_TYPE)
    ctx.db.table("svc").insert(
        {"clu_id": cluster["clu_id"], "serv_label": label,
         "serv_cluster": args[2]},
        now=ctx.now)
    ctx.db.table("cluster").update_rows([cluster], ctx.audit(), now=ctx.now)
    return []


@register("delete_cluster_data", "dcld", ("cluster", "label", "data"), (),
          side_effects=True, tables=("cluster", "svc"))
def delete_cluster_data(ctx: QueryContext, args: Sequence[str]) -> list[tuple]:
    """Remove one exact piece of cluster service data."""
    cluster = ctx.find_cluster(args[0])
    svc = ctx.db.table("svc")
    rows = svc.select({"clu_id": cluster["clu_id"], "serv_label": args[1],
                       "serv_cluster": args[2]})
    row = exactly_one(rows, MR_NOT_UNIQUE, f"{args[1]}/{args[2]}")
    svc.delete_rows([row], now=ctx.now)
    ctx.db.table("cluster").update_rows([cluster], ctx.audit(), now=ctx.now)
    return []
