"""Zephyr class ACL queries (paper §7.0.6)."""

from __future__ import annotations

from typing import Sequence

from repro.errors import MoiraError, MR_EXISTS
from repro.queries.base import QueryContext, exactly_one, register
from repro.errors import MR_NO_MATCH

_ZEPHYR_FIELDS = ("class", "xmttype", "xmtname", "subtype", "subname",
                  "iwstype", "iwsname", "iuitype", "iuiname", "modtime",
                  "modby", "modwith")

_ACL_COLS = ("xmt", "sub", "iws", "iui")


def _zephyr_tuple(ctx: QueryContext, row) -> tuple:
    values: list = [row["class"]]
    for col in _ACL_COLS:
        values.append(row[f"{col}_type"])
        values.append(ctx.ace_name(row[f"{col}_type"], row[f"{col}_id"]))
    values.extend((row["modtime"], row["modby"], row["modwith"]))
    return tuple(values)


def _resolve_four_aces(ctx: QueryContext, args: Sequence[str]) -> dict:
    """args are four (type, name) pairs: xmt, sub, iws, iui."""
    changes: dict = {}
    for i, col in enumerate(_ACL_COLS):
        ace_type, ace_id = ctx.resolve_ace(args[2 * i], args[2 * i + 1])
        changes[f"{col}_type"] = ace_type
        changes[f"{col}_id"] = ace_id
    return changes


@register("get_zephyr_class", "gzcl", ("class",), _ZEPHYR_FIELDS,
          side_effects=False)
def get_zephyr_class(ctx: QueryContext, args: Sequence[str]) -> list[tuple]:
    """A class's four ACE pairs (xmt/sub/iws/iui)."""
    return [_zephyr_tuple(ctx, r)
            for r in ctx.db.table("zephyr").select({"class": args[0]})]


@register("add_zephyr_class", "azcl",
          ("class", "xmttype", "xmtname", "subtype", "subname", "iwstype",
           "iwsname", "iuitype", "iuiname"),
          (), side_effects=True, tables=("zephyr", "users", "list"))
def add_zephyr_class(ctx: QueryContext, args: Sequence[str]) -> list[tuple]:
    """Register a controlled zephyr class."""
    name = args[0]
    zephyr = ctx.db.table("zephyr")
    if zephyr.select({"class": name}):
        raise MoiraError(MR_EXISTS, name)
    changes = _resolve_four_aces(ctx, args[1:])
    zephyr.insert(dict({"class": name}, **changes, **ctx.audit()),
                  now=ctx.now)
    return []


@register("update_zephyr_class", "uzcl",
          ("class", "newclass", "xmttype", "xmtname", "subtype", "subname",
           "iwstype", "iwsname", "iuitype", "iuiname"),
          (), side_effects=True, tables=("zephyr", "users", "list"))
def update_zephyr_class(ctx: QueryContext,
                        args: Sequence[str]) -> list[tuple]:
    """Rename a class and/or change its four ACEs."""
    name, newname = args[0], args[1]
    zephyr = ctx.db.table("zephyr")
    row = exactly_one(zephyr.select({"class": name}), MR_NO_MATCH, name)
    if newname != name and zephyr.select({"class": newname}):
        raise MoiraError(MR_EXISTS, newname)
    changes = _resolve_four_aces(ctx, args[2:])
    changes["class"] = newname
    changes.update(ctx.audit())
    zephyr.update_rows([row], changes, now=ctx.now)
    return []


@register("delete_zephyr_class", "dzcl", ("class",), (), side_effects=True,
          tables=("zephyr",))
def delete_zephyr_class(ctx: QueryContext,
                        args: Sequence[str]) -> list[tuple]:
    """Remove a zephyr class."""
    zephyr = ctx.db.table("zephyr")
    row = exactly_one(zephyr.select({"class": args[0]}),
                      MR_NO_MATCH, args[0])
    zephyr.delete_rows([row], now=ctx.now)
    return []
