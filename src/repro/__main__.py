"""Command-line front end: ``python -m repro <command>``.

Commands:

* ``demo``    — build a small deployment and narrate a propagation
  cycle (a condensed examples/quickstart.py).
* ``mrtest``  — an interactive query shell against a fresh deployment
  (type ``help`` for the built-ins, ``quit`` to exit).
* ``serve``   — start a Moira server on TCP and print its address;
  useful for poking at the wire protocol with external tools.
* ``queries`` — print the registry of predefined query handles.
"""

from __future__ import annotations

import argparse
import sys

from repro.core import AthenaDeployment, DeploymentConfig
from repro.workload import PopulationSpec


def small_deployment(users: int = 200,
                     workers: int | None = None) -> AthenaDeployment:
    """A quick demo-scale deployment."""
    return AthenaDeployment(DeploymentConfig(
        population=PopulationSpec(users=users, unregistered_users=20,
                                  nfs_servers=4, maillists=20),
        server_workers=workers))


def cmd_demo(args: argparse.Namespace) -> int:
    """The `demo` subcommand: one narrated propagation cycle."""
    d = small_deployment(args.users)
    print(f"deployment: {len(d.db.table('users'))} users, "
          f"{len(d.db.table('machine'))} machines, "
          f"{len(d.db.table('list'))} lists")
    print("running 25 simulated hours of cron...")
    d.run_hours(25)
    report = d.dcm.run_once()
    print(f"dcm: {d.dcm.total_generations} generations, "
          f"{d.dcm.total_propagations} propagations, "
          f"{d.dcm.total_bytes} bytes shipped")
    login = d.handles.logins[0]
    print(f"hesiod resolves {login}: {d.hesiod.getpwnam(login)}")
    print(f"mail hub routes {login} -> {d.mailhub.resolve(login)}")
    return 0


def cmd_mrtest(args: argparse.Namespace) -> int:
    """The `mrtest` subcommand: interactive query shell."""
    from repro.apps import MrTest

    d = small_deployment(args.users)
    admin = d.handles.logins[0]
    d.make_admin(admin)
    client = d.client_for(admin, "demo", "mrtest")
    mrtest = MrTest(client)
    print(f"moira query shell — authenticated as {admin!r}; "
          "'_list_queries' lists handles, 'quit' exits")
    while True:
        try:
            line = input("moira> ").strip()
        except EOFError:
            break
        if not line:
            continue
        if line in ("quit", "exit", "q"):
            break
        parts = line.split()
        result = mrtest.run(parts[0], *parts[1:])
        print(result.render())
    client.close()
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """The `serve` subcommand: a TCP Moira server until ^C."""
    from repro.protocol.transport import TcpServerTransport

    d = small_deployment(args.users, workers=args.workers)
    tcp = TcpServerTransport(d.server, port=args.port).start()
    host, port = tcp.address
    print(f"moira server listening on {host}:{port} "
          f"(protocol version 2, {d.server.workers} workers); ^C to stop")
    try:
        import time
        while True:
            time.sleep(1)
    except KeyboardInterrupt:
        pass
    finally:
        tcp.stop()
    return 0


def cmd_console(args: argparse.Namespace) -> int:
    """The `console` subcommand: the admin menu over stdin."""
    from repro.apps import MoiraConsole

    d = small_deployment(args.users)
    admin = d.handles.logins[0]
    d.make_admin(admin)
    client = d.client_for(admin, "demo", "console")
    console = MoiraConsole(client)
    print(f"moira administrative console — authenticated as {admin!r}")

    def reader():
        """Yield stdin lines until EOF."""
        while True:
            try:
                yield input("")
            except EOFError:
                return

    inputs = reader()
    from repro.client.menu import MenuSession
    session = MenuSession(console.build_menu(),
                          inputs=list(inputs), output=print)
    session.run()
    client.close()
    return 0


def cmd_queries(args: argparse.Namespace) -> int:
    """The `queries` subcommand: dump the query registry."""
    from repro.queries.base import all_queries

    for query in sorted(all_queries().values(), key=lambda q: q.name):
        kind = "update" if query.side_effects else "query "
        print(f"{query.shortname:4s} {kind} {query.name}"
              f"({', '.join(query.args)})")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Parse arguments and dispatch to a subcommand."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Moira, the Athena Service Management System "
                    "(USENIX 1988) — reproduction CLI")
    parser.add_argument("--users", type=int, default=200,
                        help="population size for the demo deployment")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("demo", help="narrated propagation cycle")
    sub.add_parser("mrtest", help="interactive query shell")
    serve = sub.add_parser("serve", help="run a TCP Moira server")
    serve.add_argument("--port", type=int, default=0)
    serve.add_argument("--workers", type=int, default=None,
                       help="query worker threads (0 = run queries on "
                            "the I/O loop; default min(8, cpus))")
    sub.add_parser("queries", help="list the predefined query handles")
    sub.add_parser("console", help="menu-driven administrative console")

    args = parser.parse_args(argv)
    handler = {
        "demo": cmd_demo,
        "mrtest": cmd_mrtest,
        "serve": cmd_serve,
        "queries": cmd_queries,
        "console": cmd_console,
    }[args.command]
    return handler(args)


if __name__ == "__main__":
    sys.exit(main())
