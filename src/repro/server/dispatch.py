"""The server's bounded worker pool with per-connection FIFO channels.

MCS ("A Customizable Database Server") serves the same fixed-query
architecture as Moira with per-query worker threads; this module is
that upgrade, shaped for the selector transport: the I/O loop submits
decoded frames here and goes straight back to ``select()``, and workers
execute queries and push reply frames to the transport.

Ordering contract: jobs submitted under one *key* (a connection id)
run **one at a time, in submission order** — at most one worker ever
drains a given key, so pipelined requests on one connection answer in
request order while different connections proceed in parallel.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Callable

__all__ = ["WorkerPool"]


class WorkerPool:
    """Bounded thread pool with keyed FIFO serialisation."""

    def __init__(self, size: int, *, name: str = "moira-worker"):
        if size <= 0:
            raise ValueError("WorkerPool needs at least one worker")
        self.size = size
        self._cv = threading.Condition(threading.Lock())
        self._channels: dict[object, deque[Callable[[], None]]] = {}
        self._ready: deque[object] = deque()  # keys with runnable work
        self._active: set[object] = set()     # keys queued or running
        self._queued = 0                      # jobs accepted, not started
        self._stopping = False
        self._threads = [
            threading.Thread(target=self._worker, daemon=True,
                             name=f"{name}-{i}")
            for i in range(size)
        ]
        for thread in self._threads:
            thread.start()

    def submit(self, key: object, job: Callable[[], None]) -> None:
        """Queue *job* on *key*'s channel (FIFO per key)."""
        with self._cv:
            if self._stopping:
                raise RuntimeError("WorkerPool is shut down")
            self._channels.setdefault(key, deque()).append(job)
            self._queued += 1
            if key not in self._active:
                self._active.add(key)
                self._ready.append(key)
                self._cv.notify()

    def _worker(self) -> None:
        while True:
            with self._cv:
                while not self._ready and not self._stopping:
                    self._cv.wait()
                if self._stopping and not self._ready:
                    return
                key = self._ready.popleft()
                job = self._channels[key].popleft()
                self._queued -= 1
            try:
                job()
            except Exception:  # pragma: no cover - jobs catch their own
                pass
            with self._cv:
                channel = self._channels.get(key)
                if channel:
                    # more pipelined work for this connection: requeue
                    # the key (still marked active, so no other worker
                    # raced us here)
                    self._ready.append(key)
                    self._cv.notify()
                else:
                    self._active.discard(key)
                    self._channels.pop(key, None)

    def pending(self) -> int:
        """Jobs queued but not yet started (for tests/stats)."""
        with self._cv:
            return sum(len(c) for c in self._channels.values())

    def queued(self) -> int:
        """O(1) count of accepted-but-not-started jobs — the admission
        depth the server's load shedding compares against its limit."""
        with self._cv:
            return self._queued

    def shutdown(self, *, wait: bool = True, timeout: float = 5.0) -> None:
        """Stop accepting work; drain queued jobs, then stop workers."""
        with self._cv:
            self._stopping = True
            self._cv.notify_all()
        if wait:
            for thread in self._threads:
                thread.join(timeout=timeout)
