"""The Moira server daemon.

Implements the transport ``Dispatcher`` interface: connections are
opened/closed by a transport (TCP or in-process) and each request frame
is decoded, dispatched on its major request number, and answered with
one or more reply frames.  Query results stream back one tuple per
reply with ``MR_MORE_DATA`` followed by a final status reply (§5.3).

The server opens its single database "backend" once at start-up (§5.4);
every connection shares it.  Authentication is per-connection: after a
successful Authenticate request, subsequent requests run as that
principal.  ``_list_users`` is answered from the live connection table,
not the database (§7.0.8).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.db.engine import Database
from repro.db.journal import Journal
from repro.errors import (
    MoiraError,
    MR_ARGS,
    MR_INTERNAL,
    MR_MORE_DATA,
    MR_NO_HANDLE,
    MR_PERM,
)
from repro.kerberos.kdc import KDC
from repro.protocol.wire import (
    MajorRequest,
    decode_request,
    encode_reply,
    unpack_authenticator,
)
from repro.queries.base import (
    QueryContext,
    check_query_access,
    get_query,
)
from repro.server.access import AccessCache
from repro.sim.clock import Clock

__all__ = ["MoiraServer", "ServerStats"]

MOIRA_SERVICE_PRINCIPAL = "moira"


@dataclass
class ServerStats:
    """Counters the daemon keeps about itself."""
    connections_opened: int = 0
    connections_closed: int = 0
    requests_handled: int = 0
    queries_executed: int = 0
    access_checks: int = 0
    auth_successes: int = 0
    auth_failures: int = 0
    tuples_returned: int = 0
    errors_returned: int = 0


@dataclass
class _Connection:
    conn_id: int
    peer: str
    connect_time: int
    principal: str = ""
    client_name: str = ""
    requests: int = field(default=0)


class MoiraServer:
    """The daemon: one shared backend, many connections."""

    def __init__(
        self,
        db: Database,
        clock: Clock,
        kdc: Optional[KDC] = None,
        *,
        journal: Optional[Journal] = None,
        access_cache: Optional[AccessCache] = None,
        dcm_trigger: Optional[Callable[[], None]] = None,
        service_principal: str = MOIRA_SERVICE_PRINCIPAL,
    ):
        self.db = db
        self.clock = clock
        self.kdc = kdc
        self.journal = journal if journal is not None else Journal()
        self.access_cache = access_cache or AccessCache()
        self.dcm_trigger = dcm_trigger
        self.service_principal = service_principal
        self.stats = ServerStats()
        self._connections: dict[int, _Connection] = {}
        self._next_conn = 1
        self._lock = threading.Lock()
        if kdc is not None and not kdc.principal_exists(service_principal):
            kdc.add_service(service_principal)

    # -- Dispatcher interface ---------------------------------------------------

    def open_connection(self, peer: str) -> int:
        """Track a new client connection."""
        with self._lock:
            conn_id = self._next_conn
            self._next_conn += 1
            self._connections[conn_id] = _Connection(
                conn_id=conn_id, peer=peer, connect_time=self.clock.now())
            self.stats.connections_opened += 1
            return conn_id

    def close_connection(self, conn_id: int) -> None:
        """Forget a departed connection."""
        with self._lock:
            if self._connections.pop(conn_id, None) is not None:
                self.stats.connections_closed += 1

    def handle_frame(self, conn_id: int, frame: bytes) -> list[bytes]:
        """Decode, dispatch, and answer one request frame."""
        conn = self._connections.get(conn_id)
        if conn is None:
            return [encode_reply(MR_INTERNAL)]
        self.stats.requests_handled += 1
        conn.requests += 1
        try:
            request = decode_request(frame)
        except MoiraError as exc:
            self.stats.errors_returned += 1
            return [encode_reply(exc.code)]
        try:
            if request.major is MajorRequest.NOOP:
                return [encode_reply(0)]
            if request.major is MajorRequest.AUTHENTICATE:
                return self._do_auth(conn, request.args)
            if request.major is MajorRequest.QUERY:
                return self._do_query(conn, request.str_args())
            if request.major is MajorRequest.ACCESS:
                return self._do_access(conn, request.str_args())
            if request.major is MajorRequest.TRIGGER_DCM:
                return self._do_trigger_dcm(conn)
            return [encode_reply(MR_NO_HANDLE)]
        except MoiraError as exc:
            self.stats.errors_returned += 1
            return [encode_reply(exc.code, (exc.detail,) if exc.detail
                                 else ())]
        except Exception as exc:  # never crash the daemon on one request
            self.stats.errors_returned += 1
            return [encode_reply(MR_INTERNAL, (repr(exc),))]

    # -- major request handlers ---------------------------------------------------

    def _do_auth(self, conn: _Connection, args: tuple[bytes, ...]) -> list[bytes]:
        if len(args) != 2:
            raise MoiraError(MR_ARGS, "auth wants clientname, authenticator")
        if self.kdc is None:
            raise MoiraError(MR_PERM, "server has no Kerberos")
        client_name = args[0].decode("utf-8")
        try:
            auth = unpack_authenticator(args[1])
            principal = self.kdc.verify_authenticator(
                auth, self.service_principal)
        except MoiraError:
            self.stats.auth_failures += 1
            raise
        conn.principal = principal
        conn.client_name = client_name
        self.stats.auth_successes += 1
        return [encode_reply(0)]

    def _context_for(self, conn: _Connection) -> QueryContext:
        return QueryContext(
            db=self.db,
            clock=self.clock,
            caller=conn.principal,
            client=conn.client_name or conn.peer,
            journal=self.journal,
        )

    def _do_query(self, conn: _Connection, args: list[str]) -> list[bytes]:
        if not args:
            raise MoiraError(MR_ARGS, "query wants a handle name")
        name, query_args = args[0], args[1:]
        if name == "_list_users":
            return self._list_users()
        query = get_query(name)
        if query is None:
            raise MoiraError(MR_NO_HANDLE, name)
        ctx = self._context_for(conn)
        self._checked_access(ctx, name, tuple(query_args))
        tuples = self._execute_unchecked(ctx, query, query_args)
        self.stats.queries_executed += 1
        if query.side_effects:
            self.access_cache.invalidate()
        replies = [encode_reply(MR_MORE_DATA, t) for t in tuples]
        self.stats.tuples_returned += len(tuples)
        replies.append(encode_reply(0))
        return replies

    def _execute_unchecked(self, ctx: QueryContext, query, query_args):
        """Run a query whose access was already checked (and cached)."""
        from repro.errors import MR_NO_MATCH

        if not query.variable_args and len(query_args) != len(query.args):
            raise MoiraError(MR_ARGS, query.name)
        with ctx.db.lock:
            result = query.handler(ctx, query_args)
        if query.side_effects and ctx.journal is not None:
            ctx.journal.record(ctx.now, ctx.caller or "unauthenticated",
                               query.name, tuple(str(a) for a in query_args))
        if not query.side_effects and not result:
            raise MoiraError(MR_NO_MATCH, query.name)
        return result

    def _checked_access(self, ctx: QueryContext, name: str,
                        args: tuple[str, ...]) -> None:
        """check_query_access with the §5.5 access cache in front."""
        self.stats.access_checks += 1
        query = get_query(name)
        if query is None:
            raise MoiraError(MR_NO_HANDLE, name)
        cached = self.access_cache.lookup(ctx.caller, name, args)
        if cached is True:
            return
        if cached is False:
            raise MoiraError(MR_PERM, name)
        try:
            check_query_access(ctx, query, args)
        except MoiraError as exc:
            if exc.code == MR_PERM:
                self.access_cache.store(ctx.caller, name, args, False)
            raise
        self.access_cache.store(ctx.caller, name, args, True)

    def _do_access(self, conn: _Connection, args: list[str]) -> list[bytes]:
        """The Access major request: would this query be allowed?"""
        if not args:
            raise MoiraError(MR_ARGS, "access wants a handle name")
        name, query_args = args[0], args[1:]
        query = get_query(name)
        if query is None:
            raise MoiraError(MR_NO_HANDLE, name)
        if not query.variable_args and len(query_args) != len(query.args):
            raise MoiraError(MR_ARGS, name)
        ctx = self._context_for(conn)
        self._checked_access(ctx, name, tuple(query_args))
        return [encode_reply(0)]

    def _do_trigger_dcm(self, conn: _Connection) -> list[bytes]:
        ctx = self._context_for(conn)
        if not ctx.on_capability("trigger_dcm"):
            raise MoiraError(MR_PERM, "trigger_dcm")
        if self.dcm_trigger is None:
            raise MoiraError(MR_INTERNAL, "no DCM attached")
        self.dcm_trigger()
        return [encode_reply(0)]

    def _list_users(self) -> list[bytes]:
        replies = []
        with self._lock:
            for conn in self._connections.values():
                host, _, port = conn.peer.partition(":")
                replies.append(encode_reply(
                    MR_MORE_DATA,
                    (conn.principal or "unauthenticated", host,
                     port or "0", str(conn.connect_time),
                     str(conn.conn_id))))
        replies.append(encode_reply(0))
        return replies
