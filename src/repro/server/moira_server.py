"""The Moira server daemon.

Implements the transport ``Dispatcher`` interface: connections are
opened/closed by a transport (TCP or in-process) and each request frame
is decoded, dispatched on its major request number, and answered with
one or more reply frames.  Query results stream back one tuple per
reply with ``MR_MORE_DATA`` followed by a final status reply (§5.3).

The server opens its single database "backend" once at start-up (§5.4);
every connection shares it.  Authentication is per-connection: after a
successful Authenticate request, subsequent requests run as that
principal.  ``_list_users`` is answered from the live connection table,
not the database (§7.0.8).

Concurrency (beyond the paper, after MCS's multithreaded engine):

* On the default MVCC engine, queries declared ``side_effects=False``
  pin a committed snapshot seq and scan immutable row versions without
  taking any lock — readers never block on writers.  Mutations still
  take the exclusive lock, so journal ordering and the DCM's per-table
  data versions keep their invariants; only writer–writer exclusion
  remains.  Non-MVCC backends (``set_mvcc(False)``, SQLite) fall back
  to the original shared/exclusive RWLock discipline.
* A bounded :class:`~repro.server.dispatch.WorkerPool` (``workers``
  constructor knob; 0 = the original inline path) executes requests
  off the transport's I/O loop, FIFO per connection.
* :meth:`handle_frame_stream` yields reply frames as tuples are
  produced, so a 10k-tuple retrieve starts answering before the scan
  finishes instead of materialising every encoded reply in a list.

Every query execution is folded into a per-handle
:class:`~repro.server.metrics.QueryMetrics` row (calls, errors, tuples,
wall histograms, writer-only lock-wait histograms, and MVCC snapshot
counters: rows scanned vs returned, snapshot-pin age), surfaced through
the ``_query_stats`` pseudo-query the same way ``_list_users`` reads
the connection table; engine-wide MVCC counters (commits, GC reclaim,
active pins) ride along as ``_mvcc.*`` rows.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Iterator, Optional

from repro.db.engine import Database
from repro.db.journal import Journal
from repro.errors import (
    MoiraError,
    MR_ARGS,
    MR_BUSY,
    MR_FENCED,
    MR_INTERNAL,
    MR_MORE_DATA,
    MR_NO_HANDLE,
    MR_NO_MATCH,
    MR_PERM,
)
from repro.kerberos.kdc import KDC
from repro.protocol.wire import (
    MajorRequest,
    decode_request,
    encode_reply,
    unpack_authenticator,
)
from repro.queries.base import (
    Query,
    QueryContext,
    check_query_access,
    get_query,
    query_lock,
)
from repro.server.access import AccessCache
from repro.server.dispatch import WorkerPool
from repro.server.metrics import QueryMetrics
from repro.sim.clock import Clock
from repro.sim.faults import FaultInjector

__all__ = ["MoiraServer", "ServerStats", "default_workers"]

MOIRA_SERVICE_PRINCIPAL = "moira"


def default_workers() -> int:
    """The default serve-pool width: ``min(8, cpus)``."""
    return min(8, os.cpu_count() or 1)


class ServerStats:
    """Counters the daemon keeps about itself (thread-safe).

    Counters stay plain integer attributes (read them directly), but
    increments go through :meth:`incr`, which serialises on one of a
    small set of sharded locks — counters on different shards never
    contend with each other under the worker pool.
    """

    FIELDS = (
        "connections_opened",
        "connections_closed",
        "requests_handled",
        "queries_executed",
        "access_checks",
        "auth_successes",
        "auth_failures",
        "tuples_returned",
        "errors_returned",
        "requests_shed",
        "deadlines_expired",
    )
    _SHARDS = 4

    def __init__(self) -> None:
        locks = tuple(threading.Lock() for _ in range(self._SHARDS))
        self._shard = {name: locks[i % self._SHARDS]
                       for i, name in enumerate(self.FIELDS)}
        for name in self.FIELDS:
            setattr(self, name, 0)

    def incr(self, name: str, amount: int = 1) -> None:
        """Atomically add *amount* to the counter *name*."""
        with self._shard[name]:
            setattr(self, name, getattr(self, name) + amount)

    def as_dict(self) -> dict[str, int]:
        """Snapshot of every counter."""
        return {name: getattr(self, name) for name in self.FIELDS}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"ServerStats({inner})"


@dataclass
class _Connection:
    conn_id: int
    peer: str
    connect_time: int
    principal: str = ""
    client_name: str = ""
    requests: int = field(default=0)


class MoiraServer:
    """The daemon: one shared backend, many connections."""

    def __init__(
        self,
        db: Database,
        clock: Clock,
        kdc: Optional[KDC] = None,
        *,
        journal: Optional[Journal] = None,
        access_cache: Optional[AccessCache] = None,
        dcm_trigger: Optional[Callable[[], None]] = None,
        service_principal: str = MOIRA_SERVICE_PRINCIPAL,
        workers: Optional[int] = None,
        metrics: Optional[QueryMetrics] = None,
        faults: Optional[FaultInjector] = None,
        admission_limit: Optional[int] = None,
        request_deadline: Optional[float] = None,
        dcm_stats: Optional[Callable[[], list]] = None,
        write_batch: int = 8,
        write_shards: bool = True,
    ):
        self.db = db
        self.clock = clock
        self.kdc = kdc
        self.journal = journal if journal is not None else Journal()
        self.access_cache = access_cache or AccessCache()
        self.dcm_trigger = dcm_trigger
        self.service_principal = service_principal
        self.stats = ServerStats()
        self.metrics = metrics if metrics is not None else QueryMetrics()
        self.workers = default_workers() if workers is None else workers
        self._pool: Optional[WorkerPool] = (
            WorkerPool(self.workers) if self.workers > 0 else None)
        # graceful degradation: bound the admission queue in front of
        # the pool (None = unbounded, the historical behaviour) and give
        # each accepted request a real-time completion deadline; both
        # answer MR_BUSY, which idempotent clients retry with backoff
        self.faults = faults
        self.admission_limit = admission_limit
        self.request_deadline = request_deadline
        # provider of per-target DCM retry/breaker rows for _dcm_stats
        # (wired by the deployment to DCM.dcm_stats_tuples)
        self.dcm_stats = dcm_stats
        # provider of CDC freshness rows for _dcm_stats (wired by the
        # deployment to CdcExtractor.stats_tuples when cdc=True)
        self.cdc_stats: Optional[Callable[[], list]] = None
        # write path: group-committed batching over sharded writer
        # locks (write_batch=0 restores the seed's one-write-one-fsync
        # exclusive path; write_shards=False keeps batching but runs
        # every lane under full exclusion)
        self.write_batch = int(write_batch)
        self.write_shards = bool(write_shards)
        self._write_batcher = None
        if self.write_batch > 0:
            from repro.server.write_batch import WriteBatcher
            self._write_batcher = WriteBatcher(
                db, window=self.write_batch, sharded=self.write_shards,
                metrics=self.metrics)
        self._connections: dict[int, _Connection] = {}
        self._next_conn = 1
        self._lock = threading.Lock()
        if kdc is not None and not kdc.principal_exists(service_principal):
            kdc.add_service(service_principal)
        # replication-feed identity: pulls must authenticate as this
        # service principal when a KDC is present (replicas kinit from
        # its srvtab); registered here so the srvtab exists before any
        # replica attaches
        from repro.replication.feed import REPL_SERVICE_PRINCIPAL
        self.repl_principal = REPL_SERVICE_PRINCIPAL
        if kdc is not None and not kdc.principal_exists(self.repl_principal):
            kdc.add_service(self.repl_principal)
        # feed topology as this node knows it: name -> (address, role),
        # maintained by ReplicaCluster / FailoverCoordinator and served
        # as _endpoint rows by _repl_status and _query_stats
        self.repl_endpoints: dict[str, tuple[str, str]] = {}

    @property
    def role(self) -> str:
        """This node's cluster role: ``primary`` or ``fenced``.

        A replica's serving wrapper overrides this; on a plain server
        the role is primary unless a newer epoch fenced our journal.
        """
        return "fenced" if self.journal.fenced else "primary"

    def shutdown(self) -> None:
        """Stop the worker pool (idempotent; inline mode is a no-op)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    # -- Dispatcher interface ---------------------------------------------------

    def open_connection(self, peer: str) -> int:
        """Track a new client connection."""
        with self._lock:
            conn_id = self._next_conn
            self._next_conn += 1
            self._connections[conn_id] = _Connection(
                conn_id=conn_id, peer=peer, connect_time=self.clock.now())
        self.stats.incr("connections_opened")
        return conn_id

    def close_connection(self, conn_id: int) -> None:
        """Forget a departed connection."""
        with self._lock:
            gone = self._connections.pop(conn_id, None) is not None
        if gone:
            self.stats.incr("connections_closed")

    def handle_frame(self, conn_id: int, frame: bytes) -> list[bytes]:
        """Decode, dispatch, and answer one request frame."""
        return list(self.handle_frame_stream(conn_id, frame))

    def handle_frame_stream(self, conn_id: int,
                            frame: bytes) -> Iterator[bytes]:
        """Like :meth:`handle_frame`, but yields reply frames as they
        are produced — large retrieves start answering before the scan
        completes, bounding per-connection server memory."""
        if self.faults is not None:
            # a ServerCrash armed here is a BaseException: it sails past
            # the blanket handlers below, exactly like a real SIGKILL
            self.faults.fire("server.frame", conn_id=conn_id)
        conn = self._connections.get(conn_id)
        if conn is None:
            yield encode_reply(MR_INTERNAL)
            return
        self.stats.incr("requests_handled")
        conn.requests += 1
        try:
            request = decode_request(frame)
        except MoiraError as exc:
            self.stats.incr("errors_returned")
            yield encode_reply(exc.code)
            return
        try:
            if request.major is MajorRequest.NOOP:
                yield encode_reply(0)
            elif request.major is MajorRequest.AUTHENTICATE:
                yield from self._do_auth(conn, request.args)
            elif request.major is MajorRequest.QUERY:
                yield from self._do_query(conn, request.str_args())
            elif request.major is MajorRequest.ACCESS:
                yield from self._do_access(conn, request.str_args())
            elif request.major is MajorRequest.TRIGGER_DCM:
                yield from self._do_trigger_dcm(conn)
            else:
                yield encode_reply(MR_NO_HANDLE)
        except MoiraError as exc:
            self.stats.incr("errors_returned")
            yield encode_reply(exc.code, (exc.detail,) if exc.detail
                               else ())
        except Exception as exc:  # never crash the daemon on one request
            self.stats.incr("errors_returned")
            yield encode_reply(MR_INTERNAL, (repr(exc),))

    def submit_frame(self, conn_id: int, frame: bytes,
                     on_reply: Callable[[bytes], bool],
                     on_done: Callable[[], None]) -> bool:
        """Dispatch one frame asynchronously on the worker pool.

        Returns False when there is no pool (``workers=0``) — the
        caller must fall back to inline :meth:`handle_frame`.  Replies
        go to ``on_reply(frame) -> bool`` (return False to abandon the
        stream, e.g. the connection died); ``on_done()`` always fires
        exactly once, after the last reply.

        Graceful degradation: when ``admission_limit`` is set and that
        many accepted requests are already waiting for a worker, the
        frame is **shed** — answered immediately with the retryable
        ``MR_BUSY`` instead of joining a queue the server cannot drain.
        """
        if self._pool is None:
            return False
        if self.admission_limit is not None and \
                self._pool.queued() >= self.admission_limit:
            self.stats.incr("requests_shed")
            try:
                on_reply(encode_reply(MR_BUSY, ("admission queue full",)))
            finally:
                on_done()
            return True
        enqueued = time.monotonic()
        self._pool.submit(
            conn_id, lambda: self._run_frame(conn_id, frame,
                                             on_reply, on_done,
                                             enqueued=enqueued))
        return True

    def _run_frame(self, conn_id: int, frame: bytes,
                   on_reply: Callable[[bytes], bool],
                   on_done: Callable[[], None],
                   enqueued: Optional[float] = None) -> None:
        if enqueued is not None and self.request_deadline is not None \
                and time.monotonic() - enqueued > self.request_deadline:
            # the request aged out waiting for a worker; answering it
            # now would only add more load behind an overload — tell
            # the client to retry instead
            self.stats.incr("deadlines_expired")
            try:
                on_reply(encode_reply(MR_BUSY, ("deadline expired",)))
            finally:
                on_done()
            return
        stream = self.handle_frame_stream(conn_id, frame)
        try:
            for reply in stream:
                if not on_reply(reply):
                    break
        finally:
            stream.close()  # releases a held shared lock mid-stream
            on_done()

    # -- major request handlers ---------------------------------------------------

    def _do_auth(self, conn: _Connection, args: tuple[bytes, ...]) -> list[bytes]:
        if len(args) != 2:
            raise MoiraError(MR_ARGS, "auth wants clientname, authenticator")
        if self.kdc is None:
            raise MoiraError(MR_PERM, "server has no Kerberos")
        client_name = args[0].decode("utf-8")
        try:
            auth = unpack_authenticator(args[1])
            principal = self.kdc.verify_authenticator(
                auth, self.service_principal)
        except MoiraError:
            self.stats.incr("auth_failures")
            raise
        conn.principal = principal
        conn.client_name = client_name
        self.stats.incr("auth_successes")
        return [encode_reply(0)]

    def _context_for(self, conn: _Connection) -> QueryContext:
        return QueryContext(
            db=self.db,
            clock=self.clock,
            caller=conn.principal,
            client=conn.client_name or conn.peer,
            journal=self.journal,
        )

    def _do_query(self, conn: _Connection,
                  args: list[str]) -> Iterator[bytes]:
        if not args:
            raise MoiraError(MR_ARGS, "query wants a handle name")
        name, query_args = args[0], args[1:]
        if name == "_list_users":
            yield from self._list_users()
            return
        if name == "_query_stats":
            yield from self._query_stats(query_args)
            return
        if name == "_dcm_stats":
            yield from self._dcm_stats()
            return
        if name == "_wal_stats":
            yield from self._wal_stats()
            return
        if name == "_repl_read":
            # the replica router's freshness wrapper — on a live
            # primary the session token is trivially satisfied, so just
            # unwrap.  A *fenced* primary is frozen at fence time and
            # must not serve stale reads as authoritative: answer
            # MR_BUSY (retryable) so the router routes around it.
            if len(query_args) < 2:
                raise MoiraError(MR_ARGS, "_repl_read wants min_seq, query")
            if self.journal.fenced:
                raise MoiraError(
                    MR_BUSY,
                    f"fenced at seq {self.journal.current_seq()}; "
                    "not authoritative")
            yield from self._do_query(conn, query_args[1:])
            return
        if name.startswith("_repl_"):
            from repro.replication.feed import serve_repl_query
            yield from serve_repl_query(self, name, query_args,
                                        principal=conn.principal)
            return
        query = get_query(name)
        if query is None:
            raise MoiraError(MR_NO_HANDLE, name)
        ctx = self._context_for(conn)
        started = time.perf_counter()
        timing = {"lock_wait_s": None}
        count = 0
        failed = True
        try:
            self._checked_access_stable(ctx, query, tuple(query_args))
            if query.side_effects:
                tuples, mutated = self._execute_write(
                    ctx, query, query_args, timing=timing)
                self.stats.incr("queries_executed")
                self.access_cache.invalidate(mutated)
                if "members" in mutated:
                    self._poke_closure()
                for t in tuples:
                    count += 1
                    yield encode_reply(MR_MORE_DATA, t)
                self.stats.incr("tuples_returned", count)
                failed = False
                yield encode_reply(0)
                return
            for t in self._execute_read(ctx, query, query_args,
                                        timing=timing):
                count += 1
                yield encode_reply(MR_MORE_DATA, t)
            self.stats.incr("queries_executed")
            self.stats.incr("tuples_returned", count)
            failed = False
            yield encode_reply(0)
        except GeneratorExit:
            failed = False  # client abandoned the stream; not a failure
            raise
        finally:
            # streamed retrievals are timed to the last tuple drained —
            # the latency a client actually sees
            self.metrics.record(
                query.name, wall_s=time.perf_counter() - started,
                tuples=count, error=failed,
                lock_wait_s=timing.get("lock_wait_s"),
                rows_scanned=timing.get("rows_scanned", 0),
                rows_returned=timing.get("rows_returned", 0),
                snap_age_s=timing.get("snap_age_s"))

    @staticmethod
    def _check_argc(query: Query, query_args: list[str]) -> None:
        if not query.variable_args and len(query_args) != len(query.args):
            raise MoiraError(MR_ARGS, query.name)

    @staticmethod
    def _backend_delay(db) -> None:
        delay = getattr(db, "sim_backend_latency", 0.0)
        if delay:
            time.sleep(delay)

    def _execute_write(self, ctx: QueryContext, query: Query,
                       query_args: list[str],
                       timing: Optional[dict] = None
                       ) -> tuple[list, set[str]]:
        """Run a mutating query on the write path.

        With ``write_batch > 0`` the write joins a group-commit window
        (:class:`~repro.server.write_batch.WriteBatcher`): writes with
        disjoint shard footprints commit concurrently, and the whole
        window shares one journal fsync.  ``write_batch=0`` is the
        seed path — exclusive lock, one fsync per write.

        Returns (result tuples, names of tables whose data version
        moved) — the latter scopes the access-cache invalidation.
        *timing*, when given, receives ``lock_wait_s``.
        """
        self._check_argc(query, query_args)
        if self.journal is not None and self.journal.fenced:
            # a newer epoch owns the cluster: refuse before the handler
            # mutates anything — the client router re-routes on MR_FENCED
            raise MoiraError(
                MR_FENCED,
                f"epoch {self.journal.epoch} fenced by "
                f"{self.journal.fenced_by}")
        if self._write_batcher is not None and ctx.db is self.db:
            return self._write_batcher.submit(
                ctx, query, query_args, timing=timing,
                run_direct=self._execute_write_direct)
        return self._execute_write_direct(ctx, query, query_args,
                                          timing=timing)

    def _execute_write_direct(self, ctx: QueryContext, query: Query,
                              query_args: list[str],
                              timing: Optional[dict] = None,
                              fsync: bool = True
                              ) -> tuple[list, set[str]]:
        """The seed write path: one write alone under the exclusive
        lock.  *fsync=False* defers durability to the caller (the
        batcher's one sync per window)."""
        wait_started = time.perf_counter()
        with query_lock(ctx.db, True):
            if timing is not None:
                timing["lock_wait_s"] = time.perf_counter() - wait_started
            self._backend_delay(ctx.db)
            before = ctx.db.versions()
            result = query.handler(ctx, query_args)
            if not isinstance(result, list):
                result = list(result)
            after = ctx.db.versions()
            if ctx.journal is not None:
                # still inside the exclusive section: journal order
                # always matches the order mutations hit the database,
                # so replay after a restore converges.  On a sharded
                # engine the facade transaction is open here — stamp
                # its commit seq and bindings into the entry
                info = getattr(ctx.db, "_txn_info", None)
                seq, bindings = info() if info is not None else (0, None)
                ctx.journal.record(
                    ctx.now, ctx.caller or "unauthenticated",
                    query.name, tuple(str(a) for a in query_args),
                    client=ctx.client, commit_seq=seq, bindings=bindings,
                    fsync=fsync)
        mutated = {name for name, version in after.items()
                   if before.get(name) != version}
        return result, mutated

    def _execute_read(self, ctx: QueryContext, query: Query,
                      query_args: list[str],
                      timing: Optional[dict] = None) -> Iterator[tuple]:
        """Run a retrieval, yielding tuples.

        On an MVCC backend the read pins a snapshot and never takes a
        lock at all: lazy handlers stream their whole (possibly long)
        result off one consistent cut while writers commit freely
        alongside.  The pin is released in ``finally``, so an
        abandoned stream (``GeneratorExit``) unpins too.

        On a non-MVCC backend (``set_mvcc(False)``, SQLite) the seed
        path runs: shared lock, list results release it before
        streaming, lazy results stream under it.  *timing*, when
        given, receives ``lock_wait_s`` (legacy path only — the MVCC
        path reports snapshot counters instead, keeping the lock-wait
        histogram writer-only).
        """
        self._check_argc(query, query_args)
        db = ctx.db
        if getattr(db, "mvcc_enabled", False):
            snapshot = db.pin_snapshot()
            try:
                self._backend_delay(db)
                result = query.handler(replace(ctx, db=snapshot),
                                       query_args)
                if not isinstance(result, list):
                    iterator = iter(result)
                    try:
                        first = next(iterator)
                    except StopIteration:
                        raise MoiraError(MR_NO_MATCH,
                                         query.name) from None
                    yield first
                    yield from iterator
                    return
                if not result:
                    raise MoiraError(MR_NO_MATCH, query.name)
            finally:
                if timing is not None:
                    timing["rows_scanned"] = snapshot.rows_scanned
                    timing["rows_returned"] = snapshot.rows_returned
                    timing["snap_age_s"] = snapshot.age()
                db.unpin_snapshot(snapshot)
            yield from result
            return
        wait_started = time.perf_counter()
        with query_lock(db, False):
            if timing is not None:
                timing["lock_wait_s"] = time.perf_counter() - wait_started
            self._backend_delay(db)
            result = query.handler(ctx, query_args)
            if not isinstance(result, list):
                iterator = iter(result)
                try:
                    first = next(iterator)
                except StopIteration:
                    raise MoiraError(MR_NO_MATCH, query.name) from None
                yield first
                yield from iterator
                return
        if not result:
            raise MoiraError(MR_NO_MATCH, query.name)
        yield from result

    def _execute_unchecked(self, ctx: QueryContext, query: Query,
                           query_args: list[str]) -> list:
        """Run a query whose access was already checked (and cached)."""
        if query.side_effects:
            return self._execute_write(ctx, query, query_args)[0]
        return list(self._execute_read(ctx, query, query_args))

    def _checked_access_stable(self, ctx: QueryContext, query: Query,
                               args: tuple[str, ...]) -> None:
        """Access check against a pinned snapshot when MVCC is on.

        The check runs before any lock is taken; with sharded writers
        committing concurrently a live-table read here could see a
        half-applied mutation.  A snapshot pin gives the check one
        consistent committed cut instead (the generation guard in
        :meth:`_checked_access` already discards decisions that a
        mutation invalidated mid-check)."""
        db = self.db
        if getattr(db, "mvcc_enabled", False):
            snapshot = db.pin_snapshot()
            try:
                self._checked_access(replace(ctx, db=snapshot),
                                     query, args)
                return
            finally:
                db.unpin_snapshot(snapshot)
        self._checked_access(ctx, query, args)

    def _checked_access(self, ctx: QueryContext, query: Query,
                        args: tuple[str, ...]) -> None:
        """check_query_access with the §5.5 access cache in front."""
        self.stats.incr("access_checks")
        # capture the generation before the check runs: if an
        # ACL-relevant mutation invalidates mid-check, store() discards
        # the now-stale decision instead of caching it under the new
        # generation (TOCTOU)
        generation = self.access_cache.generation_now()
        cached = self.access_cache.lookup(ctx.caller, query.name, args)
        if cached is True:
            return
        if cached is False:
            raise MoiraError(MR_PERM, query.name)
        try:
            check_query_access(ctx, query, args)
        except MoiraError as exc:
            if exc.code == MR_PERM:
                self.access_cache.store(ctx.caller, query.name, args,
                                        False, generation=generation)
            raise
        self.access_cache.store(ctx.caller, query.name, args, True,
                                generation=generation)

    def _do_access(self, conn: _Connection, args: list[str]) -> list[bytes]:
        """The Access major request: would this query be allowed?"""
        if not args:
            raise MoiraError(MR_ARGS, "access wants a handle name")
        name, query_args = args[0], args[1:]
        query = get_query(name)
        if query is None:
            raise MoiraError(MR_NO_HANDLE, name)
        self._check_argc(query, query_args)
        ctx = self._context_for(conn)
        self._checked_access_stable(ctx, query, tuple(query_args))
        return [encode_reply(0)]

    def _do_trigger_dcm(self, conn: _Connection) -> list[bytes]:
        ctx = self._context_for(conn)
        if not ctx.on_capability("trigger_dcm"):
            raise MoiraError(MR_PERM, "trigger_dcm")
        if self.dcm_trigger is None:
            raise MoiraError(MR_INTERNAL, "no DCM attached")
        self.dcm_trigger()
        return [encode_reply(0)]

    def _poke_closure(self) -> None:
        """Opportunistically sync the membership-closure index after a
        members mutation, so the replay cost lands here instead of on
        the next access check's critical path.  Best-effort: the
        closure self-heals lazily if this fails."""
        get = getattr(self.db, "membership_closure", None)
        if get is None:
            return
        try:
            closure = get()
            if closure is not None:
                closure.poke()
        except Exception:
            pass

    def _query_stats(self, query_args: list[str]) -> Iterator[bytes]:
        """The ``_query_stats`` pseudo-query: per-handle metrics rows,
        optionally filtered to one handle name (first argument)."""
        handle = query_args[0] if query_args else None
        for t in self.metrics.report_tuples(handle):
            yield encode_reply(MR_MORE_DATA, t)
        if handle is None:
            # engine-level MVCC counters ride along as two-column rows
            # so one _query_stats round trip paints the whole picture
            mvcc_stats = getattr(self.db, "mvcc_stats", None)
            if callable(mvcc_stats):
                for key, value in sorted(mvcc_stats().items()):
                    yield encode_reply(MR_MORE_DATA,
                                       ("_mvcc." + key, str(value)))
            # cluster topology rides along too: the same role/epoch/
            # endpoint rows _repl_status serves, visible from any node
            for row in self.repl_stat_rows():
                yield encode_reply(MR_MORE_DATA, row)
        yield encode_reply(0)

    def repl_stat_rows(self) -> list[tuple[str, str]]:
        """``_repl.*`` topology rows for `_query_stats`: this node's
        role, cluster epoch, and the feed endpoints it knows about."""
        rows = [("_repl.role", self.role),
                ("_repl.epoch", str(self.journal.epoch))]
        if self.journal.fenced_by:
            rows.append(("_repl.fenced_by", str(self.journal.fenced_by)))
        for name, (address, role) in sorted(self.repl_endpoints.items()):
            rows.append((f"_repl.endpoint.{name}", f"{address} {role}"))
        return rows

    def _dcm_stats(self) -> Iterator[bytes]:
        """The ``_dcm_stats`` pseudo-query: the server's degradation
        counters, the DCM's per-target retry/breaker rows (service,
        machine, breaker state, attempts, successes, soft, hard,
        breaker_opens, consecutive_soft), then — when the CDC pipeline
        is wired — the extractor's freshness rows (``_cdc`` counters:
        cursor, cursor_lag, debounce_occupancy, pushes_coalesced...
        and per-service ``_cdc.service`` rows carrying
        last_converged_seq; docs/DCM_PIPELINE.md)."""
        yield encode_reply(MR_MORE_DATA,
                           ("_server", "requests_shed",
                            str(self.stats.requests_shed)))
        yield encode_reply(MR_MORE_DATA,
                           ("_server", "deadlines_expired",
                            str(self.stats.deadlines_expired)))
        if self.dcm_stats is not None:
            for t in self.dcm_stats():
                yield encode_reply(MR_MORE_DATA, tuple(t))
        if self.cdc_stats is not None:
            for t in self.cdc_stats():
                yield encode_reply(MR_MORE_DATA, tuple(t))
        yield encode_reply(0)

    def _wal_stats(self) -> Iterator[bytes]:
        """The ``_wal_stats`` pseudo-query: journal durability counters
        (appends, fsyncs, mean batch size, segments, retained entries)
        as ``_wal.*`` rows, then the write batcher's group-commit
        window occupancy as ``_batch.*`` rows."""
        stats = self.journal.stats() if self.journal is not None else {}
        for key in sorted(stats):
            yield encode_reply(MR_MORE_DATA,
                               ("_wal." + key, str(stats[key])))
        if self._write_batcher is not None:
            for key, value in sorted(
                    self._write_batcher.occupancy().items()):
                yield encode_reply(MR_MORE_DATA,
                                   ("_batch." + key, str(value)))
        yield encode_reply(0)

    def _list_users(self) -> list[bytes]:
        replies = []
        with self._lock:
            for conn in self._connections.values():
                host, _, port = conn.peer.partition(":")
                replies.append(encode_reply(
                    MR_MORE_DATA,
                    (conn.principal or "unauthenticated", host,
                     port or "0", str(conn.connect_time),
                     str(conn.conn_id))))
        replies.append(encode_reply(0))
        return replies
