"""The Moira server — a single UNIX process fronting the database (§5.4).

It listens for connections (TCP via ``TcpServerTransport`` or in-process
for tests), authenticates clients with the simulated Kerberos, performs
access control on side-effecting queries via the capacls relation, and
executes predefined queries against the one shared database backend
opened "only once, at the start up time of the daemon".
"""

from repro.server.access import AccessCache, seed_capacls
from repro.server.moira_server import MoiraServer

__all__ = ["MoiraServer", "AccessCache", "seed_capacls"]
