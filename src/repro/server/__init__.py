"""The Moira server — a single UNIX process fronting the database (§5.4).

It listens for connections (TCP via ``TcpServerTransport`` or in-process
for tests), authenticates clients with the simulated Kerberos, performs
access control on side-effecting queries via the capacls relation, and
executes predefined queries against the one shared database backend
opened "only once, at the start up time of the daemon".
"""

from repro.server.access import ACL_TABLES, AccessCache, seed_capacls
from repro.server.dispatch import WorkerPool
from repro.server.moira_server import MoiraServer, ServerStats

__all__ = ["MoiraServer", "ServerStats", "AccessCache", "ACL_TABLES",
           "WorkerPool", "seed_capacls"]
