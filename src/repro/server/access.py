"""Access control support: capability ACL seeding and the access cache.

§5.5: "the server performs access control on all queries which might
side-effect the database ... it is expected that many access checks
will have to be performed twice ... some form of access caching will
eventually be worked into the server for performance reasons."  The
cache here is that anticipated optimisation, made toggleable so the E8
benchmark can measure its effect.  Entries are invalidated wholesale on
any database mutation (ACL-relevant state lives in many relations, so a
generation counter is the honest invalidation scheme).
"""

from __future__ import annotations

from repro.db.engine import Database
from repro.queries.base import all_queries

__all__ = ["AccessCache", "seed_capacls"]


class AccessCache:
    """Memoises (principal, query, args) -> allowed decisions."""

    def __init__(self, enabled: bool = True, max_entries: int = 4096):
        self.enabled = enabled
        self.max_entries = max_entries
        self._cache: dict[tuple, bool] = {}
        self.generation = 0
        self.hits = 0
        self.misses = 0

    def lookup(self, principal: str, query: str,
               args: tuple[str, ...]) -> bool | None:
        """Cached decision for (principal, query, args), or None."""
        if not self.enabled:
            return None
        key = (self.generation, principal, query, args)
        found = self._cache.get(key)
        if found is None:
            self.misses += 1
        else:
            self.hits += 1
        return found

    def store(self, principal: str, query: str, args: tuple[str, ...],
              allowed: bool) -> None:
        """Remember a decision for the current generation."""
        if not self.enabled:
            return
        if len(self._cache) >= self.max_entries:
            self._cache.clear()
        self._cache[(self.generation, principal, query, args)] = allowed

    def invalidate(self) -> None:
        """Any mutation may change who is allowed to do what."""
        self.generation += 1
        if len(self._cache) >= self.max_entries:
            self._cache.clear()


def seed_capacls(db: Database, admin_list: str = "moira-admins",
                 *, now: int = 0) -> int:
    """Point every registered query's capability at *admin_list*.

    The production database gave each query a capability row; here the
    deployment bootstrap points them all at one administrators list
    (callers refine individual capabilities afterwards with ordinary
    queries).  Returns the list_id used.
    """
    lists = db.table("list")
    existing = lists.select({"name": admin_list})
    if existing:
        list_id = existing[0]["list_id"]
    else:
        list_id = db.next_id("list_id", now=now)
        lists.insert(
            dict(name=admin_list, list_id=list_id, active=1, public=0,
                 hidden=0, maillist=0, grouplist=0, gid=0,
                 desc="Moira administrators", acl_type="LIST",
                 acl_id=list_id, modtime=now, modby="bootstrap",
                 modwith="seed_capacls"),
            now=now)
    capacls = db.table("capacls")
    for query in all_queries().values():
        if capacls.select({"capability": query.name}):
            continue
        capacls.insert({"capability": query.name, "tag": query.shortname,
                        "list_id": list_id}, now=now)
    # the pseudo-query guarding the Trigger_DCM major request
    if not capacls.select({"capability": "trigger_dcm"}):
        capacls.insert({"capability": "trigger_dcm", "tag": "tdcm",
                        "list_id": list_id}, now=now)
    return list_id
