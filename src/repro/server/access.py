"""Access control support: capability ACL seeding and the access cache.

§5.5: "the server performs access control on all queries which might
side-effect the database ... it is expected that many access checks
will have to be performed twice ... some form of access caching will
eventually be worked into the server for performance reasons."  The
cache here is that anticipated optimisation, made toggleable so the E8
benchmark can measure its effect.

Invalidation is generation-based but **scoped by mutated relation**:
the server diffs the engine's per-table data versions around each
mutating query and passes the touched tables in; only mutations that
touch an ACL-relevant relation (membership, capability, or ACE state)
bump the generation, so a read-mostly workload no longer loses the
whole cache to every quota update or string interning.  The cache is
thread-safe: worker-pool threads look up, store, and invalidate
concurrently.

This cache memoises whole access *decisions*; the membership-closure
index (``repro.db.closure``, see docs/QUERY_ENGINE.md) accelerates the
recursive-membership primitive underneath them, so cold checks after an
invalidation are cheap too — the two layers compose.
"""

from __future__ import annotations

import threading
from typing import Iterable, Optional

from repro.db.engine import Database
from repro.queries.base import all_queries

__all__ = ["AccessCache", "ACL_TABLES", "seed_capacls"]

# Relations whose contents can change an access decision: capability
# lists and membership (capacls/list/members/users), plus every table
# carrying an ACE that per-query relaxations consult ("someone on the
# ACE of the target service", filesystem owners, host access).
ACL_TABLES = frozenset({
    "users", "list", "members", "capacls",
    "servers", "filesys", "machine", "hostaccess",
})


class AccessCache:
    """Memoises (principal, query, args) -> allowed decisions."""

    def __init__(self, enabled: bool = True, max_entries: int = 4096,
                 acl_tables: Optional[frozenset[str]] = ACL_TABLES):
        self.enabled = enabled
        self.max_entries = max_entries
        self.acl_tables = acl_tables  # None = every mutation invalidates
        self._cache: dict[tuple, bool] = {}
        self._lock = threading.Lock()
        self.generation = 0
        self.hits = 0
        self.misses = 0

    def lookup(self, principal: str, query: str,
               args: tuple[str, ...]) -> bool | None:
        """Cached decision for (principal, query, args), or None."""
        if not self.enabled:
            return None
        with self._lock:
            key = (self.generation, principal, query, args)
            found = self._cache.get(key)
            if found is None:
                self.misses += 1
            else:
                self.hits += 1
            return found

    def generation_now(self) -> int:
        """The current generation, for :meth:`store`'s guard."""
        with self._lock:
            return self.generation

    def store(self, principal: str, query: str, args: tuple[str, ...],
              allowed: bool, *, generation: Optional[int] = None) -> None:
        """Remember a decision for the current generation.

        *generation* is the value of :meth:`generation_now` captured
        **before** the access check ran.  If an invalidation landed in
        between, the decision was computed against dead ACL state and
        the store is discarded — otherwise a pre-mutation allow/deny
        would be cached under the new generation and served until the
        next ACL-relevant mutation.
        """
        if not self.enabled:
            return
        with self._lock:
            if generation is not None and generation != self.generation:
                return
            # FIFO eviction: dict order is insertion order, so popping
            # the first key drops the oldest entry (oldest generation
            # first) — no wholesale clear, no thundering-herd refill
            while len(self._cache) >= self.max_entries:
                self._cache.pop(next(iter(self._cache)))
            self._cache[(self.generation, principal, query, args)] = allowed

    def invalidate(self,
                   mutated: Optional[Iterable[str]] = None) -> bool:
        """Drop cached decisions after a mutation.

        *mutated* names the relations whose data versions moved; when
        given and none of them is ACL-relevant the cache survives
        untouched.  ``invalidate()`` with no argument keeps the old
        contract: everything goes.  Returns True if the generation
        bumped.
        """
        if mutated is not None and self.acl_tables is not None:
            if self.acl_tables.isdisjoint(mutated):
                return False
        with self._lock:
            self.generation += 1
            # every existing entry is keyed to a dead generation now;
            # dropping them eagerly keeps lookups from walking garbage
            self._cache.clear()
        return True

    def stats(self) -> dict[str, int]:
        """Hit/miss/size counters for benchmarks and ``_query_stats``
        companions."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "generation": self.generation,
                "entries": len(self._cache),
            }


def seed_capacls(db: Database, admin_list: str = "moira-admins",
                 *, now: int = 0) -> int:
    """Point every registered query's capability at *admin_list*.

    The production database gave each query a capability row; here the
    deployment bootstrap points them all at one administrators list
    (callers refine individual capabilities afterwards with ordinary
    queries).  Returns the list_id used.
    """
    lists = db.table("list")
    existing = lists.select({"name": admin_list})
    if existing:
        list_id = existing[0]["list_id"]
    else:
        list_id = db.next_id("list_id", now=now)
        lists.insert(
            dict(name=admin_list, list_id=list_id, active=1, public=0,
                 hidden=0, maillist=0, grouplist=0, gid=0,
                 desc="Moira administrators", acl_type="LIST",
                 acl_id=list_id, modtime=now, modby="bootstrap",
                 modwith="seed_capacls"),
            now=now)
    capacls = db.table("capacls")
    for query in all_queries().values():
        if capacls.select({"capability": query.name}):
            continue
        capacls.insert({"capability": query.name, "tag": query.shortname,
                        "list_id": list_id}, now=now)
    # the pseudo-query guarding the Trigger_DCM major request
    if not capacls.select({"capability": "trigger_dcm"}):
        capacls.insert({"capability": "trigger_dcm", "tag": "tdcm",
                        "list_id": list_id}, now=now)
    return list_id
