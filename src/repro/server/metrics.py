"""Per-query-handle metrics: calls, rows, and latency histograms.

§7.0.8 exposes the daemon's self-knowledge through pseudo-queries
answered from live server state (``_list_users``).  This module backs
the companion ``_query_stats`` handle: for every query name the server
has executed it keeps call/error/tuple counters plus wall-clock and
lock-wait time, the latter two both as running totals and as log2
microsecond histograms — enough to read p50/p99 off a long benchmark
run without sampling overhead on the hot path.

With the MVCC engine, reads never take the lock, so ``lock_wait_s`` is
``None`` for them and the lock-wait histogram becomes **writer-only**
— a direct view of writer–writer contention.  MVCC reads instead
report snapshot counters: row versions scanned vs returned (scan
selectivity) and the snapshot-pin age at release (how long each read
held back the version GC horizon), the age kept as its own log2-µs
histogram.

Recording is one dict lookup, a few integer adds, and a handful of
bucket increments under a per-handle lock, so worker-pool threads
serving different handles never contend.  Wall time for a streamed
retrieval covers the full stream (first scan to last tuple drained),
matching what a client actually experiences.
"""

from __future__ import annotations

import threading
from typing import Iterator, Optional

__all__ = ["QueryMetrics", "HISTOGRAM_BUCKETS"]

# log2 microsecond buckets: bucket i holds durations in [2^i, 2^(i+1))
# µs; 28 buckets reach ~268 s, far beyond any single query here.
HISTOGRAM_BUCKETS = 28


def _bucket_of(us: int) -> int:
    if us <= 0:
        return 0
    return min(us.bit_length() - 1, HISTOGRAM_BUCKETS - 1)


def _quantile_us(hist: list[int], q: float) -> int:
    """Approximate quantile from a log2 histogram (bucket upper bound)."""
    total = sum(hist)
    if total == 0:
        return 0
    rank = q * total
    seen = 0
    for i, n in enumerate(hist):
        seen += n
        if seen >= rank:
            return 2 ** (i + 1) - 1
    return 2 ** HISTOGRAM_BUCKETS - 1


class _HandleMetrics:
    __slots__ = ("lock", "calls", "errors", "tuples",
                 "wall_us", "lock_wait_us", "locked_calls",
                 "rows_scanned", "rows_returned",
                 "snap_age_us", "snap_calls",
                 "wall_hist", "lock_hist", "snap_hist")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.calls = 0
        self.errors = 0
        self.tuples = 0
        self.wall_us = 0
        self.lock_wait_us = 0
        self.locked_calls = 0
        self.rows_scanned = 0
        self.rows_returned = 0
        self.snap_age_us = 0
        self.snap_calls = 0
        self.wall_hist = [0] * HISTOGRAM_BUCKETS
        self.lock_hist = [0] * HISTOGRAM_BUCKETS
        self.snap_hist = [0] * HISTOGRAM_BUCKETS


class QueryMetrics:
    """Thread-safe per-handle execution metrics."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._handles: dict[str, _HandleMetrics] = {}
        self._registry_lock = threading.Lock()
        # writer-shard lock-wait histograms: shard name -> (waits,
        # wait_us, log2-µs hist), fed by the write batcher's leaders
        self._shards: dict[str, list] = {}

    def record_shard_wait(self, shard: str, wait_s: float) -> None:
        """Fold one shard writer-lock acquisition wait into *shard*."""
        if not self.enabled:
            return
        found = self._shards.get(shard)
        if found is None:
            with self._registry_lock:
                found = self._shards.setdefault(
                    shard, [threading.Lock(), 0, 0,
                            [0] * HISTOGRAM_BUCKETS])
        wait_us = int(wait_s * 1e6)
        with found[0]:
            found[1] += 1
            found[2] += wait_us
            found[3][_bucket_of(wait_us)] += 1

    def shard_waits(self) -> dict[str, dict]:
        """Per-shard writer lock-wait counters and histograms."""
        out: dict[str, dict] = {}
        for shard, found in list(self._shards.items()):
            with found[0]:
                out[shard] = {
                    "waits": found[1],
                    "wait_us": found[2],
                    "hist": list(found[3]),
                    "wait_p50_us": _quantile_us(found[3], 0.50),
                    "wait_p99_us": _quantile_us(found[3], 0.99),
                }
        return out

    def _handle(self, name: str) -> _HandleMetrics:
        found = self._handles.get(name)
        if found is None:
            with self._registry_lock:
                found = self._handles.setdefault(name, _HandleMetrics())
        return found

    def record(self, name: str, *, wall_s: float, tuples: int = 0,
               error: bool = False,
               lock_wait_s: Optional[float] = 0.0,
               rows_scanned: int = 0, rows_returned: int = 0,
               snap_age_s: Optional[float] = None) -> None:
        """Fold one completed (or failed) execution into *name*'s row.

        ``lock_wait_s=None`` means the execution never took the lock
        (an MVCC snapshot read): it is excluded from the lock-wait
        histogram, keeping that histogram writer-only.  ``snap_age_s``
        is the snapshot-pin age at release for MVCC reads.
        """
        if not self.enabled:
            return
        wall_us = int(wall_s * 1e6)
        h = self._handle(name)
        with h.lock:
            h.calls += 1
            if error:
                h.errors += 1
            h.tuples += tuples
            h.wall_us += wall_us
            h.wall_hist[_bucket_of(wall_us)] += 1
            if lock_wait_s is not None:
                lock_us = int(lock_wait_s * 1e6)
                h.locked_calls += 1
                h.lock_wait_us += lock_us
                h.lock_hist[_bucket_of(lock_us)] += 1
            h.rows_scanned += rows_scanned
            h.rows_returned += rows_returned
            if snap_age_s is not None:
                snap_us = int(snap_age_s * 1e6)
                h.snap_calls += 1
                h.snap_age_us += snap_us
                h.snap_hist[_bucket_of(snap_us)] += 1

    def snapshot(self) -> dict[str, dict]:
        """Copy of every handle's counters and histograms."""
        out: dict[str, dict] = {}
        for name, h in list(self._handles.items()):
            with h.lock:
                out[name] = {
                    "calls": h.calls,
                    "errors": h.errors,
                    "tuples": h.tuples,
                    "wall_us": h.wall_us,
                    "lock_wait_us": h.lock_wait_us,
                    "locked_calls": h.locked_calls,
                    "rows_scanned": h.rows_scanned,
                    "rows_returned": h.rows_returned,
                    "snap_age_us": h.snap_age_us,
                    "snap_calls": h.snap_calls,
                    "wall_hist": list(h.wall_hist),
                    "lock_hist": list(h.lock_hist),
                    "snap_hist": list(h.snap_hist),
                    "wall_p50_us": _quantile_us(h.wall_hist, 0.50),
                    "wall_p99_us": _quantile_us(h.wall_hist, 0.99),
                    "snap_age_p50_us": _quantile_us(h.snap_hist, 0.50),
                    "snap_age_p99_us": _quantile_us(h.snap_hist, 0.99),
                }
        return out

    def report_tuples(self,
                      handle: Optional[str] = None) -> Iterator[tuple]:
        """Rows for the ``_query_stats`` pseudo-query, sorted by name.

        Each tuple: (name, calls, errors, tuples, wall_us,
        lock_wait_us, wall_p50_us, wall_p99_us, rows_scanned,
        rows_returned, snap_age_p50_us, snap_age_p99_us) — all
        stringified, as the wire wants.  ``lock_wait_us`` covers only
        executions that actually took the lock (writers, plus all
        queries on non-MVCC backends).
        """
        snap = self.snapshot()
        for name in sorted(snap):
            if handle and name != handle:
                continue
            row = snap[name]
            yield (name, str(row["calls"]), str(row["errors"]),
                   str(row["tuples"]), str(row["wall_us"]),
                   str(row["lock_wait_us"]), str(row["wall_p50_us"]),
                   str(row["wall_p99_us"]), str(row["rows_scanned"]),
                   str(row["rows_returned"]),
                   str(row["snap_age_p50_us"]),
                   str(row["snap_age_p99_us"]))
        if handle is None:
            # writer-shard lock-wait rows ride along, name-prefixed so
            # they sort after the per-handle rows
            for shard, row in sorted(self.shard_waits().items()):
                yield ("_shard." + shard, str(row["waits"]),
                       str(row["wait_us"]), str(row["wait_p50_us"]),
                       str(row["wait_p99_us"]))
