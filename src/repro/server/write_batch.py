"""Group-committed write batching over sharded writer locks.

The seed server ran every mutation alone: take the exclusive lock, run
the handler, append + fsync the journal, release.  Two independent
costs dominate that path at scale — the fsync (milliseconds of real
I/O per write) and the serialisation of writes that touch disjoint
relations.  This module harvests both:

* **Lanes.**  Each write is mapped onto the writer *shards* its query
  footprint touches (``Query.tables`` → ``shards_for``); writes with
  the same shard set share a lane.  Lanes over disjoint shards run
  concurrently — a registration storm on the users shard no longer
  waits behind quota traffic.  An undeclared footprint falls back to
  the every-shard lane, which is exactly the seed's full exclusion.

* **Group commit.**  The first writer into an idle lane becomes the
  *leader*: it drains up to ``window`` queued writes, takes the lane's
  shard locks **once**, runs each write as its own engine transaction
  (own commit seq, own journal entry, own undo log), then issues **one**
  ``journal.sync()`` for the whole batch.  Followers just wait on an
  event.  The leader keeps draining (conveyor) until the lane queue is
  empty, so under load the lock acquisition and fsync costs amortise
  across the window.

* **Error isolation.**  A write that raises :class:`MoiraError` (or any
  ``Exception``) aborts only its own transaction — the engine rolls its
  versions back and journals an ``_aborted`` marker when it consumed
  id/string bindings — and the error is re-raised on the submitting
  thread.  Its neighbours in the window commit normally, in their own
  seq order.  A ``BaseException`` (injected crash, torn write) is a
  process-death simulation: it fails the remaining queued writes and
  propagates.

Deadlock discipline: shard locks are always taken in sorted-name
order (here and in the engine's facade), commit seqs are allocated
only *after* a transaction holds every lock it will ever take, and the
in-order publication gate therefore always drains.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Optional, Sequence

from repro.errors import MR_FENCED, MoiraError

__all__ = ["WriteBatcher", "shards_for"]


def shards_for(db, query, args) -> Optional[frozenset]:
    """The writer shards a query's declared footprint maps onto.

    Returns a frozenset of shard names, or None when the query must run
    under full exclusion: the database is unsharded, the footprint is
    undeclared, or it names a table outside every shard.  System tables
    (values/strings) are shard-free and ignored.

    On a partitioned shard (users sub-shards), a query carrying a
    ``shard_key`` resolves to the single bucket lock its target row
    lives in; an unresolvable key — or no ``shard_key`` at all — keeps
    the logical name, which expands to the umbrella (every bucket) at
    lock time.
    """
    shards = getattr(db, "shards", None)
    if not shards:
        return None
    tables = query.tables
    if callable(tables):
        try:
            tables = tables(args)
        except Exception:
            return None
    if tables is None:
        return None
    out = set()
    unversioned = getattr(db, "_unversioned", ())
    for name in tables:
        shard = db._shard_of.get(name)
        if shard is None:
            if name in unversioned:
                continue
            return None
        out.add(shard)
    partitions = getattr(db, "_partitions", None)
    shard_key = getattr(query, "shard_key", None)
    if partitions and shard_key is not None:
        routed = set()
        for shard in out:
            part = partitions.get(shard)
            if part is None:
                routed.add(shard)
                continue
            try:
                value = shard_key(db, args)
            except Exception:
                value = None
            if value is None:
                routed.add(shard)       # umbrella
            else:
                routed.add(part.lock_name(part.bucket(value)))
        out = routed
    return frozenset(out)


class _WriteItem:
    """One queued mutation and its eventual outcome."""

    __slots__ = ("ctx", "query", "query_args", "submitted", "started",
                 "result", "mutated", "error", "done")

    def __init__(self, ctx, query, query_args):
        self.ctx = ctx
        self.query = query
        self.query_args = query_args
        self.submitted = time.perf_counter()
        self.started: Optional[float] = None
        self.result: Optional[list] = None
        self.mutated: set = set()
        self.error: Optional[BaseException] = None
        self.done = threading.Event()


class _Lane:
    """One shard set's queue + leader flag."""

    __slots__ = ("key", "mutex", "queue", "leader")

    def __init__(self, key):
        self.key = key
        self.mutex = threading.Lock()
        self.queue: deque = deque()
        self.leader = False


class WriteBatcher:
    """Leader/follower group commit, one lane per shard set.

    *metrics*, when given, receives per-shard lock-wait observations
    (``record_shard_wait``) and feeds the occupancy counters surfaced
    by the ``_wal_stats`` pseudo-query.
    """

    def __init__(self, db, *, window: int = 8, sharded: bool = True,
                 metrics=None):
        self.db = db
        self.window = max(1, int(window))
        self.metrics = metrics
        shards = getattr(db, "shards", None)
        self.sharded = bool(sharded and shards)
        self._all_shards = frozenset(shards) if shards else frozenset()
        self._lanes: dict = {}
        self._lanes_mutex = threading.Lock()
        # occupancy accounting for _wal_stats
        self._stats_lock = threading.Lock()
        self._batches = 0
        self._batched_writes = 0
        self._max_batch = 0

    # -- public API -----------------------------------------------------------

    def submit(self, ctx, query, query_args, timing=None,
               run_direct=None) -> tuple[list, set]:
        """Queue one write and block until it commits or fails.

        Returns ``(result_tuples, mutated_table_names)``; re-raises the
        write's own error.  *run_direct* is the fallback executor for
        the full-exclusion lane (the server's seed write path, fsync
        deferred to the batch).
        """
        item = _WriteItem(ctx, query, query_args)
        key = self._all_shards
        if self.sharded:
            found = shards_for(ctx.db, query, query_args)
            if found:  # empty set (system-only footprint) → every shard
                key = found
        lane = self._lane(key)
        with lane.mutex:
            lane.queue.append(item)
            lead = not lane.leader
            if lead:
                lane.leader = True
        if lead:
            self._lead(lane, run_direct)
        else:
            item.done.wait()
        if timing is not None and item.started is not None:
            timing["lock_wait_s"] = item.started - item.submitted
        if item.error is not None:
            raise item.error
        return item.result if item.result is not None else [], item.mutated

    def occupancy(self) -> dict:
        """Batch-window counters for ``_wal_stats``."""
        with self._stats_lock:
            batches = self._batches
            writes = self._batched_writes
            return {
                "batches": batches,
                "batched_writes": writes,
                "mean_batch_size": (writes / batches) if batches else 0.0,
                "max_batch_size": self._max_batch,
                "window": self.window,
                "lanes": len(self._lanes),
            }

    # -- leader protocol ------------------------------------------------------

    def _lane(self, key) -> _Lane:
        with self._lanes_mutex:
            lane = self._lanes.get(key)
            if lane is None:
                lane = self._lanes[key] = _Lane(key)
            return lane

    def _lead(self, lane: _Lane, run_direct) -> None:
        """Drain the lane in windows until its queue is empty."""
        while True:
            with lane.mutex:
                batch = []
                while lane.queue and len(batch) < self.window:
                    batch.append(lane.queue.popleft())
                if not batch:
                    lane.leader = False
                    return
            try:
                self._run_batch(lane, batch, run_direct)
            except BaseException as exc:
                # injected crash / torn write: the "process" died
                # mid-batch — every write still queued behind this
                # leader dies with it (their submitting threads must
                # not wait on a leader that no longer exists), then
                # release leadership so a post-recovery submit can
                # still make progress, and propagate
                with lane.mutex:
                    dead = list(lane.queue)
                    lane.queue.clear()
                    lane.leader = False
                for item in dead:
                    if item.error is None and item.result is None:
                        item.error = exc
                    item.done.set()
                raise

    def _run_batch(self, lane: _Lane, batch: list, run_direct) -> None:
        with self._stats_lock:
            self._batches += 1
            self._batched_writes += len(batch)
            self._max_batch = max(self._max_batch, len(batch))
        journal = batch[0].ctx.journal
        if journal is not None and journal.fenced:
            # a newer epoch fenced this primary between admission and
            # the window: fail the whole lane retryably before any
            # handler runs — stale group commits must never land
            exc = MoiraError(
                MR_FENCED,
                f"epoch {journal.epoch} fenced by {journal.fenced_by}")
            for item in batch:
                item.error = exc
                item.done.set()
            raise exc
        fatal: Optional[BaseException] = None
        # backends with their own op log (walstore) bracket the window
        # so their apply-then-append honours batch boundaries too
        batch_begin = getattr(self.db, "batch_begin", None)
        if batch_begin is not None:
            batch_begin()
        try:
            if self.sharded:
                self._run_batch_sharded(lane, batch)
            else:
                self._run_batch_global(batch, run_direct)
        except BaseException as exc:
            fatal = exc
        finally:
            if batch_begin is not None:
                if fatal is None:
                    self.db.batch_commit()
                else:
                    self.db.batch_abort()
            if fatal is None and journal is not None:
                try:
                    # ONE fsync covers every write in the window; the
                    # journal.batch_flush fault point fires here, so an
                    # injected crash must still release the followers
                    journal.sync()
                except BaseException as exc:
                    fatal = exc
            for item in batch:
                if fatal is not None and item.error is None \
                        and item.result is None:
                    item.error = fatal
                item.done.set()
            db = self.db
            if fatal is None and getattr(db, "mvcc_enabled", False) \
                    and db._mv_pressure >= db.mv_gc_threshold:
                # GC takes every shard; run it with none held
                db.gc_versions()
        if fatal is not None:
            raise fatal

    def _run_batch_sharded(self, lane: _Lane, batch: list) -> None:
        """Hold the lane's shard locks once; each item is its own txn."""
        db = self.db
        # lane keys may hold logical names and/or bucket locks; expand
        # to sorted physical names here, exactly as shard_txn would
        names = db.expand_shards(lane.key)
        locks = [(name, db._shard_locks[name]) for name in names]
        held = []
        try:
            for name, lock in locks:
                waited = time.perf_counter()
                lock.acquire_exclusive()
                held.append(lock)
                if self.metrics is not None:
                    self.metrics.record_shard_wait(
                        name, time.perf_counter() - waited)
            # the paper's backend round trip is paid once per group
            # commit, not once per write — that is the batching win
            delay = getattr(db, "sim_backend_latency", 0.0)
            if delay:
                time.sleep(delay)
            for item in batch:
                self._run_item(item, lane.key)
        finally:
            for lock in reversed(held):
                lock.release_exclusive()

    def _run_item(self, item: _WriteItem, shards) -> None:
        """Execute one write in its own shard transaction.

        The commit hook appends the journal entry inside the engine's
        in-order publication gate with ``fsync=False`` — entries land
        in exact commit-seq order, durability comes from the batch's
        single ``sync()``.
        """
        ctx = item.ctx
        db = ctx.db

        def commit_hook(txn):
            if ctx.journal is not None:
                ctx.journal.record(
                    ctx.now, ctx.caller or "unauthenticated",
                    item.query.name,
                    tuple(str(a) for a in item.query_args),
                    client=ctx.client, commit_seq=txn.seq,
                    bindings=txn.bindings, fsync=False)

        def abort_hook(txn):
            if ctx.journal is not None:
                ctx.journal.record(
                    ctx.now, ctx.caller or "unauthenticated",
                    "_aborted", (), client=ctx.client,
                    commit_seq=txn.seq, bindings=txn.bindings,
                    fsync=False)

        item.started = time.perf_counter()
        try:
            with db.shard_txn(sorted(shards), commit_hook=commit_hook,
                              abort_hook=abort_hook):
                result = item.query.handler(ctx, item.query_args)
                if not isinstance(result, list):
                    result = list(result)
                txn = db._active_txn()
                item.mutated = set(txn.mutated) if txn is not None else set()
                item.result = result
        except MoiraError as exc:
            item.error = exc
        except Exception as exc:
            item.error = exc

    def _run_batch_global(self, batch: list, run_direct) -> None:
        """Full-exclusion fallback (unsharded db / sharding disabled).

        Each write still takes the exclusive lock itself — one commit
        seq per write, as the seed — but the window shares one fsync.
        """
        for item in batch:
            item.started = time.perf_counter()
            try:
                item.result, item.mutated = run_direct(
                    item.ctx, item.query, item.query_args, fsync=False)
            except MoiraError as exc:
                item.error = exc
            except Exception as exc:
                item.error = exc
