"""The server side of the Moira-to-server update protocol (§5.9).

Strategy, as the paper specifies:

A. **Transfer phase** — authenticate, receive the data file (with
   checksum) stored as ``<target>.moira_update``, receive the install
   script into a temporary file, flush everything to disk.

B. **Execution phase** — on a single command, run the instruction
   sequence: extract needed members from the tar file one at a time,
   swap files in with atomic renames, optionally revert, signal a
   process via its pid file, or execute a supplied command.

C. **Confirm** — report success or the error number back to the DCM.

The install *script* is an :class:`InstallScript` — an ordered list of
the five instruction kinds from §5.9 B.  Scripts are serialised to a
plain-text format so they really are "transferred to the server" and
"stored in a temporary file" rather than passed as live objects.
"""

from __future__ import annotations

import hashlib
import io
import tarfile
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import (
    MoiraError,
    MR_CHECKSUM,
    MR_OCONFIG,
    MR_SCRIPT_FAILED,
    MR_TAR_FAIL,
)
from repro.hosts.host import HostDown, SimulatedHost

__all__ = ["UpdateDaemon", "InstallScript", "checksum"]


def checksum(data: bytes) -> str:
    """The file-transfer integrity check (§5.9 A.2)."""
    return hashlib.sha256(data).hexdigest()


@dataclass
class InstallScript:
    """§5.9 B: the installation instruction sequence.

    Each step is ``(op, args...)``:

    * ``("extract", member)`` — pull one member out of the tar file
    * ``("install", filename)`` — atomically rename
      ``filename.moira_update`` over ``filename``
    * ``("revert", filename)`` — put the saved old file back
    * ``("signal", pid_file, signum)`` — signal the process whose pid
      is recorded in *pid_file*
    * ``("exec", command)`` — run a registered command by name
    """

    steps: list[tuple] = field(default_factory=list)

    def extract(self, member: str) -> "InstallScript":
        """Append an extract step."""
        self.steps.append(("extract", member))
        return self

    def install(self, filename: str) -> "InstallScript":
        """Append an atomic-install step."""
        self.steps.append(("install", filename))
        return self

    def revert(self, filename: str) -> "InstallScript":
        """Append a revert step."""
        self.steps.append(("revert", filename))
        return self

    def signal(self, pid_file: str, signum: int = 1) -> "InstallScript":
        """Append a signal-via-pid-file step."""
        self.steps.append(("signal", pid_file, str(signum)))
        return self

    def execute(self, command: str) -> "InstallScript":
        """Append an execute-command step."""
        self.steps.append(("exec", command))
        return self

    def serialize(self) -> bytes:
        """The script as the on-the-wire text format."""
        lines = ["\t".join(step) for step in self.steps]
        return ("\n".join(lines) + "\n").encode("utf-8")

    @classmethod
    def deserialize(cls, blob: bytes) -> "InstallScript":
        """Parse a script serialised by serialize()."""
        script = cls()
        for line in blob.decode("utf-8").splitlines():
            if line.strip():
                script.steps.append(tuple(line.split("\t")))
        return script


class UpdateDaemon:
    """Runs on each managed host; executes DCM updates."""

    SCRIPT_TEMP = "/tmp/moira_install_script"

    def __init__(self, host: SimulatedHost, faults=None):
        self.host = host
        # optional FaultInjector; adds the ``daemon.receive_file``,
        # ``daemon.execute``, and per-instruction ``daemon.step`` points
        self.faults = faults
        self.authenticated_peer: Optional[str] = None
        # "Execute a supplied command" — commands are registered by the
        # services living on this host (e.g. restart_hesiod).
        self.commands: dict[str, Callable[[], int]] = {}
        self.updates_received = 0
        self.installs_executed = 0
        # simulated per-operation response time in seconds; a wedged
        # host answers slowly without being down (§5.9 A: "a timeout is
        # used in both sides of the connection")
        self.response_delay = 0
        host.spawn("moira_update_daemon")

    def register_command(self, name: str, fn: Callable[[], int]) -> None:
        """Expose *fn* to install scripts under *name*."""
        self.commands[name] = fn

    # -- transfer phase -----------------------------------------------------------

    def authenticate(self, principal: str) -> None:
        """§5.9.2: Kerberos verifies both ends at connection set-up."""
        self.host.check_alive()
        self.authenticated_peer = principal

    def receive_file(self, target: str, data: bytes, digest: str) -> None:
        """A.2: store the transferred file as <target>.moira_update.

        Checksum mismatch (network damage) raises MR_CHECKSUM; the DCM
        treats it as a soft failure and retries later.
        """
        self.host.check_alive()
        if self.faults is not None:
            self.faults.fire("daemon.receive_file", host=self.host.name,
                             target=target)
        if self.authenticated_peer is None:
            raise MoiraError(MR_OCONFIG, "transfer before authentication")
        if checksum(data) != digest:
            raise MoiraError(MR_CHECKSUM, target)
        self.host.fs.write(target + ".moira_update", data)

    def receive_script(self, script_blob: bytes) -> None:
        """A.3: the instruction sequence lands in a temporary file."""
        self.host.check_alive()
        if self.authenticated_peer is None:
            raise MoiraError(MR_OCONFIG, "transfer before authentication")
        self.host.fs.write(self.SCRIPT_TEMP, script_blob)

    def flush(self) -> None:
        """A.4: flush all data on the server to disk."""
        self.host.fsync()
        self.updates_received += 1

    # -- execution phase -------------------------------------------------------------

    def execute(self, target: str) -> int:
        """B: run the staged instruction sequence; returns exit status.

        Zero is success, anything else is the error number — exactly the
        contract the DCM records in the serverhosts relation.
        """
        self.host.check_alive()
        if self.faults is not None:
            self.faults.fire("daemon.execute", host=self.host.name,
                             target=target)
        try:
            blob = self.host.fs.read(self.SCRIPT_TEMP)
        except FileNotFoundError:
            return MR_OCONFIG
        script = InstallScript.deserialize(blob)
        extracted: dict[str, bytes] = {}
        try:
            for index, step in enumerate(script.steps):
                if self.faults is not None:
                    self.faults.fire("daemon.step", host=self.host.name,
                                     op=step[0], index=index)
                self._run_step(step, target, extracted)
        except MoiraError as exc:
            return exc.code
        except HostDown:
            raise  # the machine died mid-install; the DCM sees a timeout
        except Exception:
            return MR_SCRIPT_FAILED
        self.host.fsync()
        self.installs_executed += 1
        return 0

    def _run_step(self, step: tuple, target: str,
                  extracted: dict[str, bytes]) -> None:
        fs = self.host.fs
        op = step[0]
        if op == "extract":
            member = step[1]
            try:
                payload = fs.read(target + ".moira_update")
                with tarfile.open(fileobj=io.BytesIO(payload)) as tar:
                    fileobj = tar.extractfile(member)
                    if fileobj is None:
                        raise KeyError(member)
                    data = fileobj.read()
            except (tarfile.TarError, KeyError, FileNotFoundError) as exc:
                raise MoiraError(MR_TAR_FAIL, f"{member}: {exc}") from exc
            # "only the ones that are needed are extracted one at a time"
            fs.write(member + ".moira_update", data)
            extracted[member] = data
        elif op == "install":
            filename = step[1]
            staged = filename + ".moira_update"
            if not fs.exists(staged):
                raise MoiraError(MR_TAR_FAIL, f"missing {staged}")
            if fs.exists(filename):
                # keep the old file for a possible revert
                fs.rename(filename, filename + ".moira_old")
            fs.rename(staged, filename)
        elif op == "revert":
            filename = step[1]
            old = filename + ".moira_old"
            if not fs.exists(old):
                raise MoiraError(MR_OCONFIG, f"nothing to revert for "
                                             f"{filename}")
            fs.rename(old, filename)
        elif op == "signal":
            pid_file, signum = step[1], int(step[2])
            try:
                self.host.signal_pid_file(pid_file, signum)
            except (FileNotFoundError, ProcessLookupError) as exc:
                raise MoiraError(MR_SCRIPT_FAILED,
                                 f"signal {pid_file}") from exc
        elif op == "exec":
            command = step[1]
            fn = self.commands.get(command)
            if fn is None:
                raise MoiraError(MR_SCRIPT_FAILED,
                                 f"unknown command {command!r}")
            status = fn()
            if status:
                raise MoiraError(MR_SCRIPT_FAILED,
                                 f"{command} exited {status}")
        else:
            raise MoiraError(MR_OCONFIG, f"unknown op {op!r}")

    # -- crash-recovery housekeeping ----------------------------------------------

    def cleanup_stale_update(self, target: str) -> bool:
        """§5.9 B: "the existing filename.moira_update file will be
        deleted (as it may be incomplete) when the next update starts".
        Returns True if a stale file was removed."""
        staged = target + ".moira_update"
        if self.host.fs.exists(staged):
            self.host.fs.unlink(staged)
            return True
        return False
