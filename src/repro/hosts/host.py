"""Simulated server hosts: processes, crashes, reboots.

A host runs named processes (the Hesiod daemon, the update daemon...).
Crashing a host loses unsynced filesystem data and stops all processes;
rebooting restarts registered services through their boot hooks —
"normal system startup procedures should take care of any followup
operations" (§5.9 trouble recovery B).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.hosts.vfs import VirtualFileSystem

__all__ = ["SimulatedHost", "HostDown", "Process"]


class HostDown(Exception):
    """Raised when an operation touches a crashed host."""


@dataclass
class Process:
    """A running program on a simulated host."""
    name: str
    pid: int
    on_signal: Optional[Callable[[int], None]] = None
    running: bool = True
    signals_received: list[int] = field(default_factory=list)

    def signal(self, signum: int) -> None:
        """Deliver a signal number to the process."""
        self.signals_received.append(signum)
        if self.on_signal is not None:
            self.on_signal(signum)


class SimulatedHost:
    """One managed machine: VFS + processes + crash/boot lifecycle."""

    def __init__(self, name: str):
        self.name = name.upper()
        self.fs = VirtualFileSystem()
        self.alive = True
        self.boot_count = 1
        self.processes: dict[int, Process] = {}
        self._next_pid = 100
        self._boot_hooks: list[Callable[["SimulatedHost"], None]] = []
        # fault injection: crash after N more fs syncs (None = never)
        self._crash_after_syncs: Optional[int] = None

    # -- lifecycle -------------------------------------------------------

    def check_alive(self) -> None:
        """Raise HostDown if the machine has crashed."""
        if not self.alive:
            raise HostDown(self.name)

    def crash(self) -> None:
        """Machine crash: unsynced data lost, every process dies."""
        self.alive = False
        self.fs.crash()
        for proc in self.processes.values():
            proc.running = False
        self.processes.clear()

    def reboot(self) -> None:
        """Power back on and run the boot hooks (service restarts)."""
        self.alive = True
        self.boot_count += 1
        for hook in self._boot_hooks:
            hook(self)

    def add_boot_hook(self, hook: Callable[["SimulatedHost"], None]) -> None:
        """Run *hook* on every reboot (service restarts)."""
        self._boot_hooks.append(hook)

    # -- processes ----------------------------------------------------------

    def spawn(self, name: str,
              on_signal: Optional[Callable[[int], None]] = None,
              *, pid_file: Optional[str] = None) -> Process:
        """Start a process (optionally recording a pid file)."""
        self.check_alive()
        pid = self._next_pid
        self._next_pid += 1
        proc = Process(name=name, pid=pid, on_signal=on_signal)
        self.processes[pid] = proc
        if pid_file is not None:
            self.fs.write(pid_file, str(pid).encode())
            self.fs.fsync()
        return proc

    def kill(self, pid: int, signum: int = 15) -> None:
        """Signal a pid; 9/15 terminate it."""
        self.check_alive()
        proc = self.processes.get(pid)
        if proc is None:
            raise ProcessLookupError(pid)
        proc.signal(signum)
        if signum in (9, 15):
            proc.running = False
            del self.processes[pid]

    def signal_pid_file(self, pid_file: str, signum: int) -> None:
        """§5.9 B.4: read the pid out of the file at execution time."""
        self.check_alive()
        pid = int(self.fs.read_text(pid_file).strip())
        proc = self.processes.get(pid)
        if proc is None:
            raise ProcessLookupError(pid)
        proc.signal(signum)

    def find_process(self, name: str) -> Optional[Process]:
        """The running process named *name*, or None."""
        for proc in self.processes.values():
            if proc.name == name:
                return proc
        return None

    # -- fault injection ------------------------------------------------------

    def crash_after_syncs(self, count: int) -> None:
        """Arrange a crash after *count* more fs.fsync() calls."""
        self._crash_after_syncs = count

    def fsync(self) -> None:
        """Host-mediated fsync so fault injection can fire mid-protocol."""
        self.check_alive()
        self.fs.fsync()
        if self._crash_after_syncs is not None:
            self._crash_after_syncs -= 1
            if self._crash_after_syncs <= 0:
                self._crash_after_syncs = None
                self.crash()
                raise HostDown(self.name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.alive else "down"
        return f"SimulatedHost({self.name}, {state})"
