"""A virtual filesystem with crash semantics.

The update protocol's correctness argument (§5.9) rests on two
filesystem properties: *renames are atomic* ("Swap new data files in
... using atomic filesystem rename operations") and *unsynced data can
be lost in a crash* (the transfer phase ends with "Flush all data on
the server to disk").  This VFS models both: writes land in a dirty
buffer until ``fsync``; ``crash`` discards the dirty buffer; ``rename``
is a single atomic operation on the durable store once synced.
"""

from __future__ import annotations

from typing import Iterable, Optional

__all__ = ["VirtualFileSystem"]


class VirtualFileSystem:
    """Flat-namespace file store (paths are plain strings)."""

    def __init__(self) -> None:
        self._durable: dict[str, bytes] = {}
        self._dirty: dict[str, Optional[bytes]] = {}  # None = pending delete
        self._dirs: set[str] = set()
        self._dir_meta: dict[str, dict] = {}

    # -- file operations -------------------------------------------------

    def write(self, path: str, data: bytes) -> None:
        """Write is buffered: durable only after fsync()."""
        if isinstance(data, str):
            data = data.encode("utf-8")
        self._dirty[path] = bytes(data)

    def read(self, path: str) -> bytes:
        """Reads see the freshest data (buffered or durable)."""
        if path in self._dirty:
            value = self._dirty[path]
            if value is None:
                raise FileNotFoundError(path)
            return value
        if path in self._durable:
            return self._durable[path]
        raise FileNotFoundError(path)

    def read_text(self, path: str) -> str:
        """read() decoded as UTF-8."""
        return self.read(path).decode("utf-8")

    def exists(self, path: str) -> bool:
        """Does *path* resolve in the freshest view?"""
        if path in self._dirty:
            return self._dirty[path] is not None
        return path in self._durable

    def unlink(self, path: str) -> None:
        """Delete a file (buffered until fsync)."""
        if not self.exists(path):
            raise FileNotFoundError(path)
        self._dirty[path] = None

    def rename(self, src: str, dst: str) -> None:
        """Atomic rename; both names resolve in the freshest view.

        "The cost of this step is kept to an absolute minimum by keeping
        both files in the same partition" — in the VFS a rename is one
        dictionary move, all-or-nothing even across a crash (renames of
        synced data are journalled by the filesystem; we model them as
        immediately durable when the source was durable).
        """
        data = self.read(src)
        src_durable = src in self._durable and src not in self._dirty
        if src_durable:
            # durable -> durable: atomic on disk
            del self._durable[src]
            self._durable[dst] = data
            self._dirty.pop(dst, None)
        else:
            self._dirty[src] = None
            self._dirty[dst] = data

    def fsync(self) -> None:
        """Flush all buffered writes to the durable store."""
        for path, data in self._dirty.items():
            if data is None:
                self._durable.pop(path, None)
            else:
                self._durable[path] = data
        self._dirty.clear()

    def crash(self) -> None:
        """Power-fail: all unsynced data is gone."""
        self._dirty.clear()

    def listdir(self, prefix: str = "") -> list[str]:
        """Sorted visible paths under *prefix*."""
        seen = set()
        for path in self._durable:
            if path.startswith(prefix) and not (
                    path in self._dirty and self._dirty[path] is None):
                seen.add(path)
        for path, data in self._dirty.items():
            if data is not None and path.startswith(prefix):
                seen.add(path)
        return sorted(seen)

    # -- directories (for the NFS locker-creation script) -----------------

    def mkdir(self, path: str, *, owner_uid: int = 0, group_gid: int = 0,
              mode: int = 0o755) -> None:
        """Create a directory with ownership and mode."""
        self._dirs.add(path)
        self._dir_meta[path] = {"uid": owner_uid, "gid": group_gid,
                                "mode": mode}

    def isdir(self, path: str) -> bool:
        """Is *path* a directory?"""
        return path in self._dirs

    def dir_meta(self, path: str) -> dict:
        """Ownership/mode metadata of a directory."""
        return self._dir_meta[path]

    def chown(self, path: str, uid: int, gid: int) -> None:
        """Change a directory's owner and group."""
        self._dir_meta[path].update(uid=uid, gid=gid)

    def chmod(self, path: str, mode: int) -> None:
        """Change a directory's mode."""
        self._dir_meta[path]["mode"] = mode

    def dirs(self) -> Iterable[str]:
        """Every directory, sorted."""
        return sorted(self._dirs)
