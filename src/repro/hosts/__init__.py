"""Simulated server hosts — the machines the DCM pushes files to.

Each :class:`SimulatedHost` has a virtual filesystem with crash
semantics (unflushed writes are lost on crash; atomic renames are
atomic), simple processes that can be signalled, and an
:class:`UpdateDaemon` implementing the server side of the
Moira-to-server update protocol (§5.9): receive files with checksums,
stage them as ``<target>.moira_update``, and on command execute the
installation instruction sequence with atomic filesystem renames.
"""

from repro.hosts.vfs import VirtualFileSystem
from repro.hosts.host import HostDown, SimulatedHost
from repro.hosts.update_daemon import InstallScript, UpdateDaemon

__all__ = [
    "VirtualFileSystem",
    "SimulatedHost",
    "HostDown",
    "UpdateDaemon",
    "InstallScript",
]
