"""com_err-style error handling, reproducing Moira's libcom_err usage.

The paper (section 5.6.1) describes Ken Raeburn's ``com_err`` library:
every error code is an integer, each *error table* reserves a subrange of
the integers based on a hash of the table name, UNIX errno values are
included, and zero means success.  ``error_message`` maps a code back to
its text, and ``com_err`` formats "whoami: message text" with an optional
hook for rerouting (e.g. to syslog or a dialogue box).

This module reimplements that scheme faithfully:

* :class:`ErrorTable` registers a named table of messages and computes its
  base code with the classic com_err base-64ish hash of the table name.
* :func:`error_message` resolves any registered code (or errno) to text.
* :func:`com_err` formats and emits an error, honouring the hook installed
  by :func:`set_com_err_hook`.
* The ``MR_*`` codes from section 7.1 of the paper are defined in the
  ``sms`` error table (the paper notes the string "sms" still crops up).
"""

from __future__ import annotations

import os
import sys
import threading
from typing import Callable, Optional

__all__ = [
    "ErrorTable",
    "MoiraError",
    "error_message",
    "error_table_name",
    "com_err",
    "set_com_err_hook",
    "reset_com_err_hook",
]

# ---------------------------------------------------------------------------
# The com_err base-code hash.
#
# The original com_err packs up to 4 characters of the table name into a
# 32-bit quantity using a 6-bit character code ("base 64"), then shifts
# left 8 bits so each table owns 256 consecutive codes.  We reproduce that
# exactly so that error codes are stable integers, just as in the paper.
# ---------------------------------------------------------------------------

_CHAR_SET = (
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789_"
)


def _char_to_num(ch: str) -> int:
    idx = _CHAR_SET.find(ch)
    if idx < 0:
        raise ValueError(f"illegal character {ch!r} in error table name")
    return idx + 1


def _error_table_base(name: str) -> int:
    if not 1 <= len(name) <= 4:
        raise ValueError("error table name must be 1-4 characters")
    num = 0
    for ch in name:
        num = (num << 6) + _char_to_num(ch)
    return num << 8


def _base_to_name(base: int) -> str:
    num = base >> 8
    chars = []
    while num:
        chars.append(_CHAR_SET[(num & 0o77) - 1])
        num >>= 6
    return "".join(reversed(chars))


# ---------------------------------------------------------------------------
# Error table registry
# ---------------------------------------------------------------------------

_tables: dict[int, "ErrorTable"] = {}
_tables_lock = threading.Lock()


class ErrorTable:
    """A registered table of error messages occupying a code subrange.

    Each message in *messages* is assigned ``base + index``.  Attribute
    access by symbolic name is provided for convenience:
    ``table.MR_PERM`` returns the integer code for that name.
    """

    def __init__(self, name: str, messages: list[tuple[str, str]]):
        self.name = name
        self.base = _error_table_base(name)
        self._by_name: dict[str, int] = {}
        self._messages: list[str] = []
        for offset, (symbol, text) in enumerate(messages):
            self._by_name[symbol] = self.base + offset
            self._messages.append(text)
        with _tables_lock:
            if self.base in _tables:
                raise ValueError(
                    f"error table base collision for {name!r}"
                )
            _tables[self.base] = self

    def __getattr__(self, symbol: str) -> int:
        try:
            return self._by_name[symbol]
        except KeyError:
            raise AttributeError(symbol) from None

    def __contains__(self, code: int) -> bool:
        return self.base <= code < self.base + len(self._messages)

    def code(self, symbol: str) -> int:
        """Return the integer code for *symbol* (KeyError if unknown)."""
        return self._by_name[symbol]

    def message(self, code: int) -> str:
        """The text for a code inside this table."""
        return self._messages[code - self.base]

    def name_of(self, code: int) -> str:
        """Return the symbolic name for *code* within this table."""
        for symbol, value in self._by_name.items():
            if value == code:
                return symbol
        raise KeyError(code)

    def symbols(self) -> list[str]:
        """The symbolic names defined by this table."""
        return list(self._by_name)


def error_message(code: int) -> str:
    """Return the error message string associated with *code*.

    Zero is success; small positive codes fall back to ``os.strerror``
    (UNIX system call error codes are "included in this system"); codes
    inside a registered table resolve to the table's text; anything else
    gets a generic unknown-code message naming the owning table if the
    hash is decodable.
    """
    if code == 0:
        return "Success"
    base = code & ~0xFF
    with _tables_lock:
        table = _tables.get(base)
    if table is not None and code in table:
        return table.message(code)
    if 0 < code < 256:
        try:
            return os.strerror(code)
        except (ValueError, OverflowError):  # pragma: no cover
            pass
    if base:
        try:
            name = _base_to_name(base)
        except Exception:  # pragma: no cover - defensive
            name = "?"
        return f"Unknown code {name} {code - base}"
    return f"Unknown code {code}"


def error_table_name(code: int) -> str:
    """Return the name of the error table owning *code*."""
    return _base_to_name(code & ~0xFF)


# ---------------------------------------------------------------------------
# com_err and its hook
# ---------------------------------------------------------------------------

ComErrHook = Callable[[str, int, str], None]

_hook: Optional[ComErrHook] = None


def set_com_err_hook(hook: Optional[ComErrHook]) -> Optional[ComErrHook]:
    """Install *hook* to receive future com_err calls; returns the old hook.

    The hook receives ``(whoami, code, message)``.  Passing ``None``
    restores the default behaviour (printing to stderr).
    """
    global _hook
    old, _hook = _hook, hook
    return old


def reset_com_err_hook() -> None:
    """Restore the default com_err behaviour."""
    set_com_err_hook(None)


def com_err(whoami: str, code: int, message: str = "") -> None:
    """Report an error in the classic ``whoami: <code text> message`` form.

    If *code* is zero, nothing is printed for the error-message part.
    If a hook is installed it receives the call instead of stderr.
    """
    if _hook is not None:
        _hook(whoami, code, message)
        return
    parts = [f"{whoami}:"]
    if code:
        parts.append(error_message(code))
    if message:
        parts.append(message)
    print(" ".join(parts), file=sys.stderr)


# ---------------------------------------------------------------------------
# The Moira ("sms") error table — section 7.1 of the paper.
# ---------------------------------------------------------------------------

MOIRA_ERRORS = ErrorTable(
    "sms",
    [
        ("MR_SUCCESS", "Success"),
        # General errors (may be returned by all queries)
        ("MR_ARG_TOO_LONG", "An argument contains too many characters"),
        ("MR_ARGS", "Incorrect number of arguments"),
        ("MR_DEADLOCK", "Database deadlock; try again later"),
        ("MR_INGRES_ERR",
         "An unexpected error occurred in the underlying DBMS"),
        ("MR_INTERNAL", "Internal consistency failure"),
        ("MR_NO_HANDLE", "Unknown query specified"),
        ("MR_NO_MEM", "Server ran out of memory"),
        ("MR_PERM",
         "Insufficient permission to perform requested database access"),
        # Retrieval
        ("MR_NO_MATCH", "No records in database match query"),
        # Add / update
        ("MR_BAD_CHAR", "Illegal character in argument"),
        ("MR_EXISTS",
         "New object conflicts with object already in the database"),
        ("MR_INTEGER", "String could not be parsed as an integer"),
        ("MR_NO_ID", "Cannot allocate new ID"),
        ("MR_NOT_UNIQUE", "Arguments not unique"),
        # Delete
        ("MR_IN_USE", "Object is in use"),
        # Query specific
        ("MR_ACE", "No such access control entity"),
        ("MR_BAD_CLASS", "Specified class is not known"),
        ("MR_BAD_GROUP", "Invalid group ID"),
        ("MR_CLUSTER", "Unknown cluster"),
        ("MR_DATE", "Invalid date"),
        ("MR_FILESYS", "Named file system does not exist"),
        ("MR_FILESYS_EXISTS", "Named file system already exists"),
        ("MR_FILESYS_ACCESS", "Invalid filesys access"),
        ("MR_FSTYPE", "Invalid filesys type"),
        ("MR_LIST", "No such list"),
        ("MR_MACHINE", "Unknown machine"),
        ("MR_NFS", "Specified directory not exported"),
        ("MR_NFSPHYS", "Machine/device pair not in nfsphys relation"),
        ("MR_NO_FILESYS", "Cannot find space for filesys"),
        ("MR_NO_POBOX", "Cannot find space for a new pobox"),
        ("MR_POBOX", "Invalid post office box"),
        ("MR_QUOTA", "Invalid quota"),
        ("MR_SERVICE", "Unknown service"),
        ("MR_STRING", "No such string"),
        ("MR_TYPE", "Invalid type"),
        ("MR_USER", "No such user"),
        ("MR_WILDCARD", "Wildcards not allowed here"),
        # Protocol / library errors (section 5.6.2)
        ("MR_ALREADY_CONNECTED", "Already connected to the Moira server"),
        ("MR_NOT_CONNECTED", "Not connected to the Moira server"),
        ("MR_ABORTED", "The connection to the Moira server was aborted"),
        ("MR_VERSION_MISMATCH", "Protocol version mismatch"),
        ("MR_AUTH_FAILED", "Authentication to the Moira server failed"),
        ("MR_MORE_DATA", "More data follows"),
        ("MR_CONT", "Continuation of a previous operation"),
        # DCM / update protocol errors (sections 5.7, 5.9)
        ("MR_NO_CHANGE", "No change to the database since last update"),
        ("MR_OCONFIG", "Host configuration error during update"),
        ("MR_TAR_FAIL", "Failure unpacking update archive"),
        ("MR_CHECKSUM", "Checksum mismatch transferring update file"),
        ("MR_HOST_UNREACHABLE", "Cannot contact server host"),
        ("MR_UPDATE_TIMEOUT", "Server update operation timed out"),
        ("MR_SCRIPT_FAILED", "Install script failed on server host"),
        ("MR_DISABLED", "Updates are disabled for this service"),
        ("MR_SERVICE_LOCKED", "Service is locked by another update"),
        # Registration server errors (section 5.10)
        ("MR_NOT_FOUND", "Student not found in registration database"),
        ("MR_ALREADY_REGISTERED", "Student is already registered"),
        ("MR_LOGIN_TAKEN", "Login name already taken"),
        ("MR_BAD_AUTHENTICATOR", "Registration authenticator did not verify"),
        ("MR_HALF_REGISTERED", "Account is half registered"),
        # Graceful degradation (load shedding; retryable)
        ("MR_BUSY", "Server busy; try again later"),
        # Failover fencing: a newer epoch owns the cluster; retry
        # against the promoted primary (appended at the end so every
        # earlier com_err offset is unchanged)
        ("MR_FENCED", "Write fenced: a newer primary owns the cluster epoch"),
    ],
)

# Re-export every MR_* symbol at module level for ergonomic imports:
# ``from repro.errors import MR_PERM``.
for _symbol in MOIRA_ERRORS.symbols():
    globals()[_symbol] = MOIRA_ERRORS.code(_symbol)
    __all__.append(_symbol)
del _symbol

# MR_SUCCESS must be the conventional zero for "no error" comparisons to
# read naturally; the table assigns it base+0 which is non-zero, so we
# keep both: MR_SUCCESS the table code is not used, plain 0 is success.
MR_SUCCESS = 0


class MoiraError(Exception):
    """Exception carrying a Moira error code.

    Server-side query implementations raise this; the protocol layer maps
    it to the wire error code, and the client library maps codes back to
    exceptions or return values as the original C API did.
    """

    def __init__(self, code: int, detail: str = ""):
        self.code = code
        self.detail = detail
        text = error_message(code)
        super().__init__(f"{text} ({detail})" if detail else text)

    @property
    def symbol(self) -> str:
        """Symbolic name (e.g. ``"MR_PERM"``) if the code is a Moira code."""
        try:
            return MOIRA_ERRORS.name_of(self.code)
        except KeyError:
            return str(self.code)


# Kerberos error table (simulated Kerberos failures surface through the
# same com_err mechanism, as the paper notes for mr_auth).
KRB_ERRORS = ErrorTable(
    "krb",
    [
        ("KRB_SUCCESS", "Kerberos success"),
        ("KRB_NO_TICKET", "Can't find ticket"),
        ("KRB_TICKET_EXPIRED", "Ticket expired"),
        ("KRB_UNKNOWN_PRINCIPAL", "Principal unknown to Kerberos"),
        ("KRB_BAD_PASSWORD", "Incorrect password"),
        ("KRB_REPLAY", "Authenticator replay detected"),
        ("KRB_SKEW", "Clock skew too great"),
        ("KRB_PRINCIPAL_EXISTS", "Principal already exists"),
        ("KRB_BAD_INTEGRITY", "Decrypt integrity check failed"),
    ],
)

for _symbol in KRB_ERRORS.symbols():
    globals()[_symbol] = KRB_ERRORS.code(_symbol)
    __all__.append(_symbol)
del _symbol
