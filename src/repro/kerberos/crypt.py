"""Toy crypt(3) and DES-CBC stand-ins for the registration protocol.

The paper's registration flow stores "an encrypted form of the student's
ID number ... the encryption algorithm is the UNIX C library crypt()
function", salted with the first letters of the first and last names,
and builds authenticators by DES-encrypting ``{IDnumber, hashIDnumber,
payload}`` in "error propagating cypher-block-chaining mode" keyed by
the hashed ID.

We reproduce the *shapes*: a deterministic salted hash that yields
13-character crypt-style strings, and a keyed error-propagating CBC
cipher over bytes.  Neither is cryptographically strong — they are
simulation substitutes, as DESIGN.md records — but they verify, fail on
wrong keys, and propagate damage exactly like the originals, which is
what the protocol tests need.
"""

from __future__ import annotations

import hashlib

__all__ = ["unix_crypt", "des_cbc_encrypt", "des_cbc_decrypt"]

_CRYPT_CHARS = (
    "./0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz"
)


def unix_crypt(word: str, salt: str) -> str:
    """crypt(3)-shaped hash: 2 salt chars + 11 hash chars.

    Deterministic in (word, salt); only the first 8 characters of the
    word are significant, as in the original DES crypt.
    """
    if len(salt) < 2:
        salt = (salt + "..")[:2]
    salt = salt[:2]
    digest = hashlib.sha256(
        (salt + word[:8]).encode("utf-8")).digest()
    body = "".join(_CRYPT_CHARS[b & 0x3F] for b in digest[:11])
    return salt + body


def _keystream(key: bytes, length: int) -> bytes:
    out = bytearray()
    counter = 0
    while len(out) < length:
        out.extend(hashlib.sha256(key + counter.to_bytes(4, "big")).digest())
        counter += 1
    return bytes(out[:length])


_BLOCK = 8


def des_cbc_encrypt(key: bytes | str, plaintext: bytes) -> bytes:
    """Error-propagating CBC over 8-byte blocks with a keyed stream.

    The chaining state folds in every previous ciphertext block, so a
    flipped bit anywhere garbles all subsequent plaintext — and the
    trailing integrity block (derived from the final chain state) makes
    the damage *detectable*, the property the registration server
    relies on to reject tampered requests.
    """
    if isinstance(key, str):
        key = key.encode("utf-8")
    pad = _BLOCK - (len(plaintext) % _BLOCK)
    padded = plaintext + bytes([pad]) * pad
    stream = _keystream(key, len(padded))
    prev = hashlib.sha256(key).digest()[:_BLOCK]
    out = bytearray()
    for i in range(0, len(padded), _BLOCK):
        block = bytes(a ^ b ^ c for a, b, c in zip(
            padded[i:i + _BLOCK], stream[i:i + _BLOCK], prev))
        out.extend(block)
        prev = hashlib.sha256(key + block + prev).digest()[:_BLOCK]
    out.extend(prev)  # integrity block: the final chain state
    return bytes(out)


def des_cbc_decrypt(key: bytes | str, ciphertext: bytes) -> bytes:
    """Inverse of :func:`des_cbc_encrypt`; raises ValueError on damage."""
    if isinstance(key, str):
        key = key.encode("utf-8")
    if len(ciphertext) < 2 * _BLOCK or len(ciphertext) % _BLOCK:
        raise ValueError("ciphertext is not block aligned")
    body, tag = ciphertext[:-_BLOCK], ciphertext[-_BLOCK:]
    stream = _keystream(key, len(body))
    prev = hashlib.sha256(key).digest()[:_BLOCK]
    out = bytearray()
    for i in range(0, len(body), _BLOCK):
        block = body[i:i + _BLOCK]
        plain = bytes(a ^ b ^ c for a, b, c in zip(
            block, stream[i:i + _BLOCK], prev))
        out.extend(plain)
        prev = hashlib.sha256(key + block + prev).digest()[:_BLOCK]
    if prev != tag:
        raise ValueError("decrypt integrity check failed")
    pad = out[-1]
    if not 1 <= pad <= _BLOCK or out[-pad:] != bytes([pad]) * pad:
        raise ValueError("decrypt integrity check failed")
    return bytes(out[:-pad])
