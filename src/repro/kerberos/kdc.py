"""Simulated KDC: principals, tickets, authenticators, replay detection.

The interface mirrors what Moira needs from Kerberos v4:

* ``kinit`` — obtain a ticket-granting credential for a user principal
  by password (userreg's "try to get initial tickets ... if this fails,
  the username is free").
* ``get_service_ticket`` / ``make_authenticator`` — what ``mr_auth``
  sends to the Moira server.
* ``verify_authenticator`` — server side: checks the ticket's
  signature, lifetime on the virtual clock, and an authenticator replay
  cache ("safe from ... replay of transactions").
* admin interface — reserve principals and set passwords over a
  srvtab-authenticated channel (for the registration server).
"""

from __future__ import annotations

import hashlib
import hmac
import secrets
from dataclasses import dataclass, field

from repro.errors import (
    MoiraError,
    KRB_BAD_PASSWORD,
    KRB_NO_TICKET,
    KRB_PRINCIPAL_EXISTS,
    KRB_REPLAY,
    KRB_SKEW,
    KRB_TICKET_EXPIRED,
    KRB_UNKNOWN_PRINCIPAL,
    KRB_BAD_INTEGRITY,
)
from repro.sim.clock import Clock

__all__ = ["KDC", "Ticket", "Authenticator", "CredentialCache"]

DEFAULT_LIFETIME = 10 * 3600  # Athena tickets lasted the working day


def _derive_key(password: str) -> bytes:
    return hashlib.sha256(b"krbkey:" + password.encode("utf-8")).digest()


@dataclass(frozen=True)
class Ticket:
    """A service ticket: client identity sealed under the service key."""

    client: str
    service: str
    issued: int
    lifetime: int
    session_key: bytes
    signature: bytes

    def expires(self) -> int:
        """Absolute expiry time of the ticket."""
        return self.issued + self.lifetime


@dataclass(frozen=True)
class Authenticator:
    """Ticket plus a timestamped, session-key-signed nonce."""

    ticket: Ticket
    timestamp: int
    nonce: str
    mac: bytes


@dataclass
class CredentialCache:
    """A user's ticket file — what kinit populates and mr_auth reads."""

    principal: str
    tickets: dict[str, Ticket] = field(default_factory=dict)

    def get(self, service: str) -> Ticket:
        """The cached ticket for *service* (KRB_NO_TICKET if none)."""
        ticket = self.tickets.get(service)
        if ticket is None:
            raise MoiraError(KRB_NO_TICKET, f"{self.principal} -> {service}")
        return ticket

    def store(self, ticket: Ticket) -> None:
        """Cache a ticket under its service name."""
        self.tickets[ticket.service] = ticket

    def destroy(self) -> None:
        """kdestroy: drop every cached ticket."""
        self.tickets.clear()


class KDC:
    """The key distribution centre plus admin server."""

    def __init__(self, clock: Clock, realm: str = "ATHENA.MIT.EDU"):
        self.clock = clock
        self.realm = realm
        self._keys: dict[str, bytes] = {}
        self._reserved: set[str] = set()
        self._replay_cache: set[tuple[str, str]] = set()
        # srvtabs handed to servers so they can verify tickets directly
        self._srvtabs: dict[str, bytes] = {}

    # -- principal administration -------------------------------------------

    def add_principal(self, name: str, password: str) -> None:
        """Register a user principal with a password."""
        if name in self._keys or name in self._reserved:
            raise MoiraError(KRB_PRINCIPAL_EXISTS, name)
        self._keys[name] = _derive_key(password)

    def add_service(self, name: str) -> bytes:
        """Register a service principal; returns its srvtab key."""
        key = hashlib.sha256(
            b"srvtab:" + name.encode("utf-8") + secrets.token_bytes(8)
        ).digest()
        if name in self._keys:
            raise MoiraError(KRB_PRINCIPAL_EXISTS, name)
        self._keys[name] = key
        self._srvtabs[name] = key
        return key

    def srvtab(self, service: str) -> bytes:
        """The service key previously issued to *service*."""
        return self._srvtabs[service]

    def principal_exists(self, name: str) -> bool:
        """Known (or reserved) principal?"""
        return name in self._keys or name in self._reserved

    def reserve_principal(self, name: str) -> None:
        """Reserve a name without a key yet (registration grab_login)."""
        if self.principal_exists(name):
            raise MoiraError(KRB_PRINCIPAL_EXISTS, name)
        self._reserved.add(name)

    def set_password(self, name: str, password: str) -> None:
        """Set/replace a principal's key (registration set_password)."""
        self._reserved.discard(name)
        self._keys[name] = _derive_key(password)

    def delete_principal(self, name: str) -> None:
        """Remove a principal entirely."""
        self._keys.pop(name, None)
        self._reserved.discard(name)

    # -- ticket issuance ------------------------------------------------------

    def kinit(self, principal: str, password: str,
              lifetime: int = DEFAULT_LIFETIME) -> CredentialCache:
        """Password login: returns a fresh credential cache."""
        key = self._keys.get(principal)
        if key is None:
            raise MoiraError(KRB_UNKNOWN_PRINCIPAL, principal)
        if key != _derive_key(password):
            raise MoiraError(KRB_BAD_PASSWORD, principal)
        return CredentialCache(principal=principal)

    def kinit_keytab(self, principal: str, key: bytes) -> CredentialCache:
        """Keytab login: authenticate with a raw service key.

        How a daemon (the replication feed puller, authenticating as
        the ``repl`` service principal) gets credentials — no password,
        just the srvtab key handed out by :meth:`add_service`.
        """
        stored = self._keys.get(principal)
        if stored is None:
            raise MoiraError(KRB_UNKNOWN_PRINCIPAL, principal)
        if not hmac.compare_digest(stored, key):
            raise MoiraError(KRB_BAD_PASSWORD, principal)
        return CredentialCache(principal=principal)

    def get_service_ticket(self, cache: CredentialCache, service: str,
                           lifetime: int = DEFAULT_LIFETIME) -> Ticket:
        """Issue (and cache) a ticket for *service*."""
        if service not in self._keys:
            raise MoiraError(KRB_UNKNOWN_PRINCIPAL, service)
        if cache.principal not in self._keys:
            raise MoiraError(KRB_UNKNOWN_PRINCIPAL, cache.principal)
        session_key = secrets.token_bytes(16)
        issued = self.clock.now()
        signature = self._sign_ticket(cache.principal, service, issued,
                                      lifetime, session_key)
        ticket = Ticket(client=cache.principal, service=service,
                        issued=issued, lifetime=lifetime,
                        session_key=session_key, signature=signature)
        cache.store(ticket)
        return ticket

    def _sign_ticket(self, client: str, service: str, issued: int,
                     lifetime: int, session_key: bytes) -> bytes:
        service_key = self._keys[service]
        blob = f"{client}|{service}|{issued}|{lifetime}".encode() + session_key
        return hmac.new(service_key, blob, hashlib.sha256).digest()

    # -- authenticators ----------------------------------------------------------

    @staticmethod
    def make_authenticator(ticket: Ticket, now: int) -> Authenticator:
        """Client side: timestamped proof under the session key."""
        nonce = secrets.token_hex(8)
        mac = hmac.new(ticket.session_key,
                       f"{ticket.client}|{now}|{nonce}".encode(),
                       hashlib.sha256).digest()
        return Authenticator(ticket=ticket, timestamp=now, nonce=nonce,
                             mac=mac)

    def verify_authenticator(self, auth: Authenticator, service: str,
                             *, max_skew: int = 300) -> str:
        """Server-side check; returns the verified client principal.

        Raises Kerberos error codes on forged tickets, expiry, clock
        skew, or replay — the failure modes mr_auth can surface.
        """
        ticket = auth.ticket
        if ticket.service != service:
            raise MoiraError(KRB_BAD_INTEGRITY,
                             f"ticket is for {ticket.service}")
        service_key = self._keys.get(service)
        if service_key is None:
            raise MoiraError(KRB_UNKNOWN_PRINCIPAL, service)
        expect = self._sign_ticket(ticket.client, ticket.service,
                                   ticket.issued, ticket.lifetime,
                                   ticket.session_key)
        if not hmac.compare_digest(expect, ticket.signature):
            raise MoiraError(KRB_BAD_INTEGRITY, "ticket signature")
        now = self.clock.now()
        if now > ticket.expires():
            raise MoiraError(KRB_TICKET_EXPIRED, ticket.client)
        if abs(now - auth.timestamp) > max_skew:
            raise MoiraError(KRB_SKEW, str(auth.timestamp))
        mac = hmac.new(ticket.session_key,
                       f"{ticket.client}|{auth.timestamp}|{auth.nonce}"
                       .encode(), hashlib.sha256).digest()
        if not hmac.compare_digest(mac, auth.mac):
            raise MoiraError(KRB_BAD_INTEGRITY, "authenticator mac")
        replay_key = (ticket.client, auth.nonce)
        if replay_key in self._replay_cache:
            raise MoiraError(KRB_REPLAY, ticket.client)
        self._replay_cache.add(replay_key)
        return ticket.client
