"""Simulated Kerberos — private-key authentication for Moira (paper §4, §5.9.2).

Moira authenticates users "using Athena's Kerberos private-key
authentication system"; the registration server talks to the Kerberos
admin server over a "srvtab-srvtab" channel.  This package simulates the
pieces Moira relies on: a KDC holding principal keys, ticket issuance
with lifetimes on the virtual clock, authenticators with replay
detection, and an admin interface for reserving principals and setting
passwords.  The cryptography is deliberately simple (HMAC/XOR toys);
the *protocol state machine* is what the reproduction needs.
"""

from repro.kerberos.kdc import (
    KDC,
    Authenticator,
    CredentialCache,
    Ticket,
)
from repro.kerberos.crypt import unix_crypt, des_cbc_decrypt, des_cbc_encrypt

__all__ = [
    "KDC",
    "Authenticator",
    "CredentialCache",
    "Ticket",
    "unix_crypt",
    "des_cbc_encrypt",
    "des_cbc_decrypt",
]
