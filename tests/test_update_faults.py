"""Fault-injection tests: the §5.9 soft/hard classification matrix.

Each test provokes one failure mode at an exact protocol boundary via
the seeded :class:`FaultInjector` and asserts the DCM-facing
classification: *soft* failures (retry next cycle) versus *hard* ones
(hosterror, human attention).
"""

from __future__ import annotations

import pytest

from repro.core import AthenaDeployment, DeploymentConfig
from repro.dcm.update import (
    UpdateOutcome,
    build_payload,
    default_script,
    push_update,
)
from repro.errors import (
    MR_CHECKSUM,
    MR_HOST_UNREACHABLE,
    MR_SCRIPT_FAILED,
    MR_UPDATE_TIMEOUT,
)
from repro.hosts.host import SimulatedHost
from repro.hosts.update_daemon import InstallScript, UpdateDaemon
from repro.sim import FaultInjector, Network, NetworkError
from repro.workload import PopulationSpec

FILES = {"hesiod.conf": b"lots of hesiod records\n"}


@pytest.fixture
def rig():
    """One host + daemon + network sharing a fault injector."""
    faults = FaultInjector(seed=7)
    host = SimulatedHost("WS1.MIT.EDU")
    daemon = UpdateDaemon(host, faults=faults)
    network = Network(seed=7, faults=faults)
    return host, daemon, network, faults


def push(host, daemon, network, faults, *, script=None, timeout=120):
    return push_update(
        host=host, daemon=daemon, network=network,
        target="/tmp/hesiod.out", payload=build_payload(FILES),
        script=script or default_script(FILES), timeout=timeout,
        faults=faults)


class TestClassificationMatrix:
    def test_clean_push_succeeds(self, rig):
        host, daemon, network, faults = rig
        result = push(host, daemon, network, faults)
        assert result.ok
        assert host.fs.read("hesiod.conf") == FILES["hesiod.conf"]
        assert daemon.installs_executed == 1

    def test_partition_mid_transfer_is_soft_unreachable(self, rig):
        """The link dies after authentication, during the file
        transfer: soft MR_HOST_UNREACHABLE, nothing installed."""
        host, daemon, network, faults = rig
        faults.fail("update.transfer",
                    NetworkError("WS1 partitioned mid-transfer"))
        result = push(host, daemon, network, faults)
        assert result.outcome is UpdateOutcome.SOFT_FAILURE
        assert result.error == MR_HOST_UNREACHABLE
        assert daemon.updates_received == 0
        assert not host.fs.exists("hesiod.conf")

    def test_checksum_corruption_is_soft(self, rig):
        """Payload damaged in transit: the daemon's checksum rejects
        it, the DCM retries later — valid files still exist on Moira."""
        host, daemon, network, faults = rig
        network.set_corrupt_rate(host.name, 1.0)
        result = push(host, daemon, network, faults)
        assert result.outcome is UpdateOutcome.SOFT_FAILURE
        assert result.error == MR_CHECKSUM
        assert daemon.installs_executed == 0

    def test_daemon_crash_between_transfer_and_execute(self, rig):
        """The host dies after the flush but before the execute
        command: the DCM sees a timeout (soft).  'Either the file will
        have been installed or it will not' — retry converges."""
        host, daemon, network, faults = rig
        faults.crash_host_at("daemon.execute", host)
        result = push(host, daemon, network, faults)
        assert result.outcome is UpdateOutcome.SOFT_FAILURE
        assert result.error == MR_UPDATE_TIMEOUT
        assert daemon.updates_received == 1   # transfer phase completed
        assert not host.alive

    def test_timeout_during_install_is_soft_after_side_effects(self, rig):
        """The execute operation itself blows the per-op ceiling.  The
        install has *already happened* when the timeout is observed —
        the classification is still soft, and the duplicate install on
        retry is harmless (idempotent renames)."""
        host, daemon, network, faults = rig
        faults.delay("update.execute", 500)   # >> the 120s ceiling
        result = push(host, daemon, network, faults)
        assert result.outcome is UpdateOutcome.SOFT_FAILURE
        assert result.error == MR_UPDATE_TIMEOUT
        assert "exceeded" in result.message
        assert daemon.installs_executed == 1  # it DID run

    def test_script_failure_is_hard(self, rig):
        """The install script exiting non-zero is the one genuinely
        hard failure: hosterror, wait for a human."""
        host, daemon, network, faults = rig
        script = default_script(FILES).execute("no_such_command")
        result = push(host, daemon, network, faults, script=script)
        assert result.outcome is UpdateOutcome.HARD_FAILURE
        assert result.error == MR_SCRIPT_FAILED

    def test_wedged_daemon_times_out_without_transfer(self, rig):
        """A wedged-but-alive daemon: the *authenticate* operation's
        observed cost blows the ceiling, so the transfer never starts
        and the injected slowness classifies exactly like a real one."""
        host, daemon, network, faults = rig
        daemon.response_delay = 10_000
        result = push(host, daemon, network, faults)
        assert result.outcome is UpdateOutcome.SOFT_FAILURE
        assert result.error == MR_UPDATE_TIMEOUT
        assert "exceeded" in result.message
        assert daemon.updates_received == 0

    def test_injected_delay_under_ceiling_is_fine(self, rig):
        host, daemon, network, faults = rig
        faults.delay("update.transfer", 30)   # slow but acceptable
        result = push(host, daemon, network, faults)
        assert result.ok

    def test_crash_mid_install_step(self, rig):
        """Machine dies between two install instructions: timeout
        (soft); the staged rename either happened or it didn't."""
        host, daemon, network, faults = rig
        faults.crash_host_at("daemon.step", host,
                             where=lambda ctx: ctx["op"] == "install")
        result = push(host, daemon, network, faults)
        assert result.outcome is UpdateOutcome.SOFT_FAILURE
        assert result.error == MR_UPDATE_TIMEOUT


class TestDeploymentWeather:
    """Scheduled per-cycle network weather through a full deployment."""

    def _deploy(self, faults):
        return AthenaDeployment(DeploymentConfig(
            population=PopulationSpec(
                users=15, unregistered_users=0, nfs_servers=2,
                maillists=2, clusters=1, machines_per_cluster=1,
                printers=1, network_services=3),
            faults=faults))

    def test_partition_for_cycles_then_converge(self):
        faults = FaultInjector(seed=3)
        d = self._deploy(faults)
        hesiod = d.handles.hesiod_machine
        faults.net_partition(hesiod, cycles=50)
        d.run_hours(7)   # generation due at 6h; all pushes fail soft
        row = d.db.table("serverhosts").select({"service": "HESIOD"})[0]
        assert row["success"] == 0
        assert row["hosterror"] == 0   # soft: still retryable
        # weather expires (50 cycles ≈ 12.5h total); heal + converge
        d.run_hours(8)
        row = d.db.table("serverhosts").select({"service": "HESIOD"})[0]
        assert row["success"] == 1

    def test_fault_log_records_firings(self):
        faults = FaultInjector(seed=3)
        d = self._deploy(faults)
        faults.net_partition(d.handles.hesiod_machine, cycles=2)
        d.run_hours(7)
        assert faults.cycle > 0            # begin_cycle ran per DCM tick
        assert faults.calls("update.authenticate") > 0
