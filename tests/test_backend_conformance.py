"""The StorageBackend conformance suite.

One behavioural contract, three backends: every factory registered in
:mod:`repro.db.backend` must agree with the pure-Python engine on
CRUD semantics, uniqueness, wildcard matching, case folding, the
values helpers, and TBLSTATS accounting — plus survive the
checkpoint/recover crash-boundary discipline and serve the
replication snapshot/tail feed.  The in-memory engine is the oracle;
running it through the same suite keeps the contract honest.
"""

from __future__ import annotations

import pytest

from repro.db.backend import (
    StorageBackend,
    StorageTable,
    available_backends,
    create_backend,
)
from repro.db.backup import mrbackup
from repro.db.journal import Journal
from repro.db.recovery import checkpoint, recover
from repro.errors import MoiraError, MR_EXISTS, MR_NO_ID
from repro.queries.base import QueryContext, execute_query
from repro.sim.clock import DEFAULT_EPOCH, Clock
from repro.sim.faults import FaultInjector, ServerCrash

BACKENDS = available_backends()
BASE = DEFAULT_EPOCH + 1000


@pytest.fixture(params=BACKENDS)
def backend(request, tmp_path):
    if request.param == "sqlite":
        db = create_backend("sqlite", str(tmp_path / "conf.sqlite"))
    elif request.param == "walstore":
        db = create_backend("walstore", str(tmp_path / "conf.waljsonl"))
    else:
        db = create_backend(request.param)
    yield db
    close = getattr(db, "close", None)
    if callable(close):
        close()


class TestInterfaceContract:
    def test_registry_names(self):
        assert {"memory", "sqlite", "walstore"} <= set(BACKENDS)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            create_backend("ingres")

    def test_isinstance_contract(self, backend):
        assert isinstance(backend, StorageBackend)
        assert isinstance(backend.table("users"), StorageTable)


class TestCrudConformance:
    def test_insert_defaults_and_coercion(self, backend):
        t = backend.table("machine")
        row = t.insert({"name": "CONF1.MIT.EDU", "mach_id": "41",
                        "type": "VAX"}, now=BASE)
        assert row["mach_id"] == 41  # coerced to int
        assert row["modby"] == ""    # default filled
        assert t.count({"name": "CONF1.MIT.EDU"}) == 1

    def test_update_and_delete(self, backend):
        t = backend.table("machine")
        t.insert({"name": "CONF2.MIT.EDU", "mach_id": 42,
                  "type": "VAX"}, now=BASE)
        rows = t.select({"name": "CONF2.MIT.EDU"})
        assert t.update_rows(rows, {"type": "RT"}, now=BASE + 1) == 1
        assert t.select({"name": "CONF2.MIT.EDU"})[0]["type"] == "RT"
        assert t.delete_rows(rows, now=BASE + 2) == 1
        assert t.count({"name": "CONF2.MIT.EDU"}) == 0

    def test_empty_update_and_delete_semantics(self, backend):
        """The divergences the conformance suite exists to catch: an
        empty *changes* dict still counts the rows as updated; an
        empty *rows* list is a no-op that leaves stats alone."""
        t = backend.table("machine")
        t.insert({"name": "CONF3.MIT.EDU", "mach_id": 43,
                  "type": "VAX"}, now=BASE)
        rows = t.select({"name": "CONF3.MIT.EDU"})
        updates = t.stats.updates
        assert t.update_rows(rows, {}, now=BASE + 1) == 1
        assert t.stats.updates == updates + 1
        deletes, modtime = t.stats.deletes, t.stats.modtime
        assert t.delete_rows([], now=BASE + 99) == 0
        assert t.stats.deletes == deletes
        assert t.stats.modtime == modtime

    def test_uniqueness_enforced(self, backend):
        t = backend.table("machine")
        t.insert({"name": "CONF4.MIT.EDU", "mach_id": 44,
                  "type": "VAX"}, now=BASE)
        with pytest.raises(MoiraError) as err:
            t.insert({"name": "CONF4.MIT.EDU", "mach_id": 45,
                      "type": "RT"}, now=BASE)
        assert err.value.code == MR_EXISTS

    def test_uniqueness_folds_case(self, backend):
        t = backend.table("machine")
        t.insert({"name": "CONF5.MIT.EDU", "mach_id": 46,
                  "type": "VAX"}, now=BASE)
        with pytest.raises(MoiraError):
            t.insert({"name": "conf5.mit.edu", "mach_id": 47,
                      "type": "RT"}, now=BASE)


class TestMatchingConformance:
    @pytest.fixture(autouse=True)
    def seed(self, backend):
        t = backend.table("machine")
        for i, kind in enumerate(("VAX", "VAX", "RT")):
            t.insert({"name": f"WILD{i}.MIT.EDU", "mach_id": 60 + i,
                      "type": kind}, now=BASE)
        self.t = t

    def test_star_wildcard(self):
        assert {r["name"] for r in self.t.select(
            {"name": "WILD*.MIT.EDU"})} == {
            "WILD0.MIT.EDU", "WILD1.MIT.EDU", "WILD2.MIT.EDU"}

    def test_question_wildcard(self):
        assert self.t.count({"name": "WILD?.MIT.EDU"}) == 3
        assert self.t.count({"name": "WILD??.MIT.EDU"}) == 0

    def test_exact_match_folds_case(self):
        assert self.t.count({"name": "wild0.mit.edu"}) == 1

    def test_combined_where_and_predicate(self):
        got = self.t.select({"type": "VAX"},
                            predicate=lambda r: r["mach_id"] > 60)
        assert [r["name"] for r in got] == ["WILD1.MIT.EDU"]


class TestValuesHelpers:
    def test_get_set_next(self, backend):
        backend.set_value("conf_hint", 100, now=BASE)
        assert backend.get_value("conf_hint") == 100
        assert backend.next_id("conf_hint", now=BASE) == 100
        assert backend.get_value("conf_hint") == 101

    def test_unknown_value_raises(self, backend):
        with pytest.raises(MoiraError) as err:
            backend.get_value("no_such_hint")
        assert err.value.code == MR_NO_ID


class TestStatsConformance:
    def test_tblstats_accounting(self, backend):
        t = backend.table("machine")
        t.insert({"name": "STAT1.MIT.EDU", "mach_id": 70,
                  "type": "VAX"}, now=BASE)
        rows = t.select({"name": "STAT1.MIT.EDU"})
        t.update_rows(rows, {"type": "RT"}, now=BASE + 1)
        t.delete_rows(rows, now=BASE + 2)
        assert (t.stats.appends, t.stats.updates, t.stats.deletes) == \
            (1, 1, 1)
        assert t.stats.modtime == BASE + 2
        stats_rows = {row[0]: row for row in backend.table_stats()}
        assert "machine" in stats_rows

    def test_versions_vector_moves(self, backend):
        v0 = backend.versions()["machine"]
        backend.table("machine").insert(
            {"name": "STAT2.MIT.EDU", "mach_id": 71, "type": "VAX"},
            now=BASE)
        assert backend.versions()["machine"] > v0


def mutations(n):
    """Deterministic query-layer mutation schedule (E12 discipline)."""
    muts = []
    for i in range(n):
        if i % 3 == 2:
            muts.append(("add_list",
                         [f"cl{i}", "1", "1", "0", "1", "0",
                          str(900 + i), "NONE", "NONE", f"list {i}"]))
        else:
            muts.append(("add_user",
                         [f"cuser{i}", str(7000 + i), "/bin/csh",
                          f"Last{i}", "First", "", "1", f"mid{i}",
                          "1990"]))
    return muts


def apply_one(db, journal, clock, when, name, args):
    clock.set(when)
    ctx = QueryContext(db=db, clock=clock, caller="root", client="conf",
                       privileged=True, journal=journal)
    execute_query(ctx, name, args)


def dump(db, directory):
    mrbackup(db, directory)
    return {p.name: p.read_bytes() for p in directory.iterdir()}


def fresh_backend(name, tmp_path, tag):
    if name == "sqlite":
        return create_backend("sqlite",
                              str(tmp_path / f"{tag}.sqlite"))
    if name == "walstore":
        return create_backend("walstore",
                              str(tmp_path / f"{tag}.waljsonl"))
    return create_backend(name)


CRASH_KINDS = ("record", "torn", "appended")


def arm(faults, kind, boundary):
    if kind == "record":
        faults.crash_server("journal.record", at_call=boundary)
    elif kind == "torn":
        faults.tear_write("journal.write", at_call=boundary)
    else:
        faults.crash_server("journal.appended", at_call=boundary)


class TestCheckpointRecoverOnEveryBackend:
    """`recover(..., db=<fresh backend>)` replays the WAL through the
    query layer, so snapshot+WAL recovery is backend-agnostic — run
    the crash-boundary discipline against each backend."""

    N = 12

    def oracle(self, name, tmp_path):
        db = fresh_backend(name, tmp_path, "oracle")
        journal = Journal(path=tmp_path / "oracle-wal")
        clock = Clock()
        for i, (qname, args) in enumerate(mutations(self.N)):
            apply_one(db, journal, clock, BASE + i * 10, qname, args)
        journal.close()
        return dump(db, tmp_path / "oracle-dump")

    @pytest.mark.parametrize("name", BACKENDS)
    @pytest.mark.parametrize("kind", CRASH_KINDS)
    def test_crash_boundary_sweep(self, name, kind, tmp_path):
        oracle_dump = self.oracle(name, tmp_path)
        muts = mutations(self.N)
        boundaries = (1, self.N // 2, self.N)
        for boundary in boundaries:
            workdir = tmp_path / f"{kind}-{boundary}"
            workdir.mkdir()
            wal_path = workdir / "wal"
            faults = FaultInjector()
            arm(faults, kind, boundary)
            db = fresh_backend(name, workdir, "run")
            journal = Journal(path=wal_path, faults=faults)
            checkpoint(db, journal, workdir / "snap")
            clock = Clock()
            crashed_at = None
            for i, (qname, args) in enumerate(muts):
                try:
                    apply_one(db, journal, clock, BASE + i * 10,
                              qname, args)
                except ServerCrash:
                    crashed_at = i
                    break
            journal.close()
            if crashed_at is not None:
                # dead process: recover into a FRESH backend instance
                db = fresh_backend(name, workdir, "recovered")
                rec = recover(workdir / "snap", wal_path=wal_path,
                              db=db)
                db = rec.db
                journal = Journal.load(wal_path)
                clock = Clock()
                for j in range(crashed_at, len(muts)):
                    qname, args = muts[j]
                    try:
                        apply_one(db, journal, clock, BASE + j * 10,
                                  qname, args)
                    except MoiraError:
                        pass  # WAL already made it durable
                journal.close()
            got = dump(db, workdir / "dump")
            assert got == oracle_dump, (
                f"{name}: divergence after {kind} crash "
                f"at boundary {boundary}")


class TestReplicationFeedOnSqlite:
    """The replica feed (snapshot cut + WAL tail) must serve from any
    backend; ROADMAP flagged SQLite as never having been under it."""

    def _server_on(self, name, tmp_path):
        from repro.kerberos.kdc import KDC
        from repro.server import MoiraServer

        db = fresh_backend(name, tmp_path, "repl")
        clock = Clock()
        journal = Journal(path=tmp_path / "repl-wal")
        server = MoiraServer(db, clock, KDC(clock), journal=journal)
        for i, (qname, args) in enumerate(mutations(6)):
            apply_one(db, journal, clock, BASE + i * 10, qname, args)
        return server, db, journal

    def _drain(self, server, query):
        from repro.protocol.wire import MajorRequest, encode_request
        conn = server.open_connection("repl-test")
        # feed pulls now require the repl service principal (the
        # primary was built with a KDC, so the auth gate is armed)
        server._connections[conn].principal = "repl"
        frame = encode_request(MajorRequest.QUERY, query)[4:]
        replies = server.handle_frame(conn, frame)
        server.close_connection(conn)
        return replies

    @pytest.mark.parametrize("name", ["memory", "sqlite"])
    def test_snapshot_and_tail_agree_across_backends(self, name,
                                                     tmp_path):
        server, db, journal = self._server_on(name, tmp_path)
        snap = self._drain(server, ["_repl_snapshot"])
        assert len(snap) > 2  # meta row + table rows + status
        tail = self._drain(server, ["_repl_tail", "0"])
        # 6 journaled mutations + meta + final status
        assert len(tail) == 8
        journal.close()

    def test_sqlite_snapshot_matches_memory(self, tmp_path):
        """Same mutation history → byte-identical data rows in the
        feed snapshot, modulo backend-private rowid bookkeeping."""
        streams = {}
        for name in ("memory", "sqlite"):
            server, db, journal = self._server_on(name, tmp_path)
            replies = self._drain(server, ["_repl_snapshot"])
            streams[name] = replies[1:]  # drop watermark meta row
            journal.close()
        assert streams["memory"] == streams["sqlite"]
