"""Tests for zephyr, hostaccess, services, printcap, alias, values,
tblstats, and built-in queries (§7.0.6-7.0.8)."""

from __future__ import annotations

import pytest

from repro.errors import (
    MoiraError,
    MR_ACE,
    MR_EXISTS,
    MR_NO_HANDLE,
    MR_NO_MATCH,
    MR_TYPE,
)
from tests.conftest import make_user


def expect_error(code, fn, *args):
    with pytest.raises(MoiraError) as exc:
        fn(*args)
    assert exc.value.code == code, exc.value


class TestZephyr:
    def test_add_get(self, run):
        make_user(run, "zuser")
        run("add_zephyr_class", "message", "USER", "zuser", "NONE",
            "NONE", "NONE", "NONE", "NONE", "NONE")
        row = run("get_zephyr_class", "message")[0]
        assert row[1] == "USER"
        assert row[2] == "zuser"
        assert row[3] == "NONE"

    def test_update_rename(self, run):
        run("add_zephyr_class", "old", "NONE", "NONE", "NONE", "NONE",
            "NONE", "NONE", "NONE", "NONE")
        run("update_zephyr_class", "old", "new", "NONE", "NONE", "NONE",
            "NONE", "NONE", "NONE", "NONE", "NONE")
        assert run("get_zephyr_class", "new")
        expect_error(MR_NO_MATCH, run, "get_zephyr_class", "old")

    def test_duplicate_class(self, run):
        run("add_zephyr_class", "dup", "NONE", "NONE", "NONE", "NONE",
            "NONE", "NONE", "NONE", "NONE")
        expect_error(MR_EXISTS, run, "add_zephyr_class", "dup", "NONE",
                     "NONE", "NONE", "NONE", "NONE", "NONE", "NONE",
                     "NONE")

    def test_bad_ace(self, run):
        expect_error(MR_ACE, run, "add_zephyr_class", "x", "USER",
                     "ghost", "NONE", "NONE", "NONE", "NONE", "NONE",
                     "NONE")

    def test_delete(self, run):
        run("add_zephyr_class", "bye", "NONE", "NONE", "NONE", "NONE",
            "NONE", "NONE", "NONE", "NONE")
        run("delete_zephyr_class", "bye")
        expect_error(MR_NO_MATCH, run, "get_zephyr_class", "bye")


class TestHostAccess:
    def test_roundtrip(self, run):
        run("add_machine", "SRV.MIT.EDU", "VAX")
        make_user(run, "op")
        run("add_server_host_access", "SRV.MIT.EDU", "USER", "op")
        row = run("get_server_host_access", "SRV*")[0]
        assert (row[1], row[2]) == ("USER", "op")
        run("update_server_host_access", "SRV.MIT.EDU", "NONE", "NONE")
        assert run("get_server_host_access", "SRV*")[0][1] == "NONE"
        run("delete_server_host_access", "SRV.MIT.EDU")
        expect_error(MR_NO_MATCH, run, "get_server_host_access", "SRV*")


class TestServices:
    def test_add_get_delete(self, run):
        run("add_service", "smtp", "TCP", 25, "mail transfer")
        row = run("get_service", "smtp")[0]
        assert row[2] == 25
        run("delete_service", "smtp")
        expect_error(MR_NO_MATCH, run, "get_service", "smtp")

    def test_protocol_validated(self, run):
        expect_error(MR_TYPE, run, "add_service", "x", "IPX", 1, "d")

    def test_duplicate(self, run):
        run("add_service", "dup", "TCP", 1, "")
        expect_error(MR_EXISTS, run, "add_service", "dup", "UDP", 2, "")


class TestPrintcap:
    def test_roundtrip(self, run):
        run("add_machine", "BLANKET.MIT.EDU", "VAX")
        run("add_printcap", "linus", "BLANKET.MIT.EDU",
            "/usr/spool/printer/linus", "linus", "E40 4th floor")
        row = run("get_printcap", "linus")[0]
        assert row[1] == "BLANKET.MIT.EDU"
        assert row[2] == "/usr/spool/printer/linus"
        run("delete_printcap", "linus")
        expect_error(MR_NO_MATCH, run, "get_printcap", "linus")


class TestAlias:
    def test_add_requires_known_type(self, run):
        expect_error(MR_TYPE, run, "add_alias", "n", "NICKNAME", "t")

    def test_filesys_alias(self, run):
        run("add_alias", "x11", "FILESYS", "xwindows")
        rows = run("get_alias", "x11", "FILESYS", "*")
        assert rows == [("x11", "FILESYS", "xwindows")]

    def test_duplicate_translation_ok_different_triples(self, run):
        run("add_alias", "svc1", "SERVICE", "real1")
        run("add_alias", "svc1", "SERVICE", "real2")
        assert len(run("get_alias", "svc1", "SERVICE", "*")) == 2

    def test_exact_duplicate_rejected(self, run):
        run("add_alias", "a", "SERVICE", "b")
        expect_error(MR_EXISTS, run, "add_alias", "a", "SERVICE", "b")

    def test_type_system_is_queryable(self, run):
        """The TYPE rows that validate other queries are themselves
        visible through get_alias."""
        rows = run("get_alias", "pobox", "TYPE", "*")
        assert {r[2] for r in rows} == {"POP", "SMTP", "NONE"}

    def test_delete_alias(self, run):
        run("add_alias", "gone", "SERVICE", "x")
        run("delete_alias", "gone", "SERVICE", "x")
        expect_error(MR_NO_MATCH, run, "get_alias", "gone", "SERVICE",
                     "*")


class TestValues:
    def test_crud(self, run):
        run("add_value", "test_var", 42)
        assert run("get_value", "test_var") == [(42,)]
        run("update_value", "test_var", 43)
        assert run("get_value", "test_var") == [(43,)]
        run("delete_value", "test_var")
        expect_error(MR_NO_MATCH, run, "get_value", "test_var")

    def test_seeded_values_exist(self, run):
        assert run("get_value", "dcm_enable") == [(1,)]
        assert run("get_value", "def_quota")[0][0] > 0


class TestTableStats:
    def test_appends_counted(self, run):
        make_user(run, "counted")
        stats = {r[0]: r for r in run("get_all_table_stats")}
        assert stats["users"][2] == 1  # appends

    def test_updates_and_deletes_counted(self, run):
        make_user(run, "mutate", status=0)
        run("update_user_shell", "mutate", "/bin/sh")
        run("delete_user", "mutate")
        stats = {r[0]: r for r in run("get_all_table_stats")}
        assert stats["users"][3] >= 1  # updates
        assert stats["users"][4] == 1  # deletes


class TestBuiltins:
    def test_help(self, run):
        text = run("_help", "get_machine")[0][0]
        assert "gmac" in text
        assert "name" in text

    def test_help_short_name(self, run):
        assert "get_machine" in run("_help", "gmac")[0][0]

    def test_help_unknown(self, run):
        expect_error(MR_NO_HANDLE, run, "_help", "bogus_query")

    def test_list_queries_complete(self, run):
        rows = run("_list_queries")
        names = {r[0] for r in rows}
        assert "get_user_by_login" in names
        assert "delete_nfs_quota" in names
        assert len(rows) > 100  # "Over 100 query handles"

    def test_unknown_query_raises_no_handle(self, run):
        expect_error(MR_NO_HANDLE, run, "frob_the_widget")
