"""WAL compaction: supersede folding, barriers, pins, the resync
floor, and durable rewrite in monolithic and segmented modes.

``Journal.compact`` drops a whitelisted record when a later record of
the same query with the same key follows it, unshielded by a barrier.
The floor it leaves behind turns a lagging replica's ``tail()`` into a
snapshot resync instead of a silent hole; ``load()`` re-derives the
floor from seq gaps so the contract survives restarts.
"""

from __future__ import annotations

import pytest

from repro.db.journal import Journal
from repro.db.recovery import SUPERSEDABLE_QUERIES, checkpoint, recover
from repro.db.schema import build_database
from repro.sim.clock import DEFAULT_EPOCH, Clock

from tests.test_wal_recovery import apply_one, dump

BASE = DEFAULT_EPOCH + 1000

SUP = {"update_user_shell": 0, "update_finger_by_login": 0}


def shell(journal, login, sh, **kw):
    return journal.record(BASE, "root", "update_user_shell",
                          (login, sh), **kw)


class TestSupersedeFolding:
    def test_superseded_records_fold(self):
        journal = Journal()
        shell(journal, "ann", "/bin/sh")
        shell(journal, "ann", "/bin/csh")
        shell(journal, "ann", "/bin/tcsh")
        shell(journal, "bob", "/bin/sh")
        out = journal.compact(supersedable=SUP)
        assert out["dropped"] == 2
        kept = [(e.query, e.args) for e in journal.entries]
        assert kept == [("update_user_shell", ("ann", "/bin/tcsh")),
                        ("update_user_shell", ("bob", "/bin/sh"))]
        assert journal.stats()["compactions"] == 1
        assert journal.stats()["compacted_away"] == 2

    def test_different_keys_do_not_supersede(self):
        journal = Journal()
        shell(journal, "ann", "/bin/sh")
        shell(journal, "bob", "/bin/sh")
        assert journal.compact(supersedable=SUP)["dropped"] == 0

    def test_different_queries_do_not_supersede(self):
        journal = Journal()
        shell(journal, "ann", "/bin/sh")
        journal.record(BASE, "root", "update_finger_by_login",
                       ("ann", "Ann", "", "", "", "", "", "", ""))
        assert journal.compact(supersedable=SUP)["dropped"] == 0

    def test_non_whitelisted_query_is_a_barrier(self):
        """A query whose replay may read what the dropped record wrote
        shields everything before it."""
        journal = Journal()
        shell(journal, "ann", "/bin/sh")
        journal.record(BASE, "root", "update_user_status", ("ann", "3"))
        shell(journal, "ann", "/bin/csh")
        assert journal.compact(supersedable=SUP)["dropped"] == 0

    def test_bindings_are_a_barrier_and_kept(self):
        """Entries carrying id/string bindings must survive — replay
        needs their allocations — and they shield earlier records."""
        journal = Journal()
        shell(journal, "ann", "/bin/sh")
        journal.record(BASE, "root", "update_user_shell",
                       ("ann", "/bin/csh"),
                       bindings={"id": {"users_id": [9]}})
        shell(journal, "ann", "/bin/tcsh")
        out = journal.compact(supersedable=SUP)
        assert out["dropped"] == 0
        assert len(journal.entries) == 3

    def test_aborted_markers_are_transparent_and_kept(self):
        journal = Journal()
        shell(journal, "ann", "/bin/sh")
        journal.record(BASE, "root", "_aborted", ("update_user_shell",),
                       bindings={"id": {"users_id": [9]}})
        shell(journal, "ann", "/bin/csh")
        out = journal.compact(supersedable=SUP)
        assert out["dropped"] == 1      # the abort does not shield
        assert [e.query for e in journal.entries] == [
            "_aborted", "update_user_shell"]

    def test_register_user_is_not_whitelisted(self):
        """update_user_status stays out of the whitelist: register_user
        replay reads status == REGISTERABLE."""
        assert "update_user_status" not in SUPERSEDABLE_QUERIES
        assert "register_user" not in SUPERSEDABLE_QUERIES


class TestPinsAndFloor:
    def test_pins_bound_the_ceiling(self):
        journal = Journal()
        shell(journal, "ann", "/bin/sh")     # seq 1
        shell(journal, "ann", "/bin/csh")    # seq 2
        shell(journal, "ann", "/bin/tcsh")   # seq 3
        out = journal.compact(supersedable=SUP, pins=(1,))
        assert out["ceiling"] == 1
        assert out["dropped"] == 1           # only seq 1 foldable
        assert out["floor"] == 1

    def test_force_ignores_pins(self):
        journal = Journal()
        shell(journal, "ann", "/bin/sh")
        shell(journal, "ann", "/bin/csh")
        shell(journal, "ann", "/bin/tcsh")
        out = journal.compact(supersedable=SUP, pins=(0,), force=True)
        assert out["dropped"] == 2
        assert out["floor"] == 2

    def test_tail_below_floor_resyncs(self):
        journal = Journal()
        shell(journal, "ann", "/bin/sh")     # seq 1
        shell(journal, "ann", "/bin/csh")    # seq 2 (drops seq 1)
        shell(journal, "bob", "/bin/sh")     # seq 3
        journal.compact(supersedable=SUP, force=True)
        oldest, current, entries = journal.tail(0)
        assert entries is None               # hole between 0 and 2
        _, _, entries = journal.tail(1)
        assert entries is not None           # at the floor: contiguous
        assert [e.seq for e in entries] == [2, 3]

    def test_floor_rederived_on_load(self, tmp_path):
        """A mid-log compaction hole must force resyncs even across a
        restart: load() re-derives the floor from the seq gap."""
        wal = tmp_path / "wal"
        journal = Journal(path=wal)
        shell(journal, "bob", "/bin/sh")     # seq 1 (kept)
        shell(journal, "ann", "/bin/sh")     # seq 2 (dropped)
        shell(journal, "ann", "/bin/csh")    # seq 3
        journal.compact(supersedable=SUP, force=True)
        assert journal._compact_floor == 2
        journal.close()
        loaded = Journal.load(wal)
        assert loaded._compact_floor == 2
        assert [e.seq for e in loaded.entries] == [1, 3]
        _, _, entries = loaded.tail(1)
        assert entries is None               # below the reloaded floor
        _, _, entries = loaded.tail(2)
        assert [e.seq for e in entries] == [3]

    def test_head_drop_resyncs_across_reload(self, tmp_path):
        """Folding the oldest record moves ``oldest_retained`` up; a
        replica below it still resyncs after a reload even though no
        mid-log gap survives to re-derive a floor from."""
        wal = tmp_path / "wal"
        journal = Journal(path=wal)
        shell(journal, "ann", "/bin/sh")     # seq 1 (dropped)
        shell(journal, "ann", "/bin/csh")    # seq 2
        journal.compact(supersedable=SUP, force=True)
        journal.close()
        loaded = Journal.load(wal)
        _, _, entries = loaded.tail(0)
        assert entries is None
        _, _, entries = loaded.tail(1)
        assert [e.seq for e in entries] == [2]


class TestDurableRewrite:
    def _churn(self, journal):
        for sh in ("/bin/sh", "/bin/csh", "/bin/tcsh"):
            shell(journal, "ann", sh)
            shell(journal, "bob", sh)

    def test_monolithic_rewrite_survives_reload(self, tmp_path):
        wal = tmp_path / "wal"
        journal = Journal(path=wal)
        self._churn(journal)
        journal.compact(supersedable=SUP)
        journal.close()
        loaded = Journal.load(wal)
        assert [(e.seq, e.args) for e in loaded.entries] == [
            (5, ("ann", "/bin/tcsh")), (6, ("bob", "/bin/tcsh"))]

    def test_segmented_rewrite_survives_reload(self, tmp_path):
        wal = tmp_path / "wal"
        journal = Journal(path=wal, rotate_segments=True)
        self._churn(journal)
        before = len(journal.segment_files())
        journal.compact(supersedable=SUP)
        assert len(journal.segment_files()) <= max(1, before)
        shell(journal, "cid", "/bin/sh")     # appends reopen a segment
        journal.close()
        loaded = Journal.load(wal)
        assert [e.args for e in loaded.entries] == [
            ("ann", "/bin/tcsh"), ("bob", "/bin/tcsh"),
            ("cid", "/bin/sh")]
        assert loaded._next_seq == 8

    def test_compact_noop_leaves_file_alone(self, tmp_path):
        wal = tmp_path / "wal"
        journal = Journal(path=wal)
        shell(journal, "ann", "/bin/sh")
        raw = wal.read_bytes()
        out = journal.compact(supersedable=SUP)
        assert out["dropped"] == 0
        assert wal.read_bytes() == raw


class TestEndToEndRecovery:
    def test_recovery_from_compacted_wal_is_byte_identical(self,
                                                           tmp_path):
        """checkpoint + compacted WAL == the live primary, exactly —
        folding superseded shell churn loses no recoverable state."""
        db = build_database()
        clock = Clock()
        journal = Journal(path=tmp_path / "wal")
        apply_one(db, journal, clock, BASE, "add_user",
                  ["ann", "7001", "/bin/sh", "Last", "Ann", "", "1",
                   "mit001", "1990"])
        checkpoint(db, journal, tmp_path / "snap")
        for i, sh in enumerate(("/bin/csh", "/bin/tcsh", "/bin/sh",
                                "/bin/athena/tcsh")):
            apply_one(db, journal, clock, BASE + 10 + i,
                      "update_user_shell", ["ann", sh])
        dropped = journal.compact(
            supersedable=SUPERSEDABLE_QUERIES)["dropped"]
        assert dropped == 3
        journal.close()
        rec = recover(tmp_path / "snap", wal_path=tmp_path / "wal")
        assert dump(rec.db, tmp_path / "replayed") == \
            dump(db, tmp_path / "primary")
