"""The failover story over real sockets.

Three layers, bottom up:

* **Transport lifecycle** — ephemeral binds whose port is readable from
  construction, idempotent ``stop()``, and a hard no-restart contract:
  exactly what chaos teardown paths lean on.
* **Torn TCP frames** — a cutting proxy severs the feed connection
  mid-``_repl_tail`` reply stream.  The pull fails, the replica applies
  *nothing* (the feed is collected before apply, so a torn stream is
  atomic), and a retarget past the fault catches all the way up —
  parametrized over the memory and sqlite storage backends, because
  feed serialization must not care what the primary stores rows in.
* **TCP topology** — a deployment with ``replica_tcp=True``: router
  reads/writes over sockets, feed auth enforced on the wire
  (``MR_PERM`` to anyone but the ``repl`` principal), and a full
  kill → promote → re-route cycle where "kill" is ``transport.stop()``.
"""

from __future__ import annotations

import socket
import threading
from types import SimpleNamespace

import pytest

from repro.core import AthenaDeployment, DeploymentConfig
from repro.db.backend import create_backend
from repro.db.backup import mrbackup
from repro.db.journal import Journal
from repro.errors import MoiraError, MR_PERM
from repro.kerberos.kdc import KDC
from repro.protocol.transport import TcpServerTransport, connect_tcp
from repro.protocol.wire import MajorRequest
from repro.queries.base import QueryContext, execute_query
from repro.replication.feed import REPL_SERVICE_PRINCIPAL
from repro.replication.replica import ReplicaServer
from repro.server import MoiraServer, seed_capacls
from repro.sim.clock import DEFAULT_EPOCH, Clock
from repro.sim.faults import FaultInjector
from repro.workload import PopulationSpec

BASE = DEFAULT_EPOCH + 3000

SMALL = dict(users=10, unregistered_users=2, nfs_servers=2, maillists=3,
             clusters=2, machines_per_cluster=2, printers=2,
             network_services=3)


# -- plumbing ------------------------------------------------------------------


class _NullDispatcher:
    """The least dispatcher a transport will accept."""

    def open_connection(self, peer):
        return 1

    def handle_frame(self, conn_id, frame):
        return []

    def close_connection(self, conn_id):
        pass


class _CuttingProxy:
    """A TCP proxy that tears the feed mid-frame.

    Forwards both directions byte-for-byte, metering server→client
    traffic; once *budget* metered bytes have flowed, the connection is
    torn down on the spot — the client sees a reply stream that stops
    partway through a frame.  ``budget=None`` never cuts (a pure
    byte-counter, used to size the torn run).
    """

    def __init__(self, target, budget=None):
        self.target = target
        self.budget = budget
        self.server_bytes = 0
        self.cuts = 0
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(8)
        self.address = self._listener.getsockname()
        self._stopped = False
        self._lock = threading.Lock()
        self._socks: list[socket.socket] = []
        self._accepter = threading.Thread(target=self._accept_loop,
                                          daemon=True)
        self._accepter.start()

    def _accept_loop(self):
        while True:
            try:
                client, _ = self._listener.accept()
            except OSError:
                return
            try:
                upstream = socket.create_connection(self.target, timeout=5)
            except OSError:
                client.close()
                continue
            with self._lock:
                self._socks += [client, upstream]
            threading.Thread(target=self._pump, args=(client, upstream, False),
                             daemon=True).start()
            threading.Thread(target=self._pump, args=(upstream, client, True),
                             daemon=True).start()

    def _pump(self, src, dst, metered):
        try:
            while True:
                data = src.recv(65536)
                if not data:
                    break
                if metered and self.budget is not None:
                    room = self.budget - self.server_bytes
                    if len(data) >= room:
                        chunk = data[:max(0, room)]
                        if chunk:
                            dst.sendall(chunk)
                            self.server_bytes += len(chunk)
                        self.cuts += 1
                        break
                if metered:
                    self.server_bytes += len(data)
                dst.sendall(data)
        except OSError:
            pass
        finally:
            for sock in (src, dst):
                try:
                    sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                try:
                    sock.close()
                except OSError:
                    pass

    def stop(self):
        if self._stopped:
            return
        self._stopped = True
        try:
            self._listener.close()
        except OSError:
            pass
        with self._lock:
            socks = list(self._socks)
        for sock in socks:
            try:
                sock.close()
            except OSError:
                pass


def repl_creds(kdc):
    return kdc.kinit_keytab(REPL_SERVICE_PRINCIPAL,
                            kdc.srvtab(REPL_SERVICE_PRINCIPAL))


def dump(db, directory):
    mrbackup(db, directory)
    return {p.name: p.read_bytes() for p in directory.iterdir()}


def tcp_world(backend_name, tmp_path):
    """A TCP-served primary on the chosen storage backend."""
    if backend_name == "sqlite":
        db = create_backend("sqlite", str(tmp_path / "primary.sqlite"))
    else:
        db = create_backend(backend_name)
    clock = Clock()
    clock.set(BASE)
    seed_capacls(db)
    ctx = QueryContext(db=db, clock=clock, caller="root", client="seed",
                       privileged=True)
    execute_query(ctx, "add_user",
                  ["tft", "7777", "/bin/csh", "Torn", "Frame", "", "1",
                   "mitt", "1990"])
    execute_query(ctx, "add_member_to_list", ["moira-admins", "USER", "tft"])
    kdc = KDC(clock)
    kdc.add_principal("tft", "pw")
    server = MoiraServer(db, clock, kdc, journal=Journal(), workers=0)
    transport = TcpServerTransport(server, port=0).start()
    return SimpleNamespace(db=db, clock=clock, kdc=kdc, server=server,
                           transport=transport)


def tcp_replica(world, name):
    transport = world.transport
    return ReplicaServer(
        world.clock,
        feed_factory=lambda: connect_tcp(*transport.address),
        kdc=world.kdc, name=name,
        feed_credentials=repl_creds(world.kdc))


def admin_client(world):
    from repro.client.lib import MoiraClient
    client = MoiraClient(tcp_address=world.transport.address,
                         kdc=world.kdc,
                         credentials=world.kdc.kinit("tft", "pw"),
                         clock=world.clock)
    client.connect().auth("test")
    return client


# -- transport lifecycle -------------------------------------------------------


class TestTransportLifecycle:
    def test_ephemeral_port_is_readable_before_start(self):
        transport = TcpServerTransport(_NullDispatcher(), port=0)
        try:
            assert transport.port > 0
            assert transport.port == transport.address[1]
        finally:
            transport.stop()

    def test_stop_is_idempotent_and_joins_the_thread(self):
        transport = TcpServerTransport(_NullDispatcher(), port=0).start()
        assert transport._thread is not None
        transport.stop()
        assert transport._thread is None
        transport.stop()    # second (and third) call: no-op, no EBADF
        transport.stop()

    def test_double_start_reuses_the_serve_thread(self):
        transport = TcpServerTransport(_NullDispatcher(), port=0)
        try:
            first = transport.start()._thread
            assert transport.start()._thread is first
        finally:
            transport.stop()

    def test_start_after_stop_raises(self):
        transport = TcpServerTransport(_NullDispatcher(), port=0)
        transport.stop()
        with pytest.raises(RuntimeError):
            transport.start()


# -- torn TCP frames mid-tail --------------------------------------------------


class TestTornTcpFrames:
    """A feed pull whose reply stream tears mid-frame applies nothing."""

    N = 6

    @pytest.mark.parametrize("backend_name", ["memory", "sqlite"])
    @pytest.mark.parametrize("fraction", [0.35, 0.75])
    def test_torn_tail_is_atomic_then_recoverable(self, backend_name,
                                                  fraction, tmp_path):
        world = tcp_world(backend_name, tmp_path)
        proxies = []
        try:
            victim = tcp_replica(world, "victim")
            sizer = tcp_replica(world, "sizer")
            victim.sync_snapshot()
            sizer.sync_snapshot()

            client = admin_client(world)
            for i in range(1, self.N + 1):
                world.clock.set(BASE + 100 + i)
                client.query("add_machine",
                             f"TORNFRAME{i}.MIT.EDU", "VAX")
            client.close()

            # size the stream: one full pull through a counting proxy
            meter = _CuttingProxy(world.transport.address)
            proxies.append(meter)
            sizer.retarget(lambda: connect_tcp(*meter.address),
                           credentials=repl_creds(world.kdc))
            sizer.step()
            assert sizer.applied_seq == self.N
            assert meter.server_bytes > 0

            # the torn run: cut mid-stream at *fraction* of those bytes
            budget = max(1, int(meter.server_bytes * fraction))
            cutter = _CuttingProxy(world.transport.address, budget=budget)
            proxies.append(cutter)
            victim.retarget(lambda: connect_tcp(*cutter.address),
                            credentials=repl_creds(world.kdc))
            with pytest.raises((MoiraError, OSError)):
                victim.step()
            assert cutter.cuts == 1
            # atomicity: the torn stream applied nothing at all
            assert victim.applied_seq == 0

            # retarget past the fault: full catch-up, byte-identical
            victim.retarget(
                lambda: connect_tcp(*world.transport.address),
                credentials=repl_creds(world.kdc))
            victim.step()
            assert victim.applied_seq == self.N
            assert dump(victim.db, tmp_path / "replica") == \
                dump(world.db, tmp_path / "primary")
        finally:
            for proxy in proxies:
                proxy.stop()
            world.transport.stop()
            close = getattr(world.db, "close", None)
            if callable(close):
                close()


# -- the TCP topology ----------------------------------------------------------


class TestTcpTopology:
    @pytest.fixture()
    def world(self):
        d = AthenaDeployment(DeploymentConfig(
            population=PopulationSpec(**SMALL),
            replicas=2, server_workers=0,
            staleness_budget=0.05, replica_tcp=True,
            faults=FaultInjector()))
        yield d
        d.replica_cluster.stop()
        d.server.shutdown()

    def test_router_reads_and_writes_flow_over_sockets(self, world):
        cluster = world.replica_cluster
        assert cluster.primary_transport is not None
        assert len(cluster.replica_transports) == 2
        admin = world.handles.logins[0]
        world.make_admin(admin)
        rs = world.replica_set_client(admin)
        rs.query("add_machine", "TCPRTR.MIT.EDU", "VAX")
        for _ in range(4):
            rows = rs.query("get_machine", "TCPRTR.MIT.EDU")
            assert rows[0][0] == "TCPRTR.MIT.EDU"
        stats = rs.stats()
        assert stats["writes"] == 1
        assert stats["reads_replica"] == 4
        rs.close()

    def test_feed_auth_is_enforced_on_the_wire(self, world):
        address = world.replica_cluster.primary_transport.address
        conn = connect_tcp(*address)
        try:
            # status probe stays open (how routers find the primary)...
            replies = conn.call(MajorRequest.QUERY, ["_repl_status"])
            assert replies[-1].code == 0
            # ...but snapshot/tail pulls demand the repl principal
            for query in (["_repl_tail", "0"], ["_repl_snapshot"]):
                replies = conn.call(MajorRequest.QUERY, query)
                assert replies[-1].code == MR_PERM
        finally:
            conn.close()

    def test_kill_promote_reroute_over_tcp(self, world):
        """The E17 shape: transport.stop() is the kill, the coordinator
        fences + promotes, and the router re-routes the retried write."""
        cluster = world.replica_cluster
        admin = world.handles.logins[0]
        world.make_admin(admin)
        rs = world.replica_set_client(admin)
        rs.query("add_machine", "PREKILL.MIT.EDU", "VAX")
        cluster.sync_all()

        cluster.primary_transport.stop()    # the kill

        coordinator = cluster.coordinator()
        candidate = cluster.replicas[0]
        record = coordinator.promote(
            candidate,
            feed_factory=cluster.feed_factory_for(candidate),
            credentials=cluster.feed_credentials(),
            catch_up_feed=False)
        assert record.epoch == 2
        assert candidate.role == "primary"

        # the write that hits the dead address fails (the router cannot
        # prove it never committed), but the failover re-points the
        # primary slot so the client's retry lands on the new primary
        with pytest.raises(MoiraError):
            rs.query("add_machine", "POSTKILL.MIT.EDU", "VAX")
        assert rs.stats()["failovers"] == 1
        rs.query("add_machine", "POSTKILL.MIT.EDU", "VAX")

        # zero loss + read-your-writes on the survivor tier
        for name in ("PREKILL.MIT.EDU", "POSTKILL.MIT.EDU"):
            rows = rs.query("get_machine", name)
            assert rows[0][0] == name
        survivor = cluster.replicas[1]
        assert survivor.epoch == record.epoch
        rs.close()
