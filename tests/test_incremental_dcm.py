"""The incremental DCM pipeline: data versions, changed-row logs, the
shared extraction cache, incremental generation, and parallel
propagation (determinism + paper semantics under concurrency)."""

from __future__ import annotations

import pytest

from repro.core import AthenaDeployment, DeploymentConfig
from repro.db.engine import Column, Database, Table
from repro.dcm.generators.base import GenContext, get_generator
from repro.workload import PopulationSpec

SMALL = PopulationSpec(users=40, unregistered_users=5, nfs_servers=3,
                       maillists=8, clusters=3, machines_per_cluster=2,
                       printers=5, network_services=12)


def make_deployment(**overrides) -> AthenaDeployment:
    return AthenaDeployment(DeploymentConfig(population=SMALL,
                                             **overrides))


@pytest.fixture
def deployment():
    return make_deployment()


def service_row(d, name):
    return d.db.table("servers").select({"name": name})[0]


def host_rows(d, name):
    return d.db.table("serverhosts").select({"service": name})


def simple_table(**kwargs) -> Table:
    return Table(
        "things",
        [Column("name", str, max_len=32), Column("value", int)],
        indexes=["name"],
        **kwargs)


# -- change tracking in the engine ---------------------------------------------


class TestDataVersions:
    def test_insert_update_delete_bump(self):
        t = simple_table()
        assert t.version == 0
        row = t.insert({"name": "a", "value": 1})
        assert t.version == 1
        t.update_rows([row], {"value": 2})
        assert t.version == 2
        t.delete_rows([row])
        assert t.version == 3

    def test_touch_stats_false_does_not_bump(self):
        """DCM bookkeeping writes are not data changes — the paper's
        modtimes "refer only to modification by a user, not by the
        DCM", and the version vector keeps that property."""
        t = simple_table()
        row = t.insert({"name": "a", "value": 1})
        before = t.version
        t.update_rows([row], {"value": 9}, touch_stats=False)
        assert t.version == before

    def test_bulk_delete_bumps_per_row(self):
        t = simple_table()
        rows = [t.insert({"name": f"n{i}", "value": i})
                for i in range(5)]
        before = t.version
        assert t.delete_rows(rows[1:4]) == 3
        assert t.version == before + 3
        assert [r["name"] for r in t.rows] == ["n0", "n4"]
        # indexes stay consistent after the one-pass delete
        assert t.select({"name": "n4"})[0]["value"] == 4
        assert t.select({"name": "n2"}) == []

    def test_database_versions_vector(self):
        db = Database()
        db.create_table(simple_table())
        assert db.versions()["things"] == 0
        db.table("things").insert({"name": "a", "value": 1})
        vec = db.versions()
        assert vec["things"] == 1


class TestChangelog:
    def test_changes_since_replays_ops(self):
        t = simple_table(changelog=16)
        row = t.insert({"name": "a", "value": 1})
        v1 = t.version
        t.update_rows([row], {"value": 2})
        t.delete_rows([row])
        log = t.changes_since(v1)
        assert [c.op for c in log] == ["update", "delete"]
        assert log[0].before["value"] == 1
        assert log[0].after["value"] == 2
        assert log[1].after is None

    def test_no_changes_is_empty_list(self):
        t = simple_table(changelog=16)
        t.insert({"name": "a", "value": 1})
        assert t.changes_since(t.version) == []

    def test_overflow_reports_gap(self):
        t = simple_table(changelog=4)
        for i in range(8):
            t.insert({"name": f"n{i}", "value": i})
        # version 1's successors have been evicted -> None, not a lie
        assert t.changes_since(1) is None
        # but the still-logged suffix replays fine
        assert len(t.changes_since(t.version - 3)) == 3

    def test_disabled_log_returns_none(self):
        t = simple_table()
        t.insert({"name": "a", "value": 1})
        assert t.changes_since(0) is None

    def test_clear_empties_log(self):
        t = simple_table(changelog=16)
        t.insert({"name": "a", "value": 1})
        v = t.version
        t.clear()
        assert t.version == v + 1
        assert t.changes_since(v) is None  # clear is not replayable


class TestPrefixFastPath:
    def test_prefix_wildcard_uses_index(self):
        t = simple_table()
        for i in range(50):
            t.insert({"name": f"churn{i:02d}", "value": i})
        t.insert({"name": "other", "value": 99})
        got = t.select({"name": "churn1*"})
        assert sorted(r["name"] for r in got) == \
            [f"churn1{i}" for i in range(10)]

    def test_fold_case_prefix(self):
        t = Table(
            "machines",
            [Column("name", str, max_len=32, fold_case=True)],
            indexes=["name"])
        t.insert({"name": "CHURN1.MIT.EDU"})
        t.insert({"name": "churn2.mit.edu"})
        t.insert({"name": "OTHER.MIT.EDU"})
        assert len(t.select({"name": "churn*"})) == 2
        assert len(t.select({"name": "CHURN*"})) == 2

    def test_non_prefix_wildcards_still_work(self):
        t = simple_table()
        t.insert({"name": "alpha", "value": 1})
        t.insert({"name": "beta", "value": 2})
        assert len(t.select({"name": "*a"})) == 2
        assert len(t.select({"name": "a*a"})) == 1

    def test_prefix_results_match_full_scan(self):
        t = simple_table()
        names = ["ab", "abc", "abd", "b", "a", "ab1"]
        for i, name in enumerate(names):
            t.insert({"name": name, "value": i})
        fast = {r["name"] for r in t.select({"name": "ab*"})}
        slow = {n for n in names if n.startswith("ab")}
        assert fast == slow


# -- the shared extraction cache ----------------------------------------------


class TestSharedGenContext:
    def test_for_service_shares_memo(self, deployment):
        d = deployment
        ctx = GenContext(d.db, d.clock.now())
        a = ctx.for_service(hosts=[])
        b = ctx.for_service(hosts=[])
        assert a.active_users is b.active_users
        assert a.members_by_list is b.members_by_list

    def test_cycle_extracts_users_once(self, deployment):
        """One cycle with all services due derives the active-user map
        exactly once, however many generators consume it."""
        d = deployment
        d.clock.advance(25 * 3600)  # every service is now due at once
        calls = {"n": 0}
        users = d.db.table("users")
        original = users.select

        def counting(*args, **kwargs):
            if args and args[0] == {"status": 1}:
                calls["n"] += 1
            return original(*args, **kwargs)

        users.select = counting
        try:
            report = d.dcm.run_once()
        finally:
            users.select = original
        assert report.generations == 4
        assert calls["n"] == 1


# -- version-vector change detection -------------------------------------------


class TestVectorNoChange:
    def test_quiet_cycle_reports_no_change(self, deployment):
        d = deployment
        d.run_hours(25)
        report = None
        d.clock.advance(7 * 3600)
        report = d.dcm.run_once()
        assert report.generations == 0
        assert "HESIOD" in report.no_change_services

    def test_machine_change_reruns_only_dependents(self, deployment):
        """A machine-only change regenerates HESIOD and MAIL (which
        declare ``machine``) and leaves NFS and ZEPHYR untouched."""
        d = deployment
        d.run_hours(25)
        d.direct_client().query("add_machine", "NEWBOX.MIT.EDU", "VAX")
        d.clock.advance(25 * 3600)
        report = d.dcm.run_once()
        assert set(report.generated_services) == {"HESIOD", "MAIL"}
        assert set(report.no_change_services) == {"NFS", "ZEPHYR"}

    def test_dcm_bookkeeping_does_not_dirty_vectors(self, deployment):
        """The host-scan's serverhosts flag writes must not make NFS
        (which declares ``serverhosts``) look changed next cycle."""
        d = deployment
        d.run_hours(13)  # NFS generated + propagated (flag writes)
        dfgen = service_row(d, "NFS")["dfgen"]
        d.run_hours(13)
        assert service_row(d, "NFS")["dfgen"] == dfgen


# -- incremental generation -----------------------------------------------------


class TestIncrementalHesiod:
    def test_user_change_patches_user_files(self, deployment):
        d = deployment
        d.run_hours(7)
        login = d.handles.logins[0]
        d.direct_client().query("update_user_shell", login, "/bin/tcsh")
        d.clock.advance(7 * 3600)
        report = d.dcm.run_once()
        assert "HESIOD" in report.generated_services
        assert report.generations_incremental == 1
        result = d.dcm._generated["HESIOD"]
        assert set(result.meta["files_patched"]) == \
            {"passwd.db", "pobox.db", "uid.db"}
        assert "grplist.db" in result.meta["files_rebuilt"]

    def test_incremental_bytes_match_full_generate(self, deployment):
        d = deployment
        d.run_hours(7)
        client = d.direct_client()
        logins = d.handles.logins
        client.query("update_user_shell", logins[0], "/bin/tcsh")
        client.query("update_user_status", logins[1], "0")  # deactivate
        d.clock.advance(7 * 3600)
        report = d.dcm.run_once()
        assert report.generations_incremental == 1
        patched = d.dcm._generated["HESIOD"]
        generator = get_generator("HESIOD")
        full = generator.generate(GenContext(d.db, d.clock.now()))
        assert patched.files == full.files

    def test_machine_change_rebuilds_without_patch(self, deployment):
        d = deployment
        d.run_hours(7)
        d.direct_client().query("add_machine", "NEWBOX.MIT.EDU", "VAX")
        d.clock.advance(7 * 3600)
        d.dcm.run_once()
        result = d.dcm._generated["HESIOD"]
        # machine-backed files rebuilt; user-keyed files untouched
        assert result.meta["files_patched"] == []
        assert "cluster.db" in result.meta["files_rebuilt"]
        assert "passwd.db" not in result.meta["files_rebuilt"]
        full = get_generator("HESIOD").generate(
            GenContext(d.db, d.clock.now()))
        assert result.files == full.files


# -- parallel propagation -------------------------------------------------------


def snapshot_host_files(d) -> dict[str, dict[str, bytes]]:
    out = {}
    for name, host in d.hosts.items():
        out[name] = {path: host.fs.read(path)
                     for path in host.fs.listdir("/")
                     if host.fs.exists(path)}
    return out


class TestParallelPropagation:
    def test_parallel_matches_sequential(self):
        """Same seed, sequential vs 8-wide pool: byte-identical host
        files and identical report counters."""
        seq = make_deployment(push_pool_width=1)
        par = make_deployment(push_pool_width=8)
        seq.clock.advance(25 * 3600)  # everything due in one cycle
        par.clock.advance(25 * 3600)
        r1 = seq.dcm.run_once()
        r2 = par.dcm.run_once()
        assert r1.propagations_succeeded > 0
        assert (r1.propagations_attempted, r1.propagations_succeeded,
                r1.soft_failures, r1.hard_failures) == \
            (r2.propagations_attempted, r2.propagations_succeeded,
             r2.soft_failures, r2.hard_failures)
        assert r1.bytes_propagated == r2.bytes_propagated
        assert snapshot_host_files(seq) == snapshot_host_files(par)

    def test_parallel_full_cycle_counters(self):
        d = make_deployment(push_pool_width=8)
        d.clock.advance(25 * 3600)
        report = d.dcm.run_once()
        # 1 hesiod + 3 nfs + 1 mailhub + 3 zephyr hosts
        total_hosts = sum(len(host_rows(d, s))
                          for s in ("HESIOD", "NFS", "MAIL", "ZEPHYR"))
        assert report.propagations_succeeded == total_hosts
        for s in ("HESIOD", "NFS", "MAIL", "ZEPHYR"):
            assert all(h["success"] == 1 for h in host_rows(d, s))

    def test_replicated_poisoning_under_concurrency(self):
        """A replicated hard failure still poisons the service with an
        8-wide pool; exactly one host records the hard error."""
        d = make_deployment(push_pool_width=8)
        first_zephyr = d.handles.zephyr_machines[0]
        d.daemons[first_zephyr].register_command(
            "install_zephyr_acls", lambda: 1)
        d.run_hours(25)
        assert service_row(d, "ZEPHYR")["harderror"] != 0
        failed = [h for h in host_rows(d, "ZEPHYR")
                  if h["hosterror"] != 0]
        assert len(failed) == 1
        # zephyrgram + mail fired exactly once for the one hard failure
        assert sum(1 for n in d.notifications
                   if n[0] == "MOIRA" and n[1] == "DCM") == 1

    def test_poisoned_service_not_retried(self):
        d = make_deployment(push_pool_width=8)
        first_zephyr = d.handles.zephyr_machines[0]
        d.daemons[first_zephyr].register_command(
            "install_zephyr_acls", lambda: 1)
        d.run_hours(25)
        tried = {h["mach_id"]: h["ltt"]
                 for h in host_rows(d, "ZEPHYR")}
        d.run_hours(25)
        assert {h["mach_id"]: h["ltt"]
                for h in host_rows(d, "ZEPHYR")} == tried


class TestLegacyPipeline:
    def test_legacy_mode_still_converges(self):
        d = make_deployment(legacy_dcm=True)
        d.run_hours(25)
        for s in ("HESIOD", "NFS", "MAIL", "ZEPHYR"):
            assert all(h["success"] == 1 for h in host_rows(d, s))

    def test_legacy_matches_new_pipeline_bytes(self):
        old = make_deployment(legacy_dcm=True)
        new = make_deployment()
        old.run_hours(25)
        new.run_hours(25)
        assert snapshot_host_files(old) == snapshot_host_files(new)
