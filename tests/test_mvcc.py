"""MVCC snapshot-isolation tests: consistent cuts under concurrent
writers, read-your-writes, closure/plan-cache correctness against
pinned snapshots, version GC, and the observability counters."""

from __future__ import annotations

import threading

import pytest

from repro.core import AthenaDeployment, DeploymentConfig
from repro.db.schema import build_database
from repro.workload import PopulationSpec


@pytest.fixture(scope="module")
def world():
    d = AthenaDeployment(DeploymentConfig(population=PopulationSpec(
        users=30, unregistered_users=0, nfs_servers=2, maillists=6,
        clusters=1, machines_per_cluster=2, printers=2,
        network_services=4)))
    admin = d.handles.logins[0]
    d.make_admin(admin)
    client = d.client_for(admin, "adminpw", "mvcc-test")
    return d, client


class TestConsistentCut:
    def test_streamed_read_ignores_later_mutations(self):
        """A pinned snapshot drained *after* inserts, updates, and
        deletes still returns exactly the rows visible at pin time."""
        db = build_database()
        t = db.table("machine")
        for i in range(20):
            t.insert({"name": f"CUT{i}.MIT.EDU", "mach_id": 500 + i,
                      "type": "VAX"})
        expected = [dict(r) for r in t.select({"type": "VAX"})]

        snap = db.pin_snapshot()
        st = snap.table("machine")
        stream = st.iter_select({"type": "VAX"})
        drained = [dict(next(stream)) for _ in range(5)]  # partial drain

        # a writer churns the same table mid-stream
        t.update_rows(t.select({"name": "CUT3.MIT.EDU"}),
                      {"type": "RT"})
        t.delete_rows(t.select({"name": "CUT7.MIT.EDU"}))
        t.insert({"name": "CUTNEW.MIT.EDU", "mach_id": 990,
                  "type": "VAX"})

        drained.extend(dict(r) for r in stream)
        assert drained == expected
        db.unpin_snapshot(snap)

        # a fresh read sees the post-mutation world
        after = {r["name"] for r in t.select({"type": "VAX"})}
        assert "CUT3.MIT.EDU" not in after
        assert "CUT7.MIT.EDU" not in after
        assert "CUTNEW.MIT.EDU" in after

    def test_invariant_reads_under_writer_threads(self):
        """Lock-free readers must never observe a torn transfer:
        writers move quota between two rows keeping the sum constant,
        and every snapshot read of the pair sums to the invariant."""
        db = build_database()
        t = db.table("nfsphys")
        a = t.insert({"nfsphys_id": 1, "mach_id": 1, "dir": "/a",
                      "allocated": 5000, "size": 10_000})
        b = t.insert({"nfsphys_id": 2, "mach_id": 1, "dir": "/b",
                      "allocated": 5000, "size": 10_000})
        total = a["allocated"] + b["allocated"]
        stop = threading.Event()
        torn: list[int] = []

        def writer():
            delta = 1
            while not stop.is_set():
                with db.lock:
                    t.update_rows([a],
                                  {"allocated": a["allocated"] - delta})
                    t.update_rows([b],
                                  {"allocated": b["allocated"] + delta})
                delta = -delta

        def reader():
            for _ in range(400):
                snap = db.pin_snapshot()
                try:
                    rows = snap.table("nfsphys").select({"mach_id": 1})
                    seen = sum(r["allocated"] for r in rows)
                    if seen != total:
                        torn.append(seen)
                finally:
                    db.unpin_snapshot(snap)

        w = threading.Thread(target=writer)
        readers = [threading.Thread(target=reader) for _ in range(4)]
        w.start()
        for r in readers:
            r.start()
        for r in readers:
            r.join(timeout=60)
        stop.set()
        w.join(timeout=60)
        assert not torn, f"torn reads observed: {torn[:5]}"

    def test_server_stream_vs_concurrent_writer(self, world):
        """A streamed server read drained alongside a committed write
        on another connection returns the pre-write row set."""
        d, client = world
        direct = d.direct_client()
        for k in range(6):
            direct.query("add_machine", f"STREAM{k}.MIT.EDU", "RT")
        from repro.protocol.wire import MajorRequest, encode_request
        conn_id = d.server.open_connection("mvcc-stream")
        d.server._connections[conn_id].principal = d.handles.logins[0]
        frame = encode_request(MajorRequest.QUERY,
                               ["get_machine", "STREAM*.MIT.EDU"])[4:]
        stream = d.server.handle_frame_stream(conn_id, frame)
        first = next(stream)  # the read has pinned its snapshot
        direct.query("add_machine", "STREAM9.MIT.EDU", "RT")
        rest = list(stream)
        replies = [first] + rest
        # 6 tuples + final status; the mid-stream commit is invisible
        assert len(replies) == 7
        assert not any(b"STREAM9" in r for r in replies)
        rows = client.query("get_machine", "STREAM*.MIT.EDU")
        assert len(rows) == 7  # a fresh read sees the new machine
        d.server.close_connection(conn_id)


class TestReadYourWrites:
    def test_same_connection_sees_own_mutation(self, world):
        d, client = world
        client.query("add_machine", "RYW1.MIT.EDU", "VAX")
        rows = client.query("get_machine", "RYW1.MIT.EDU")
        assert rows[0][0] == "RYW1.MIT.EDU"

    def test_direct_library_sees_own_mutation(self, world):
        d, _ = world
        direct = d.direct_client()
        direct.query("add_machine", "RYW2.MIT.EDU", "RT")
        rows = direct.query("get_machine", "RYW2.MIT.EDU")
        assert rows[0][0] == "RYW2.MIT.EDU"


class TestClosureAndPlansUnderSnapshots:
    def test_closure_mutation_invisible_to_pinned_snapshot(self, world):
        """members changes after the pin must not leak into snapshot
        membership answers (the closure index is newer than the
        snapshot, so it falls back to walking the snapshot's rows)."""
        d, client = world
        direct = d.direct_client()
        login = d.handles.logins[3]
        direct.query("add_list", "mvccl", "1", "1", "0", "0", "0",
                     "901", "NONE", "NONE", "mvcc closure list")
        snap = d.db.pin_snapshot()
        try:
            direct.query("add_member_to_list", "mvccl", "USER", login)
            # live: membership present
            live = {tuple(r) for r in
                    client.query("get_members_of_list", "mvccl")}
            assert ("USER", login) in live
            # snapshot: still empty
            st = snap.table("members")
            lists = snap.table("list").select({"name": "mvccl"})
            members = st.select({"list_id": lists[0]["list_id"]})
            assert members == []
        finally:
            d.db.unpin_snapshot(snap)

    def test_lists_of_user_consistent_during_membership_churn(self, world):
        """get_lists_of_member through the server while members churn:
        every reply is internally consistent (the closure either
        answers at the snapshot seq or the walk fallback does)."""
        d, client = world
        direct = d.direct_client()
        login = d.handles.logins[4]
        direct.query("add_list", "churn", "1", "1", "0", "0", "0",
                     "902", "NONE", "NONE", "churn list")
        errors: list[Exception] = []
        stop = threading.Event()

        def churn():
            flip = True
            while not stop.is_set():
                try:
                    if flip:
                        direct.query("add_member_to_list", "churn",
                                     "USER", login)
                    else:
                        direct.query("delete_member_from_list", "churn",
                                     "USER", login)
                    flip = not flip
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)
                    return

        w = threading.Thread(target=churn)
        w.start()
        try:
            for _ in range(60):
                rows = client.query_maybe("get_lists_of_member",
                                          "USER", login)
                names = {r[0] for r in (rows or [])}
                # the user's personal group is a permanent membership;
                # 'churn' may or may not be present, never garbage
                assert login in names
        finally:
            stop.set()
            w.join(timeout=60)
        assert not errors, errors[:2]

    def test_index_added_while_snapshot_pinned(self):
        """add_index backfills historical windows: a snapshot pinned
        before the index was created still answers correctly through
        the new index structures."""
        db = build_database()
        t = db.table("machine")
        for i in range(8):
            t.insert({"name": f"IDX{i}.MIT.EDU", "mach_id": 700 + i,
                      "type": "VAX" if i % 2 else "RT"})
        snap = db.pin_snapshot()
        before = [dict(r) for r in
                  snap.table("machine").select({"type": "VAX"})]
        t.add_index("type")
        t.insert({"name": "IDXNEW.MIT.EDU", "mach_id": 790,
                  "type": "VAX"})
        again = [dict(r) for r in
                 snap.table("machine").select({"type": "VAX"})]
        assert again == before
        db.unpin_snapshot(snap)
        live = {r["name"] for r in t.select({"type": "VAX"})}
        assert "IDXNEW.MIT.EDU" in live

    def test_fast_path_and_legacy_agree_on_snapshots(self):
        """set_fast_path(False) oracle: snapshot reads answer the same
        with compiled plans and with the per-call legacy path."""
        db = build_database()
        t = db.table("machine")
        for i in range(12):
            t.insert({"name": f"ORA{i}.MIT.EDU", "mach_id": 800 + i,
                      "type": "VAX" if i % 3 else "RT"})
        snap = db.pin_snapshot()
        t.update_rows(t.select({"name": "ORA4.MIT.EDU"}),
                      {"type": "RT"})
        st = snap.table("machine")
        queries = [{"type": "VAX"}, {"name": "ORA*.MIT.EDU"},
                   {"name": "ora1.mit.edu"}, None]
        fast = [st.select(q) for q in queries]
        db.set_fast_path(False)
        try:
            legacy = [st.select(q) for q in queries]
        finally:
            db.set_fast_path(True)
        assert fast == legacy
        db.unpin_snapshot(snap)


class TestVersionGC:
    def test_gc_respects_oldest_pin(self):
        db = build_database()
        t = db.table("machine")
        row = t.insert({"name": "GC1.MIT.EDU", "mach_id": 900,
                        "type": "VAX"})
        snap = db.pin_snapshot()
        for i in range(10):
            t.update_rows([row], {"type": "RT" if i % 2 else "VAX"})
        report = db.gc_versions()
        # the pin holds the horizon back: history since the pin stays
        assert snap.table("machine").select(
            {"name": "GC1.MIT.EDU"})[0]["type"] == "VAX"
        db.unpin_snapshot(snap)
        freed = db.gc_versions()
        assert freed["versions"] > 0
        # live state is untouched by GC
        assert t.select({"name": "GC1.MIT.EDU"})[0]["type"] == "RT"
        assert report["horizon"] <= freed["horizon"]

    def test_checkpoint_triggers_gc(self, tmp_path):
        from repro.db.journal import Journal
        from repro.db.recovery import checkpoint
        db = build_database()
        t = db.table("machine")
        row = t.insert({"name": "GC2.MIT.EDU", "mach_id": 901,
                        "type": "VAX"})
        for i in range(6):
            t.update_rows([row], {"type": "RT" if i % 2 else "VAX"})
        journal = Journal()
        before = db.mvcc_stats()["versions_reclaimed"]
        checkpoint(db, journal, tmp_path / "snap")
        assert db.mvcc_stats()["versions_reclaimed"] > before


class TestObservability:
    def test_query_stats_reports_mvcc_rows(self, world):
        d, client = world
        client.query("get_machine", "RYW1.MIT.EDU")
        rows = client.query("_query_stats")
        by_name = {r[0]: r for r in rows}
        assert "_mvcc.commits" in by_name
        assert int(by_name["_mvcc.snapshots_pinned"][1]) > 0
        assert int(by_name["_mvcc.pins_active"][1]) == 0
        handle = by_name["get_machine"]
        # 12-column row: rows_scanned/returned and snap-age quantiles
        assert len(handle) == 12
        assert int(handle[8]) >= int(handle[9]) > 0
        # MVCC reads never touch the lock: writer-only histogram
        assert int(by_name["get_machine"][5]) == 0

    def test_set_mvcc_toggle_round_trip(self):
        db = build_database()
        t = db.table("machine")
        t.insert({"name": "TOG1.MIT.EDU", "mach_id": 950,
                  "type": "VAX"})
        db.set_mvcc(False)
        assert not db.mvcc_enabled
        t.insert({"name": "TOG2.MIT.EDU", "mach_id": 951,
                  "type": "VAX"})
        db.set_mvcc(True)
        snap = db.pin_snapshot()
        names = {r["name"] for r in
                 snap.table("machine").select({"type": "VAX"})}
        db.unpin_snapshot(snap)
        assert {"TOG1.MIT.EDU", "TOG2.MIT.EDU"} <= names
