"""Uid-range user sub-shards: partition math, lock expansion, the
row-bucket guard, disjoint-bucket concurrency, and query routing.

``user_subshards=N`` replaces the ``users`` writer lock with N bucket
locks keyed by contiguous 64-uid ranges.  These tests pin the engine
contract the E16 storm relies on: only touched buckets are locked,
foreign-bucket writes are loud errors (never silent corruption), the
umbrella still means total ``users`` exclusion, and the write path
routes single-user queries to exactly one bucket.
"""

from __future__ import annotations

import threading

import pytest

from repro.core import AthenaDeployment, DeploymentConfig
from repro.db.backup import mrbackup
from repro.db.engine import ShardPartition
from repro.db.recovery import checkpoint, recover
from repro.db.schema import USER_SUBSHARD_SPAN, build_database
from repro.errors import MoiraError, MR_INTERNAL
from repro.queries.base import get_query
from repro.server.write_batch import shards_for
from repro.workload import PopulationSpec


def make_db(buckets=2):
    db = build_database(user_subshards=buckets)
    users = db.table("users")
    # one user per bucket: uid n*span lands in bucket n (mod count)
    for n in range(buckets):
        users.insert({"login": f"bkt{n}", "users_id": 9000 + n,
                      "uid": n * USER_SUBSHARD_SPAN, "status": 1,
                      "shell": "/bin/sh"}, now=0)
    return db


class TestPartitionMath:
    def test_bucket_and_lock_names(self):
        part = ShardPartition("users", 4, table="users", column="uid",
                              span=64)
        assert part.bucket(0) == 0
        assert part.bucket(63) == 0
        assert part.bucket(64) == 1
        assert part.bucket(64 * 5) == 1      # wraps mod count
        assert part.lock_names() == ("users/0", "users/1", "users/2",
                                     "users/3")

    def test_count_floor(self):
        with pytest.raises(ValueError):
            ShardPartition("users", 1, table="users", column="uid")


class TestLockExpansion:
    def test_bucket_locks_replace_the_logical_lock(self):
        db = make_db(4)
        names = set(db._shard_locks)
        assert {"users/0", "users/1", "users/2", "users/3"} <= names
        assert "users" not in names

    def test_umbrella_expands_to_every_bucket(self):
        db = make_db(4)
        assert db.expand_shards(["users"]) == (
            "users/0", "users/1", "users/2", "users/3")
        assert db.expand_shards(["users/2"]) == ("users/2",)
        assert db.expand_shards(["machines"]) == ("machines",)

    def test_unknown_shard_is_loud(self):
        db = make_db(2)
        with pytest.raises(MoiraError):
            db.expand_shards(["users/9"])


class TestRowGuard:
    def test_own_bucket_write_is_allowed(self):
        db = make_db(2)
        users = db.table("users")
        with db.shard_txn(["users/0"]):
            row = users.select({"login": "bkt0"})[0]
            users.update_rows([row], {"shell": "/bin/csh"}, now=1)
        assert users.select({"login": "bkt0"})[0]["shell"] == "/bin/csh"

    def test_foreign_bucket_write_is_mr_internal(self):
        db = make_db(2)
        users = db.table("users")
        with pytest.raises(MoiraError) as err:
            with db.shard_txn(["users/0"]):
                row = users.select({"login": "bkt1"})[0]
                users.update_rows([row], {"shell": "/bin/csh"}, now=1)
        assert err.value.code == MR_INTERNAL
        # and the abort undid nothing it should not have
        assert users.select({"login": "bkt1"})[0]["shell"] == "/bin/sh"

    def test_uid_change_requires_the_umbrella(self):
        db = make_db(2)
        users = db.table("users")
        with pytest.raises(MoiraError) as err:
            with db.shard_txn(["users/0"]):
                row = users.select({"login": "bkt0"})[0]
                users.update_rows([row], {"uid": 7}, now=1)
        assert err.value.code == MR_INTERNAL
        with db.shard_txn(["users"]):    # umbrella: re-bucketing OK
            row = users.select({"login": "bkt0"})[0]
            users.update_rows([row], {"uid": 7}, now=1)
        assert users.select({"login": "bkt0"})[0]["uid"] == 7

    def test_umbrella_touches_every_bucket(self):
        db = make_db(2)
        users = db.table("users")
        with db.shard_txn(["users"]):
            for login in ("bkt0", "bkt1"):
                row = users.select({"login": login})[0]
                users.update_rows([row], {"shell": "/bin/csh"}, now=1)
        assert all(r["shell"] == "/bin/csh" for r in users.select())


class TestDisjointBucketConcurrency:
    def test_disjoint_buckets_overlap(self):
        """A users/1 writer runs its body while users/0 is held — the
        whole point of sub-sharding.  (Commits still *publish* in seq
        order, so the earlier transaction is released from inside the
        later one's body, before its commit reaches the gate.)"""
        db = make_db(2)
        users = db.table("users")
        holding = threading.Event()
        release = threading.Event()
        failures: list[BaseException] = []

        def bucket0() -> None:
            try:
                with db.shard_txn(["users/0"]):
                    row = users.select({"login": "bkt0"})[0]
                    users.update_rows([row], {"shell": "/bin/a"}, now=1)
                    holding.set()
                    assert release.wait(timeout=30)
            except BaseException as exc:  # pragma: no cover
                failures.append(exc)

        t = threading.Thread(target=bucket0)
        t.start()
        assert holding.wait(timeout=30)
        # acquiring users/1 and running the body must not block on the
        # users/0 holder — both bodies are in flight at release.set()
        with db.shard_txn(["users/1"]):
            row = users.select({"login": "bkt1"})[0]
            users.update_rows([row], {"shell": "/bin/b"}, now=1)
            release.set()
        t.join(timeout=30)
        assert not failures, failures
        assert users.select({"login": "bkt0"})[0]["shell"] == "/bin/a"
        assert users.select({"login": "bkt1"})[0]["shell"] == "/bin/b"

    def test_commit_publication_stays_seq_ordered(self):
        """Concurrent bucket commits publish (and would journal) in
        commit-seq order — PR 7's gate survives partitioning."""
        db = make_db(4)
        users = db.table("users")
        published: list[int] = []
        gate = threading.Barrier(4)
        failures: list[BaseException] = []

        def writer(n: int) -> None:
            try:
                gate.wait(timeout=30)
                for _ in range(25):
                    with db.shard_txn(
                            [f"users/{n}"],
                            commit_hook=lambda txn:
                            published.append(txn.seq)):
                        row = users.select({"login": f"bkt{n}"})[0]
                        users.update_rows([row], {"shell": f"/b{n}"},
                                          now=1)
            except BaseException as exc:  # pragma: no cover
                failures.append(exc)

        threads = [threading.Thread(target=writer, args=(n,))
                   for n in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not failures, failures
        assert len(published) == 100
        assert published == sorted(published)


class TestRouting:
    def _db_with_population(self):
        db = build_database(user_subshards=2)
        load = __import__("repro.workload", fromlist=["load_population"])
        load.load_population(db, PopulationSpec(
            users=80, unregistered_users=5, nfs_servers=2, maillists=5,
            clusters=2, machines_per_cluster=2, printers=2,
            network_services=5))
        return db

    def test_single_user_queries_route_to_one_bucket(self):
        db = self._db_with_population()
        users = db.table("users")
        for query_name in ("update_user_shell", "update_user_status",
                           "update_finger_by_login"):
            query = get_query(query_name)
            for row in users.select()[:8]:
                found = shards_for(db, query, [row["login"], "x"])
                bucket = (row["uid"] // USER_SUBSHARD_SPAN) % 2
                assert found == frozenset({f"users/{bucket}"}), (
                    query_name, row["login"])

    def test_unresolvable_key_takes_the_umbrella(self):
        db = self._db_with_population()
        query = get_query("update_user_shell")
        found = shards_for(db, query, ["no-such-login", "/bin/sh"])
        assert found == frozenset({"users"})
        assert db.expand_shards(found) == ("users/0", "users/1")


class TestDeploymentReplay:
    def test_subshard_writes_replay_byte_identically(self, tmp_path):
        """checkpoint + WAL replay of sub-sharded writes rebuilds the
        primary exactly — recovery code never sees bucket names."""
        d = AthenaDeployment(DeploymentConfig(
            population=PopulationSpec(users=80, unregistered_users=5,
                                      nfs_servers=2, maillists=5,
                                      clusters=2, machines_per_cluster=2,
                                      printers=2, network_services=5),
            server_workers=0,
            wal_path=tmp_path / "wal",
            write_shards=True,
            user_subshards=2,
        ))
        admin = d.handles.logins[-1]
        d.make_admin(admin)
        checkpoint(d.db, d.journal, tmp_path / "snap")
        client = d.direct_client(admin)
        for i, login in enumerate(d.handles.logins[:24]):
            client.query("update_user_shell", login,
                         ["/bin/sh", "/bin/csh"][i % 2])
        d.server.shutdown()

        def dump(db, tag):
            directory = tmp_path / tag
            mrbackup(db, directory)
            return {p.name: p.read_bytes()
                    for p in directory.iterdir()}

        rec = recover(tmp_path / "snap", wal_path=tmp_path / "wal")
        assert dump(rec.db, "replayed") == dump(d.db, "primary")
