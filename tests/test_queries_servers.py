"""Tests for servers/serverhosts queries (§7.0.4)."""

from __future__ import annotations

import pytest

from repro.errors import (
    MoiraError,
    MR_IN_USE,
    MR_MACHINE,
    MR_SERVICE,
    MR_TYPE,
)


def expect_error(code, fn, *args):
    with pytest.raises(MoiraError) as exc:
        fn(*args)
    assert exc.value.code == code, exc.value


@pytest.fixture
def svc(run):
    run("add_server_info", "hesiod", 360, "/tmp/h.out", "/bin/h.sh",
        "REPLICAT", 1, "NONE", "NONE")
    run("add_machine", "SUOMI.MIT.EDU", "VAX")
    run("add_server_host_info", "HESIOD", "SUOMI.MIT.EDU", 1, 0, 0, "")
    return "HESIOD"


class TestServerInfo:
    def test_names_uppercased(self, run, svc):
        row = run("get_server_info", "hesiod")[0]
        assert row[0] == "HESIOD"
        assert row[1] == 360
        assert row[6] == "REPLICAT"

    def test_bad_service_type(self, run):
        expect_error(MR_TYPE, run, "add_server_info", "x", 10, "t", "s",
                     "CLUSTERED", 1, "NONE", "NONE")

    def test_update(self, run, svc):
        run("update_server_info", "hesiod", 720, "/tmp/h2.out",
            "/bin/h2.sh", "UNIQUE", 0, "NONE", "NONE")
        row = run("get_server_info", "HESIOD")[0]
        assert row[1] == 720
        assert row[7] == 0

    def test_internal_flags_do_not_touch_modtime(self, run, svc, clock):
        before = run("get_server_info", svc)[0][13]
        clock.advance(500)
        run("set_server_internal_flags", svc, 100, 200, 1, 0, "")
        row = run("get_server_info", svc)[0]
        assert row[4] == 100    # dfgen
        assert row[5] == 200    # dfcheck
        assert row[8] == 1      # inprogress
        assert row[13] == before  # modtime unchanged

    def test_reset_server_error(self, run, svc):
        run("set_server_internal_flags", svc, 100, 200, 0, 1, "boom")
        run("reset_server_error", svc)
        row = run("get_server_info", svc)[0]
        assert row[9] == 0
        assert row[5] == row[4]  # dfcheck snapped back to dfgen

    def test_delete_with_hosts_refused(self, run, svc):
        expect_error(MR_IN_USE, run, "delete_server_info", svc)
        run("delete_server_host_info", svc, "SUOMI.MIT.EDU")
        run("delete_server_info", svc)

    def test_qualified_get_server(self, run, svc):
        run("add_server_info", "broken", 10, "t", "s", "UNIQUE", 1,
            "NONE", "NONE")
        run("set_server_internal_flags", "broken", 0, 0, 0, 1, "err")
        rows = run("qualified_get_server", "TRUE", "DONTCARE", "TRUE")
        assert [r[0] for r in rows] == ["BROKEN"]
        rows = run("qualified_get_server", "TRUE", "FALSE", "FALSE")
        assert [r[0] for r in rows] == ["HESIOD"]


class TestServerHosts:
    def test_add_requires_existing_service_and_machine(self, run, svc):
        expect_error(MR_SERVICE, run, "add_server_host_info", "GHOST",
                     "SUOMI.MIT.EDU", 1, 0, 0, "")
        expect_error(MR_MACHINE, run, "add_server_host_info", svc,
                     "GHOST.MIT.EDU", 1, 0, 0, "")

    def test_values_roundtrip(self, run, svc):
        run("update_server_host_info", svc, "SUOMI.MIT.EDU", 1, 42, 99,
            "slist")
        row = run("get_server_host_info", svc, "SUOMI*")[0]
        assert (row[10], row[11], row[12]) == (42, 99, "slist")

    def test_update_refused_while_inprogress(self, run, svc):
        run("set_server_host_internal", svc, "SUOMI.MIT.EDU", 0, 0, 1, 0,
            "", 0, 0)
        expect_error(MR_IN_USE, run, "update_server_host_info", svc,
                     "SUOMI.MIT.EDU", 1, 0, 0, "")

    def test_delete_refused_while_inprogress(self, run, svc):
        run("set_server_host_internal", svc, "SUOMI.MIT.EDU", 0, 0, 1, 0,
            "", 0, 0)
        expect_error(MR_IN_USE, run, "delete_server_host_info", svc,
                     "SUOMI.MIT.EDU")

    def test_override_flag(self, run, svc):
        run("set_server_host_override", svc, "SUOMI.MIT.EDU")
        row = run("get_server_host_info", svc, "*")[0]
        assert row[3] == 1

    def test_internal_updates_times(self, run, svc):
        run("set_server_host_internal", svc, "SUOMI.MIT.EDU", 0, 1, 0, 0,
            "", 1111, 2222)
        row = run("get_server_host_info", svc, "*")[0]
        assert row[8] == 1111   # lasttry
        assert row[9] == 2222   # lastsuccess
        assert row[4] == 1      # success

    def test_reset_host_error(self, run, svc):
        run("set_server_host_internal", svc, "SUOMI.MIT.EDU", 0, 0, 0,
            55, "bad", 0, 0)
        run("reset_server_host_error", svc, "SUOMI.MIT.EDU")
        row = run("get_server_host_info", svc, "*")[0]
        assert row[6] == 0
        assert row[7] == ""

    def test_qualified_get_server_host(self, run, svc):
        run("add_machine", "KIWI.MIT.EDU", "VAX")
        run("add_server_host_info", svc, "KIWI.MIT.EDU", 1, 0, 0, "")
        run("set_server_host_internal", svc, "KIWI.MIT.EDU", 0, 1, 0, 0,
            "", 10, 10)
        ok = run("qualified_get_server_host", svc, "TRUE", "DONTCARE",
                 "TRUE", "DONTCARE", "DONTCARE")
        assert [r[1] for r in ok] == ["KIWI.MIT.EDU"]
        pending = run("qualified_get_server_host", svc, "TRUE",
                      "DONTCARE", "FALSE", "DONTCARE", "DONTCARE")
        assert [r[1] for r in pending] == ["SUOMI.MIT.EDU"]

    def test_get_server_locations(self, run, svc):
        run("add_machine", "KIWI.MIT.EDU", "VAX")
        run("add_server_host_info", svc, "KIWI.MIT.EDU", 1, 0, 0, "")
        rows = run("get_server_locations", "HES*")
        assert {r[1] for r in rows} == {"SUOMI.MIT.EDU", "KIWI.MIT.EDU"}
