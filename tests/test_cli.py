"""Tests for the ``python -m repro`` command-line front end."""

from __future__ import annotations

import io
import sys

import pytest

from repro.__main__ import main


def run_cli(argv, stdin_text=""):
    out = io.StringIO()
    old_out, old_in = sys.stdout, sys.stdin
    sys.stdout = out
    sys.stdin = io.StringIO(stdin_text)
    try:
        code = main(argv)
    finally:
        sys.stdout = old_out
        sys.stdin = old_in
    return code, out.getvalue()


class TestCli:
    def test_queries_lists_registry(self):
        code, out = run_cli(["queries"])
        assert code == 0
        assert "gubl query  get_user_by_login(login)" in out
        assert "ausr update add_user(" in out
        assert len(out.splitlines()) > 100

    def test_demo_runs_a_cycle(self):
        code, out = run_cli(["--users", "60", "demo"])
        assert code == 0
        assert "hesiod resolves" in out
        assert "mail hub routes" in out

    def test_mrtest_shell(self):
        code, out = run_cli(
            ["--users", "40", "mrtest"],
            stdin_text="_help get_machine\nget_machine *\nquit\n")
        assert code == 0
        assert "gmac" in out
        assert "tuple(s); ok" in out

    def test_mrtest_reports_errors(self):
        code, out = run_cli(["--users", "40", "mrtest"],
                            stdin_text="bogus_query\nq\n")
        assert code == 0
        assert "Unknown query" in out

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            run_cli([])
