"""Tests for the application-library utility routines and menu (§5.6.3)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.client.menu import Menu, MenuSession
from repro.client.utils import (
    HashTable,
    Queue,
    canonicalize_hostname,
    format_flags,
    parse_flags,
    strsave,
    strtrim,
)


class TestStrings:
    def test_strtrim(self):
        assert strtrim("  hello \t\n") == "hello"

    def test_strsave_copies_value(self):
        assert strsave("x") == "x"


class TestCanonicalizeHostname:
    def test_uppercase_and_qualify(self):
        assert canonicalize_hostname("suomi") == "SUOMI.MIT.EDU"

    def test_already_qualified(self):
        assert canonicalize_hostname("kiwi.mit.edu") == "KIWI.MIT.EDU"

    def test_trailing_dot_removed(self):
        assert canonicalize_hostname("kiwi.mit.edu.") == "KIWI.MIT.EDU"

    def test_custom_domain(self):
        assert canonicalize_hostname("eve", domain="pika.mit.edu") == \
            "EVE.PIKA.MIT.EDU"

    def test_empty(self):
        assert canonicalize_hostname("  ") == ""


class TestFlags:
    def test_roundtrip_named_flags(self):
        bits = parse_flags("active,maillist")
        assert format_flags(bits) == "active,maillist"

    def test_zero_is_none(self):
        assert format_flags(0) == "none"
        assert parse_flags("") == 0

    def test_unknown_flag(self):
        with pytest.raises(ValueError):
            parse_flags("sparkly")

    @given(st.integers(0, 31))
    def test_roundtrip_property(self, bits):
        assert parse_flags(format_flags(bits).replace("none", "")) == bits


class TestHashTable:
    def test_store_lookup_remove(self):
        table = HashTable()
        table.store("k", 1)
        assert table.lookup("k") == 1
        assert "k" in table
        assert table.remove("k") == 1
        assert table.lookup("k") is None

    def test_step_visits_all(self):
        table = HashTable()
        for i in range(5):
            table.store(f"k{i}", i)
        seen = []
        table.step(lambda k, v: seen.append((k, v)))
        assert len(seen) == 5

    def test_len(self):
        table = HashTable()
        table.store("a", 1)
        table.store("a", 2)  # overwrite, not duplicate
        assert len(table) == 1


class TestQueue:
    def test_fifo_order(self):
        q = Queue()
        for i in range(3):
            q.enqueue(i)
        assert [q.dequeue() for _ in range(3)] == [0, 1, 2]

    def test_peek_and_empty(self):
        q = Queue()
        assert q.empty()
        q.enqueue("x")
        assert q.peek() == "x"
        assert len(q) == 1
        assert not q.empty()

    def test_underflow(self):
        with pytest.raises(IndexError):
            Queue().dequeue()


class TestMenu:
    def build(self, log):
        root = Menu("Main")
        root.add_action("1", "Say hello",
                        lambda name: log.append(f"hello {name}") or
                        f"hi {name}", ["name"])
        sub = Menu("Sub")
        sub.add_action("1", "Deep action", lambda: log.append("deep"))
        root.add_submenu("2", "Go deeper", sub)
        return root

    def test_render_shows_items(self):
        menu = self.build([])
        text = menu.render()
        assert "Main" in text
        assert "1  Say hello" in text
        assert "2> Go deeper" in text

    def test_action_with_prompted_args(self):
        log = []
        session = MenuSession(self.build(log), inputs=["1", "world", "q"])
        results = session.run()
        assert log == ["hello world"]
        assert results == ["hi world"]
        assert any("name:" in t for t in session.transcript)

    def test_submenu_navigation(self):
        log = []
        session = MenuSession(self.build(log),
                              inputs=["2", "1", "q", "q"])
        session.run()
        assert log == ["deep"]

    def test_unknown_selection_reported(self):
        session = MenuSession(self.build([]), inputs=["9", "q"])
        session.run()
        assert any("unknown selection" in t for t in session.transcript)

    def test_action_error_is_caught(self):
        root = Menu("M")
        root.add_action("1", "Boom",
                        lambda: (_ for _ in ()).throw(ValueError("bad")))
        session = MenuSession(root, inputs=["1", "q"])
        session.run()
        assert any("error: bad" in t for t in session.transcript)

    def test_item_requires_action_or_submenu(self):
        from repro.client.menu import MenuItem
        with pytest.raises(ValueError):
            MenuItem(key="1", title="broken")
