"""System-level property tests.

* Random sequences of mutating queries never violate the mrcheck
  invariants (referential integrity, quota-allocation accounting).
* Random bytes and malformed frames never crash the Moira server.
* Backup round-trips are lossless under arbitrary mutation histories.
* The DCM converges: after any fault schedule heals, every enabled
  host ends up successfully updated.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.apps import MrCheck
from repro.db.backup import mrbackup, mrrestore
from repro.db.schema import build_database
from repro.errors import MoiraError
from repro.queries.base import QueryContext, execute_query
from repro.sim.clock import Clock

NAMES = ["alpha", "beta", "gamma", "delta", "epsilon"]
MACHINES = ["M1.MIT.EDU", "M2.MIT.EDU", "M3.MIT.EDU"]


def op_strategy():
    """One random mutating operation (args may be invalid — that's the
    point: invalid operations must fail cleanly without corruption)."""
    name = st.sampled_from(NAMES)
    machine = st.sampled_from(MACHINES)
    quota = st.integers(-10, 800)
    return st.one_of(
        st.tuples(st.just("add_user"), name),
        st.tuples(st.just("delete_user"), name),
        st.tuples(st.just("add_list"), name),
        st.tuples(st.just("delete_list"), name),
        st.tuples(st.just("add_member"), name, name),
        st.tuples(st.just("delete_member"), name, name),
        st.tuples(st.just("add_machine"), machine),
        st.tuples(st.just("delete_machine"), machine),
        st.tuples(st.just("add_filesys"), name, machine),
        st.tuples(st.just("delete_filesys"), name),
        st.tuples(st.just("add_quota"), name, name, quota),
        st.tuples(st.just("update_quota"), name, name, quota),
        st.tuples(st.just("delete_quota"), name, name),
        st.tuples(st.just("set_pobox"), name, machine),
    )


def apply_op(run, op):
    kind = op[0]
    try:
        if kind == "add_user":
            run("add_user", op[1], -1, "/bin/csh", "L", "F", "", 1, "",
                "1990")
        elif kind == "delete_user":
            run("update_user_status", op[1], 0)
            run("delete_user", op[1])
        elif kind == "add_list":
            run("add_list", f"l-{op[1]}", 1, 1, 0, 1, 1, -1, "NONE",
                "NONE", "")
        elif kind == "delete_list":
            run("delete_list", f"l-{op[1]}")
        elif kind == "add_member":
            run("add_member_to_list", f"l-{op[1]}", "USER", op[2])
        elif kind == "delete_member":
            run("delete_member_from_list", f"l-{op[1]}", "USER", op[2])
        elif kind == "add_machine":
            run("add_machine", op[1], "VAX")
            run("add_nfsphys", op[1], "/u1", "ra81", 1, 0, 5000)
        elif kind == "delete_machine":
            run("delete_nfsphys", op[1], "/u1")
            run("delete_machine", op[1])
        elif kind == "add_filesys":
            run("add_list", f"l-{op[1]}", 1, 1, 0, 1, 1, -1, "NONE",
                "NONE", "")
        elif kind == "delete_filesys":
            run("delete_filesys", f"fs-{op[1]}")
        elif kind == "add_quota":
            run("add_nfs_quota", f"fs-{op[1]}", op[2], op[3])
        elif kind == "update_quota":
            run("update_nfs_quota", f"fs-{op[1]}", op[2], op[3])
        elif kind == "delete_quota":
            run("delete_nfs_quota", f"fs-{op[1]}", op[2])
        elif kind == "set_pobox":
            run("set_pobox", op[1], "POP", op[2])
    except MoiraError:
        pass  # invalid ops must fail *cleanly*


class TestInvariantsUnderRandomWorkloads:
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(op_strategy(), max_size=40))
    def test_mrcheck_always_clean(self, ops):
        db = build_database()
        ctx = QueryContext(db=db, clock=Clock(), caller="root",
                           client="prop", privileged=True)

        def run(name, *args):
            return execute_query(ctx, name, [str(a) for a in args])

        # filesystems need real substrate; create one known-good combo
        run("add_machine", "BASE.MIT.EDU", "VAX")
        run("add_nfsphys", "BASE.MIT.EDU", "/u1", "ra81", 1, 0, 100000)
        for user in NAMES[:2]:
            apply_op(run, ("add_user", user))
        for user in NAMES[:2]:
            try:
                run("add_filesys", f"fs-{user}", "NFS", "BASE.MIT.EDU",
                    f"/u1/{user}", f"/mit/{user}", "w", "", user,
                    "", 1, "HOMEDIR")
            except MoiraError:
                pass

        for op in ops:
            apply_op(run, op)

        assert MrCheck(db).run() == []

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(op_strategy(), max_size=25))
    def test_backup_roundtrip_after_any_history(self, ops):
        import tempfile
        from pathlib import Path
        db = build_database()
        ctx = QueryContext(db=db, clock=Clock(), caller="root",
                           client="prop", privileged=True)

        def run(name, *args):
            return execute_query(ctx, name, [str(a) for a in args])

        run("add_machine", "BASE.MIT.EDU", "VAX")
        run("add_nfsphys", "BASE.MIT.EDU", "/u1", "ra81", 1, 0, 100000)
        for op in ops:
            apply_op(run, op)

        with tempfile.TemporaryDirectory() as tmp:
            mrbackup(db, Path(tmp) / "dump")
            restored = build_database()
            mrrestore(restored, Path(tmp) / "dump")
        for name, table in db.tables.items():
            assert restored.tables[name].rows == table.rows, name


class TestProtocolFuzzing:
    @settings(max_examples=100, deadline=None)
    @given(st.binary(max_size=200))
    def test_random_frames_never_crash_server(self, blob):
        from repro.server import MoiraServer
        from repro.sim.clock import Clock as C

        server = MoiraServer(build_database(), C())
        conn = server.open_connection("fuzz")
        replies = server.handle_frame(conn, blob)
        assert isinstance(replies, list)
        assert replies  # always answers something
        # ...and the server still works afterwards
        from repro.protocol.wire import MajorRequest, encode_request
        ok = server.handle_frame(
            conn, encode_request(MajorRequest.NOOP, [])[4:])
        from repro.protocol.wire import decode_reply
        assert decode_reply(ok[0][4:]).code == 0

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.text(max_size=20), max_size=6))
    def test_random_query_args_fail_cleanly(self, args):
        from repro.server import MoiraServer
        from repro.protocol.wire import (MajorRequest, decode_reply,
                                         encode_request)

        server = MoiraServer(build_database(), Clock())
        conn = server.open_connection("fuzz")
        frame = encode_request(MajorRequest.QUERY,
                               ["update_user_shell", *args])
        replies = server.handle_frame(conn, frame[4:])
        final = decode_reply(replies[-1][4:])
        assert final.code != 0  # unauthenticated mutation always fails


class TestConvergence:
    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(st.sampled_from(["crash_hesiod", "partition_mail",
                                     "corrupt_nfs", "quiet"]),
                    min_size=1, max_size=4))
    def test_dcm_converges_after_faults_heal(self, faults):
        """Whatever faults occur, once they heal every enabled host is
        eventually updated successfully."""
        from repro.core import AthenaDeployment, DeploymentConfig
        from repro.workload import PopulationSpec

        d = AthenaDeployment(DeploymentConfig(population=PopulationSpec(
            users=20, unregistered_users=0, nfs_servers=2, maillists=3,
            clusters=1, machines_per_cluster=1, printers=2,
            network_services=4)))
        for fault in faults:
            if fault == "crash_hesiod":
                d.hosts[d.handles.hesiod_machine].crash()
            elif fault == "partition_mail":
                d.network.partition(d.handles.mailhub_machine)
            elif fault == "corrupt_nfs":
                d.network.set_corrupt_rate(d.handles.nfs_machines[0],
                                           1.0)
            d.run_hours(8)

        # heal everything
        if not d.hosts[d.handles.hesiod_machine].alive:
            d.hosts[d.handles.hesiod_machine].reboot()
        d.network.heal(d.handles.mailhub_machine)
        d.network.heal(d.handles.nfs_machines[0])
        d.run_hours(26)

        for row in d.db.table("serverhosts").rows:
            if row["service"] in ("HESIOD", "NFS", "MAIL", "ZEPHYR"):
                assert row["success"] == 1, (row["service"],
                                             row["hosterrmsg"])
                assert row["hosterror"] == 0
