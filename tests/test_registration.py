"""Tests for the registration server and userreg (§5.10)."""

from __future__ import annotations

import pytest

from repro.core import AthenaDeployment, DeploymentConfig
from repro.errors import (
    MR_ALREADY_REGISTERED,
    MR_BAD_AUTHENTICATOR,
    MR_LOGIN_TAKEN,
    MR_NOT_FOUND,
)
from repro.reg.server import (
    RegError,
    RegistrationServer,
    hash_mit_id,
    make_authenticator,
)
from repro.reg.userreg import UserReg
from repro.workload import PopulationSpec


@pytest.fixture
def world():
    d = AthenaDeployment(DeploymentConfig(population=PopulationSpec(
        users=30, unregistered_users=8, nfs_servers=2, maillists=4,
        clusters=2, machines_per_cluster=2, printers=3,
        network_services=5)))
    reg = RegistrationServer(d.db, d.clock, d.kdc)
    return d, reg, UserReg(reg, d.kdc)


def student(d, index=0):
    return d.handles.unregistered_ids[index]


class TestAuthenticator:
    def test_hash_is_crypt_of_last_seven(self):
        h = hash_mit_id("123-45-6789", "Harmon", "Fowler")
        assert h.startswith("HF")
        assert len(h) == 13
        # hyphens irrelevant
        assert h == hash_mit_id("123456789", "Harmon", "Fowler")

    def test_verify_user_ok(self, world):
        d, reg, _ = world
        first, last, plain = student(d)
        reply = reg.verify_user(first, last,
                                make_authenticator(plain, first, last))
        assert reply.status == 0

    def test_wrong_id_rejected(self, world):
        d, reg, _ = world
        first, last, _ = student(d)
        with pytest.raises(RegError) as exc:
            reg.verify_user(first, last,
                            make_authenticator("111111111", first, last))
        assert exc.value.code == MR_BAD_AUTHENTICATOR

    def test_only_last_seven_digits_significant(self, world):
        """A faithful crypt() quirk: IDs sharing their last 7 digits
        hash identically, so such an ID still verifies."""
        d, reg, _ = world
        first, last, plain = student(d)
        lookalike = "99" + plain[2:]
        assert reg.verify_user(
            first, last,
            make_authenticator(lookalike, first, last)).status == 0

    def test_unknown_student(self, world):
        _, reg, _ = world
        with pytest.raises(RegError) as exc:
            reg.verify_user("No", "Body",
                            make_authenticator("1", "No", "Body"))
        assert exc.value.code == MR_NOT_FOUND

    def test_tampered_authenticator_rejected(self, world):
        d, reg, _ = world
        first, last, plain = student(d)
        blob = bytearray(make_authenticator(plain, first, last))
        blob[4] ^= 0xFF
        with pytest.raises(RegError) as exc:
            reg.verify_user(first, last, bytes(blob))
        assert exc.value.code == MR_BAD_AUTHENTICATOR


class TestGrabLogin:
    def test_grab_creates_account_resources(self, world):
        d, reg, _ = world
        first, last, plain = student(d)
        login = reg.grab_login(
            first, last, make_authenticator(plain, first, last, "frosh"))
        assert login == "frosh"
        client = d.direct_client()
        row = client.query("get_user_by_login", "frosh")[0]
        assert row[6] == "2"  # half-registered
        assert client.query("get_pobox", "frosh")[0][1] == "POP"
        assert client.query("get_filesys_by_label", "frosh")
        assert d.kdc.principal_exists("frosh")

    def test_grab_taken_login(self, world):
        d, reg, _ = world
        taken = d.handles.logins[0]
        d.kdc.add_principal(taken, "pw")
        first, last, plain = student(d)
        with pytest.raises(RegError) as exc:
            reg.grab_login(first, last,
                           make_authenticator(plain, first, last, taken))
        assert exc.value.code == MR_LOGIN_TAKEN

    def test_double_grab_rejected(self, world):
        d, reg, _ = world
        first, last, plain = student(d)
        reg.grab_login(first, last,
                       make_authenticator(plain, first, last, "once"))
        with pytest.raises(RegError) as exc:
            reg.grab_login(first, last,
                           make_authenticator(plain, first, last,
                                              "twice"))
        assert exc.value.code == MR_ALREADY_REGISTERED


class TestSetPassword:
    def test_password_usable_after_set(self, world):
        d, reg, _ = world
        first, last, plain = student(d)
        reg.grab_login(first, last,
                       make_authenticator(plain, first, last, "kid"))
        reg.set_password(first, last,
                         make_authenticator(plain, first, last, "sekrit"))
        assert d.kdc.kinit("kid", "sekrit").principal == "kid"

    def test_set_password_requires_half_registered(self, world):
        d, reg, _ = world
        first, last, plain = student(d)
        with pytest.raises(RegError):
            reg.set_password(first, last,
                             make_authenticator(plain, first, last, "pw"))


class TestUserReg:
    def test_happy_path(self, world):
        d, _, userreg = world
        first, last, plain = student(d)
        outcome = userreg.register(first, last, plain, "newbie", "pw123")
        assert outcome.success
        assert outcome.login == "newbie"
        assert len(outcome.steps) == 4

    def test_kinit_probe_detects_taken_name(self, world):
        d, _, userreg = world
        existing = d.handles.logins[0]
        d.kdc.add_principal(existing, "theirpw")
        first, last, plain = student(d)
        outcome = userreg.register(first, last, plain, existing, "pw")
        assert not outcome.success
        assert outcome.error == "login_taken"

    def test_already_registered_student(self, world):
        d, _, userreg = world
        first, last, plain = student(d)
        userreg.register(first, last, plain, "one", "pw")
        outcome = userreg.register(first, last, plain, "two", "pw")
        assert not outcome.success
        assert outcome.error == "already_registered"

    def test_new_account_visible_after_propagation(self, world):
        """The paper's lag: "the user will not benefit from this
        allocation for a maximum of six hours"."""
        d, _, userreg = world
        first, last, plain = student(d)
        outcome = userreg.register(first, last, plain, "lagged", "pw")
        assert outcome.success
        # activate the account (half-registered accounts aren't extracted)
        d.direct_client().query("update_user_status", "lagged", 1)
        import pytest as _pytest
        from repro.servers.hesiod import HesiodError
        with _pytest.raises(HesiodError):
            d.hesiod.resolve("lagged", "passwd")
        d.run_hours(7)   # hesiod propagation interval
        assert d.hesiod.resolve("lagged", "passwd")
        # and the NFS locker now exists on the right server
        d.run_hours(6)   # complete the 12h NFS interval
        fs_row = d.direct_client().query("get_filesys_by_label",
                                         "lagged")[0]
        server = d.nfs_servers[fs_row[2]]
        assert server.locker_exists(fs_row[3])

    def test_term_start_burst(self, world):
        """§5.10: ~1000 accounts at the beginning of each term (scaled
        down); every unregistered student registers successfully."""
        d, _, userreg = world
        for i, (first, last, plain) in enumerate(
                d.handles.unregistered_ids):
            outcome = userreg.register(first, last, plain, f"frosh{i}",
                                       "pw")
            assert outcome.success, outcome.error
        from repro.apps import MrCheck
        assert MrCheck(d.db).run() == []
