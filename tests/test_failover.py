"""Fenced-failover chaos suite: the full-topology crash matrix.

The tentpole invariants, each provoked deliberately and repeatedly:

* **Zero lost committed writes** — every write the client saw ack'd
  before the primary died is present on the promoted primary, whether
  it arrived there by feed or by WAL salvage.
* **Byte identity** — after the failover completes and the write script
  finishes on the new primary, an mrbackup dump equals the dump of a
  world that never crashed at all.
* **Fencing** — the old primary, fenced below the new cluster epoch,
  accepts *zero* writes afterwards (refused at admission, before any
  handler runs) and its journal seq never moves.
* **Split-brain guard** — a replica that followed the promotion refuses
  a zombie (stale-epoch) feed outright.
* **Feed auth** — with a KDC present, `_repl_snapshot`/`_repl_tail`
  answer ``MR_PERM`` to anyone but the ``repl`` service principal.

The seeded sweep crashes the primary at *every* group-commit boundary
of a fixed 12-write script, crossed with five topology modes (fresh
candidate, lagging candidate, torn final WAL record, partitioned feed
with the old primary still alive, and a heal-back cycle) — 50 scenarios,
each ending byte-identical to the never-crashed oracle.
"""

from __future__ import annotations

import threading
from types import SimpleNamespace

import pytest

from repro.client.lib import MoiraClient, ReplicaSet
from repro.db.backup import mrbackup
from repro.db.journal import Journal
from repro.db.schema import build_database
from repro.errors import (
    MoiraError,
    KRB_BAD_PASSWORD,
    MR_ABORTED,
    MR_FENCED,
    MR_PERM,
)
from repro.kerberos.kdc import KDC
from repro.protocol.transport import connect_inproc
from repro.protocol.wire import MajorRequest, decode_reply, encode_request
from repro.queries.base import QueryContext, execute_query
from repro.replication.failover import FailoverCoordinator
from repro.replication.feed import REPL_SERVICE_PRINCIPAL
from repro.replication.replica import ReplicaServer
from repro.server import MoiraServer, seed_capacls
from repro.sim.clock import DEFAULT_EPOCH, Clock
from repro.sim.faults import FaultInjector, ServerCrash

BASE = DEFAULT_EPOCH + 2000

# the fixed write script: every scenario runs exactly this, so every
# scenario can be compared to one never-crashed oracle
N_WRITES = 12
SCRIPT = [(i, f"CHAOS{i}.MIT.EDU") for i in range(1, N_WRITES + 1)]


def write_when(wnum: int) -> int:
    return BASE + 1000 + wnum * 10


# -- world builders ------------------------------------------------------------


def chaos_world(wal_path=None, *, faults=None, write_batch=4):
    """A primary world: schema db + capacls + admin, seeded pre-WAL."""
    db = build_database()
    clock = Clock()
    clock.set(BASE)
    seed_capacls(db)
    ctx = QueryContext(db=db, clock=clock, caller="root", client="seed",
                       privileged=True)
    for i in range(4):
        execute_query(ctx, "add_user",
                      [f"fo{i}", str(7600 + i), "/bin/csh", f"Last{i}",
                       "First", "", "1", f"mit{i}", "1990"])
    execute_query(ctx, "add_member_to_list",
                  ["moira-admins", "USER", "fo3"])
    kdc = KDC(clock)
    journal = Journal(path=wal_path, faults=faults)
    server = MoiraServer(db, clock, kdc, journal=journal, workers=0,
                         write_batch=write_batch)
    return SimpleNamespace(db=db, clock=clock, kdc=kdc, journal=journal,
                           server=server)


def repl_creds(kdc):
    return kdc.kinit_keytab(REPL_SERVICE_PRINCIPAL,
                            kdc.srvtab(REPL_SERVICE_PRINCIPAL))


def make_replica(world, name, **kw):
    kw.setdefault("feed_credentials", repl_creds(world.kdc))
    return ReplicaServer(
        world.clock,
        feed_factory=lambda: connect_inproc(world.server,
                                            peer=f"{name}-feed"),
        kdc=world.kdc, name=name, **kw)


def admin_conn(server):
    conn_id = server.open_connection("test")
    server._connections[conn_id].principal = "fo3"
    return conn_id


def send(server, conn_id, args):
    frame = encode_request(MajorRequest.QUERY, args)[4:]
    replies = server.handle_frame(conn_id, frame)
    return decode_reply(replies[-1][4:]).code


def machine_exists(db, name) -> bool:
    return db.table("machine").count({"name": name}) > 0


def dump(db, directory):
    mrbackup(db, directory)
    return {p.name: p.read_bytes() for p in directory.iterdir()}


@pytest.fixture(scope="module")
def oracle(tmp_path_factory):
    """The never-crashed world: the whole script, no faults."""
    world = chaos_world()
    cid = admin_conn(world.server)
    for wnum, name in SCRIPT:
        world.clock.set(write_when(wnum))
        assert send(world.server, cid, ["add_machine", name, "VAX"]) == 0
    return dump(world.db, tmp_path_factory.mktemp("oracle"))


# -- epoch + fencing unit tests ------------------------------------------------


class TestEpochDurability:
    def test_epoch_header_survives_load(self, tmp_path):
        wal = tmp_path / "wal"
        journal = Journal(path=wal)
        journal.set_epoch(3)
        journal.record(BASE, "root", "add_user", ("a",))
        journal.close()
        loaded = Journal.load(wal)
        assert loaded.epoch == 3
        assert len(loaded.entries) == 1

    def test_epoch_one_leaves_wal_bytes_seedlike(self, tmp_path):
        wal = tmp_path / "wal"
        journal = Journal(path=wal)
        journal.record(BASE, "root", "add_user", ("a",))
        journal.close()
        # no header line at the default epoch: seed-era WAL files are
        # byte-identical, and old readers never see an unknown line
        lines = wal.read_text().splitlines()
        assert len(lines) == 1
        assert "_hdr" not in lines[0]
        assert Journal.load(wal).epoch == 1

    def test_set_epoch_is_monotonic(self):
        journal = Journal()
        journal.set_epoch(4)
        with pytest.raises(ValueError):
            journal.set_epoch(2)
        assert journal.epoch == 4
        journal.set_epoch(4)    # same epoch is a no-op, not an error

    def test_fence_refuses_sync_and_fsync_appends(self):
        journal = Journal()
        journal.record(BASE, "root", "q", ())
        assert journal.fence(5)
        assert journal.fenced and journal.fenced_by == 5
        with pytest.raises(MoiraError) as err:
            journal.sync()
        assert err.value.code == MR_FENCED
        with pytest.raises(MoiraError) as err:
            journal.record(BASE + 1, "root", "q", ())
        assert err.value.code == MR_FENCED
        assert journal.current_seq() == 1

    def test_fence_below_own_epoch_is_a_noop(self):
        journal = Journal()
        journal.set_epoch(6)
        assert not journal.fence(6)
        assert not journal.fenced
        journal.record(BASE, "root", "q", ())

    def test_owning_the_fencing_epoch_lifts_the_fence(self):
        journal = Journal()
        journal.fence(3)
        journal.set_epoch(3)
        assert not journal.fenced
        journal.record(BASE, "root", "q", ())


class TestServerFencing:
    def test_fenced_admission_refuses_before_any_handler(self):
        world = chaos_world()
        cid = admin_conn(world.server)
        assert send(world.server, cid,
                    ["add_machine", "FW0.MIT.EDU", "VAX"]) == 0
        world.journal.fence(2)
        seq = world.journal.current_seq()
        code = send(world.server, cid,
                    ["add_machine", "FW1.MIT.EDU", "VAX"])
        assert code == MR_FENCED
        assert not machine_exists(world.db, "FW1.MIT.EDU")
        assert world.journal.current_seq() == seq

    def test_fence_mid_window_fails_the_group_commit_lane(self):
        """Fencing lands between admission and the batch's sync():
        the whole window fails with MR_FENCED and nothing fsyncs."""
        world = chaos_world()
        cid = admin_conn(world.server)
        faults = FaultInjector()
        faults.call("journal.record",
                    lambda ctx: world.journal.fence(9), times=1)
        world.journal.faults = faults
        code = send(world.server, cid,
                    ["add_machine", "FW2.MIT.EDU", "VAX"])
        assert code == MR_FENCED
        assert world.journal.fenced_by == 9

    def test_fenced_role_visible_in_status_and_stats(self):
        world = chaos_world()
        cid = admin_conn(world.server)
        frame = encode_request(MajorRequest.QUERY, ["_repl_status"])[4:]
        replies = world.server.handle_frame(cid, frame)
        row = decode_reply(replies[0][4:]).str_fields()
        assert (row[0], row[3]) == ("primary", "1")
        world.journal.fence(4)
        replies = world.server.handle_frame(cid, frame)
        assert decode_reply(replies[0][4:]).str_fields()[0] == "fenced"
        stats_frame = encode_request(MajorRequest.QUERY,
                                     ["_query_stats"])[4:]
        rows = [decode_reply(r[4:]).str_fields()
                for r in world.server.handle_frame(cid, stats_frame)[:-1]]
        by_key = {r[0]: r[1] for r in rows if len(r) == 2}
        assert by_key["_repl.role"] == "fenced"
        assert by_key["_repl.epoch"] == "1"
        assert by_key["_repl.fenced_by"] == "4"


# -- feed authentication -------------------------------------------------------


class TestFeedAuth:
    def _pull_code(self, world, query, principal):
        cid = world.server.open_connection("probe")
        if principal:
            world.server._connections[cid].principal = principal
        frame = encode_request(MajorRequest.QUERY, query)[4:]
        replies = world.server.handle_frame(cid, frame)
        return decode_reply(replies[-1][4:]).code

    def test_unauthenticated_pulls_answer_mr_perm(self):
        world = chaos_world()
        assert self._pull_code(world, ["_repl_snapshot"], "") == MR_PERM
        assert self._pull_code(world, ["_repl_tail", "0"], "") == MR_PERM

    def test_wrong_principal_answers_mr_perm(self):
        world = chaos_world()
        # even an authenticated admin is not the repl service
        assert self._pull_code(world, ["_repl_snapshot"],
                               "fo3") == MR_PERM

    def test_repl_principal_is_admitted(self):
        world = chaos_world()
        assert self._pull_code(world, ["_repl_snapshot"], "repl") == 0
        assert self._pull_code(world, ["_repl_tail", "0"], "repl") == 0

    def test_status_probe_stays_open(self):
        world = chaos_world()
        assert self._pull_code(world, ["_repl_status"], "") == 0

    def test_replica_with_credentials_syncs(self):
        world = chaos_world()
        replica = make_replica(world, "authed")
        assert replica.step() == 0
        assert replica.snapshots_loaded == 1

    def test_replica_without_credentials_is_refused(self):
        world = chaos_world()
        replica = make_replica(world, "anon", feed_credentials=None)
        with pytest.raises(MoiraError) as err:
            replica.step()
        assert err.value.code == MR_PERM

    def test_kinit_keytab_rejects_a_wrong_key(self):
        world = chaos_world()
        with pytest.raises(MoiraError) as err:
            world.kdc.kinit_keytab(REPL_SERVICE_PRINCIPAL, b"forged")
        assert err.value.code == KRB_BAD_PASSWORD

    def test_serverless_kdc_leaves_feed_open(self):
        """A journal-only primary without a KDC keeps the open feed
        (the unit-test enclave shape from earlier PRs)."""
        db = build_database()
        clock = Clock()
        server = MoiraServer(db, clock, journal=Journal(), workers=0)
        cid = server.open_connection("anon")
        frame = encode_request(MajorRequest.QUERY, ["_repl_snapshot"])[4:]
        assert decode_reply(
            server.handle_frame(cid, frame)[-1][4:]).code == 0


# -- promotion mechanics -------------------------------------------------------


class TestPromotion:
    def _world_with_replicas(self, tmp_path, n_writes=5):
        world = chaos_world(tmp_path / "wal")
        cid = admin_conn(world.server)
        for wnum, name in SCRIPT[:n_writes]:
            world.clock.set(write_when(wnum))
            assert send(world.server, cid,
                        ["add_machine", name, "VAX"]) == 0
        r0 = make_replica(world, "r0")
        r1 = make_replica(world, "r1")
        r0.step()
        return world, r0, r1

    def test_promote_bumps_epoch_and_serves_writes(self, tmp_path):
        world, r0, r1 = self._world_with_replicas(tmp_path)
        coord = FailoverCoordinator(world.server, [r0, r1],
                                    primary_wal=tmp_path / "wal")
        rec = coord.promote(
            r0, journal=Journal(path=tmp_path / "wal-promoted"),
            feed_factory=lambda: connect_inproc(r0.server),
            credentials=repl_creds(world.kdc))
        assert rec.epoch == 2
        assert rec.fenced_old_primary
        assert r0.role == "primary"
        assert r0.server.role == "primary"
        assert r0.server.journal.epoch == 2
        # seq numbering continues: read-your-writes tokens survive
        assert r0.server.journal.current_seq() == r0.applied_seq
        cid = admin_conn(r0.server)
        world.clock.set(write_when(6))
        assert send(r0.server, cid,
                    ["add_machine", "POST0.MIT.EDU", "VAX"]) == 0
        assert r0.server.journal.entries[-1].seq == r0.applied_seq + 1
        assert rec.retargeted == ["r1"]
        assert r1.step() >= 0     # retargeted survivor follows

    def test_lagging_candidate_salvages_the_wal(self, tmp_path):
        world, r0, r1 = self._world_with_replicas(tmp_path)
        # r1 never stepped: everything must come from the shared WAL
        coord = FailoverCoordinator(world.server, [r0, r1],
                                    primary_wal=tmp_path / "wal")
        behind = r1.applied_seq
        rec = coord.promote(r1, catch_up_feed=False)
        assert rec.salvaged_entries == 5 - behind
        assert r1.applied_seq == 5
        for _, name in SCRIPT[:5]:
            assert machine_exists(r1.db, name)

    def test_zombie_feed_is_refused_by_epoch_guard(self, tmp_path):
        world, r0, r1 = self._world_with_replicas(tmp_path)
        coord = FailoverCoordinator(world.server, [r0, r1],
                                    primary_wal=tmp_path / "wal")
        coord.promote(r0, feed_factory=lambda: connect_inproc(r0.server),
                      credentials=repl_creds(world.kdc))
        r1.step()
        assert r1.epoch == 2
        # the old primary comes back as a zombie at epoch 1: refused
        r1.retarget(lambda: connect_inproc(world.server),
                    credentials=repl_creds(world.kdc))
        with pytest.raises(MoiraError) as err:
            r1.step()
        assert err.value.code == MR_FENCED

    def test_promote_is_idempotent(self, tmp_path):
        world, r0, r1 = self._world_with_replicas(tmp_path)
        epoch = r0.promote()
        assert r0.promote() == epoch

    def test_heal_rejoins_as_replica_of_the_new_primary(self, tmp_path):
        world, r0, r1 = self._world_with_replicas(tmp_path)
        coord = FailoverCoordinator(world.server, [r0, r1],
                                    primary_wal=tmp_path / "wal")
        coord.promote(r0)
        healed = coord.heal(lambda: connect_inproc(r0.server),
                            name="healed",
                            credentials=repl_creds(world.kdc),
                            kdc=world.kdc)
        assert healed.applied_seq == r0.applied_seq
        assert healed.epoch == 2
        assert healed in coord.replicas
        assert dump(healed.db, tmp_path / "h") == \
            dump(r0.db, tmp_path / "p")


class TestReplicaSetFailover:
    def _router_world(self, tmp_path):
        world = chaos_world(tmp_path / "wal")
        world.kdc.add_principal("fo3", "pw")
        r0 = make_replica(world, "r0")
        r0.step()

        def client(dispatcher):
            c = MoiraClient(dispatcher=dispatcher, kdc=world.kdc,
                            credentials=world.kdc.kinit("fo3", "pw"),
                            clock=world.clock, busy_retries=0)
            c.connect()
            c.auth("test")
            return c

        router = ReplicaSet(client(world.server), [client(r0.server)])
        return world, r0, router

    def test_fenced_write_fails_over_and_retries(self, tmp_path):
        world, r0, router = self._router_world(tmp_path)
        world.clock.set(write_when(1))
        router.query("add_machine", "RS1.MIT.EDU", "VAX")
        r0.step()
        # the operator promotes r0; the old primary is fenced
        coord = FailoverCoordinator(world.server, [r0],
                                    primary_wal=tmp_path / "wal")
        coord.promote(r0, catch_up_feed=True)
        world.clock.set(write_when(2))
        # MR_FENCED from the old primary: probed, re-pointed, retried
        router.query("add_machine", "RS2.MIT.EDU", "VAX")
        assert router.failovers == 1
        assert machine_exists(r0.db, "RS2.MIT.EDU")
        assert not machine_exists(world.db, "RS2.MIT.EDU")
        # read-your-writes token kept advancing across the switch
        assert router.min_seq == r0.server.journal.current_seq()

    def test_reads_still_work_after_failover(self, tmp_path):
        world, r0, router = self._router_world(tmp_path)
        coord = FailoverCoordinator(world.server, [r0],
                                    primary_wal=tmp_path / "wal")
        coord.promote(r0, catch_up_feed=True)
        world.clock.set(write_when(1))
        router.query("add_machine", "RS3.MIT.EDU", "VAX")
        rows = router.query("get_machine", "RS3.MIT.EDU")
        assert rows and rows[0][0] == "RS3.MIT.EDU"

    def test_no_primary_anywhere_reraises(self, tmp_path):
        world, r0, router = self._router_world(tmp_path)
        world.journal.fence(7)    # fenced, but nobody was promoted
        world.clock.set(write_when(1))
        with pytest.raises(MoiraError) as err:
            router.query("add_machine", "RS4.MIT.EDU", "VAX")
        assert err.value.code == MR_FENCED
        assert router.failovers == 0


# -- the seeded chaos sweep ----------------------------------------------------

# crash/partition boundaries: one per group-commit window of the script
BOUNDARIES = list(range(1, 11))
MODES = ("fresh", "lagging", "torn", "partition", "heal")


class TestChaosSweep:
    """5 modes x 10 boundaries = 50 seeded fault scenarios, every one
    ending byte-identical to the never-crashed oracle with zero lost
    committed writes and zero writes accepted by the fenced primary."""

    @pytest.mark.parametrize("boundary", BOUNDARIES)
    @pytest.mark.parametrize("mode", MODES)
    def test_scenario(self, mode, boundary, tmp_path, oracle):
        faults = FaultInjector(seed=boundary)
        wal = tmp_path / "wal-primary"
        world = chaos_world(wal, faults=faults)
        r0 = make_replica(world, "r0")            # fresh follower
        r1 = make_replica(world, "r1")            # lagging follower
        r0.step()
        r1.step()

        if mode == "torn":
            # crash mid-write: a torn prefix of record #boundary lands
            faults.tear_write("journal.write", at_call=boundary)
        elif mode != "partition":
            # die inside the group-commit window's durability point
            faults.crash_server("journal.batch_flush", at_call=boundary)

        candidate = r1 if mode in ("lagging", "partition") else r0
        coord = FailoverCoordinator(world.server, [r0, r1],
                                    primary_wal=wal, faults=faults)

        def do_promote(catch_up_feed):
            return coord.promote(
                candidate,
                journal=Journal(path=tmp_path / "wal-promoted"),
                feed_factory=lambda: connect_inproc(
                    candidate.server, peer="retarget"),
                credentials=repl_creds(world.kdc),
                catch_up_feed=catch_up_feed)

        target = world.server
        cid = admin_conn(target)
        acked: list[str] = []
        promoted = False
        record = None

        for wnum, name in SCRIPT:
            when = write_when(wnum)
            world.clock.set(when)
            if mode == "partition" and wnum == boundary and not promoted:
                # the feed partitions away; operators promote the
                # lagging replica while the old primary still breathes
                faults.fail("repl.tail",
                            MoiraError(MR_ABORTED, "partitioned"),
                            times=1)
                record = do_promote(catch_up_feed=True)
                promoted = True
                self._assert_fenced(world, name)
                target = candidate.server
                cid = admin_conn(target)
                world.clock.set(when)
            try:
                code = send(target, cid, ["add_machine", name, "VAX"])
            except ServerCrash:
                assert not promoted, "second crash in a scenario"
                record = do_promote(catch_up_feed=False)
                promoted = True
                # zero-loss: every ack'd write made it across
                for prior in acked:
                    assert machine_exists(candidate.db, prior), \
                        f"lost committed write {prior} ({mode}/{boundary})"
                self._assert_fenced(world, name)
                target = candidate.server
                cid = admin_conn(target)
                # the crashed write was never ack'd: verify, then retry
                world.clock.set(when)
                if machine_exists(candidate.db, name):
                    code = 0
                else:
                    code = send(target, cid,
                                ["add_machine", name, "VAX"])
            assert code == 0, f"write {name} failed with {code}"
            acked.append(name)
            if not promoted:
                r0.step()
                if wnum % 3 == 0:
                    r1.step()

        assert promoted, "the injected fault never fired"
        assert record is not None and record.epoch == 2
        for name in (n for _, n in SCRIPT):
            assert machine_exists(candidate.db, name)
        got = dump(candidate.db, tmp_path / "got")
        assert got == oracle, f"diverged from oracle ({mode}/{boundary})"

        # the surviving follower converges on the new primary too
        survivor = r0 if candidate is r1 else r1
        survivor.step()
        survivor.step()
        assert survivor.applied_seq == \
            candidate.server.journal.current_seq()
        assert dump(survivor.db, tmp_path / "srv") == oracle

        if mode == "heal":
            healed = coord.heal(
                lambda: connect_inproc(candidate.server, peer="heal"),
                name="healed", credentials=repl_creds(world.kdc),
                kdc=world.kdc)
            assert healed.epoch == record.epoch
            assert dump(healed.db, tmp_path / "healed") == oracle

    def _assert_fenced(self, world, name):
        """The fenced old primary accepts zero writes, forever."""
        assert world.journal.fenced
        seq = world.journal.current_seq()
        cid = admin_conn(world.server)
        code = send(world.server, cid,
                    ["add_machine", f"STALE-{name}", "VAX"])
        assert code == MR_FENCED
        assert world.journal.current_seq() == seq
        assert not machine_exists(world.db, f"STALE-{name}")
