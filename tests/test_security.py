"""Security properties of the access-control layer (§4, §5.5).

"Moira must be tamper-proof ... Moira must be secure."  These tests
assert the negative space: an ordinary authenticated user can never
execute *any* side-effecting query except through a documented
relaxation, an unauthenticated connection can never mutate anything,
and the Access request never disagrees with Query about permission.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.client import MoiraClient
from repro.errors import MR_MORE_DATA, MR_PERM
from repro.protocol.wire import MajorRequest, decode_reply, encode_request
from repro.queries.base import all_queries
from tests.conftest import make_user

# The documented relaxations: side-effecting queries an ordinary user
# may run against *their own* objects.
SELF_SERVICE_UPDATES = {
    "update_user_shell", "update_finger_by_login", "set_pobox",
    "set_pobox_pop", "delete_pobox", "add_member_to_list",
    "delete_member_from_list", "update_list", "delete_list",
}


def plausible_args(query, login):
    """Arguments that reference the caller where a login fits."""
    out = []
    for arg in query.args:
        if "login" in arg or arg in ("member", "ace_name", "owner"):
            out.append(login)
        elif "int" in arg or arg in ("uid", "gid", "status", "quota",
                                     "port", "value1", "value2", "size",
                                     "allocated", "delta", "interval",
                                     "enable", "dfgen", "dfcheck",
                                     "inprogress", "harderror",
                                     "override", "success", "hosterror",
                                     "lasttry", "lastsuccess"):
            out.append("1")
        else:
            out.append("something")
    return out


class TestNoPermissionLeaks:
    def test_every_mutation_denied_to_plain_user(self, user_client,
                                                 run):
        """Sweep the whole registry: no side-effecting query succeeds
        for an ordinary user unless it's a documented self-service
        relaxation (and even those must target the caller)."""
        make_user(run, "innocent")
        for query in all_queries().values():
            if not query.side_effects:
                continue
            if query.name in SELF_SERVICE_UPDATES:
                continue
            args = plausible_args(query, "innocent")
            code = user_client.mr_query(query.name, args)
            assert code == MR_PERM, (
                f"{query.name} was not denied (code {code})")

    def test_self_service_never_reaches_other_users(self, user_client,
                                                    run):
        make_user(run, "bystander")
        run("add_machine", "POX.MIT.EDU", "VAX")
        for name, args in [
            ("update_user_shell", ["bystander", "/bin/sh"]),
            ("update_finger_by_login",
             ["bystander"] + [""] * 8),
            ("set_pobox", ["bystander", "POP", "POX.MIT.EDU"]),
            ("delete_pobox", ["bystander"]),
            ("set_pobox_pop", ["bystander"]),
        ]:
            assert user_client.mr_query(name, args) == MR_PERM, name

    def test_unauthenticated_connection_cannot_mutate(self, server,
                                                      run):
        make_user(run, "target2")
        c = MoiraClient(dispatcher=server)
        c.connect()
        for query in all_queries().values():
            if not query.side_effects:
                continue
            code = c.mr_query(query.name,
                              plausible_args(query, "target2"))
            assert code != 0, f"{query.name} succeeded unauthenticated"
        c.close()

    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(st.sampled_from(sorted(
        q.name for q in all_queries().values() if q.side_effects)))
    def test_access_request_never_disagrees_with_query(self, server,
                                                       query_name):
        """Access saying "yes" must mean Query won't fail with MR_PERM
        (and vice versa) for the same principal and arguments."""
        from repro.db.schema import build_database
        from repro.kerberos.kdc import KDC
        from repro.queries.base import QueryContext, execute_query
        from repro.server import MoiraServer, seed_capacls
        from repro.sim.clock import Clock

        clock = Clock()
        db = build_database()
        kdc = KDC(clock)
        srv = MoiraServer(db, clock, kdc)
        seed_capacls(db)
        ctx = QueryContext(db=db, clock=clock, caller="root",
                           privileged=True)
        execute_query(ctx, "add_user",
                      ["plain", "-1", "/bin/csh", "P", "L", "", "1", "",
                       "1990"])
        kdc.add_principal("plain", "pw")
        client = MoiraClient(dispatcher=srv, kdc=kdc,
                             credentials=kdc.kinit("plain", "pw"),
                             clock=clock)
        client.connect().auth("sec")
        query = all_queries()[query_name]
        args = plausible_args(query, "plain")
        access_ok = client.mr_access(query_name, args) == 0
        query_code = client.mr_query(query_name, args)
        if access_ok:
            assert query_code != MR_PERM
        else:
            assert query_code == MR_PERM
        client.close()


class TestDataExposure:
    def test_hidden_list_membership_not_divulged(self, user_client,
                                                 admin_client, run):
        """§6 LIST.hidden: "neither the list information or membership
        may be divulged to anyone who is not an administrator"."""
        make_user(run, "spy-target")
        run("add_list", "secret-society", 1, 0, 1, 1, 0, 0, "NONE",
            "NONE", "hush")
        run("add_member_to_list", "secret-society", "USER",
            "spy-target")
        assert user_client.mr_query("get_list_info",
                                    ["secret-society"]) == MR_PERM
        assert user_client.mr_query("get_members_of_list",
                                    ["secret-society"]) == MR_PERM
        # admins still see it
        assert admin_client.query("get_members_of_list",
                                  "secret-society")

    def test_mit_id_not_in_summary_queries(self, server, run):
        """get_all_logins intentionally returns "a summary of the
        account info" without the encrypted MIT ID."""
        make_user(run, "private")
        c = MoiraClient(dispatcher=server)
        c.connect()
        conn = server.open_connection("direct")
        frame = encode_request(MajorRequest.QUERY, ["get_user_by_login",
                                                    "private"])
        # the full record (admin path) includes the mit_id field, but
        # the summary field list must not
        from repro.queries.base import get_query
        assert "mit_id" not in get_query("get_all_logins").returns
        assert "mit_id" in get_query("get_user_by_login").returns
        c.close()

    def test_wildcard_user_lookup_requires_capability(self, user_client):
        """An ordinary user cannot dump all users via wildcards."""
        assert user_client.mr_query("get_user_by_login",
                                    ["*"]) == MR_PERM
