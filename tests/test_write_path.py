"""Write-path scale-out tests: sharded writer locks, group-committed
batch windows, bindings-driven WAL replay, and walstore batch
boundaries (docs/WRITE_PATH.md).

The engine half proves the locking discipline directly — disjoint
shards commit concurrently, cross-shard writers never deadlock,
commit hooks fire in exact commit-seq order, aborts roll data back
but leave system-table bindings behind.  The server half drives the
:class:`~repro.server.write_batch.WriteBatcher` through real frames:
error isolation inside a window, and a torn write mid-batch that must
recover + resume to the never-crashed oracle byte for byte.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path

import pytest

from repro.db.backup import mrbackup
from repro.db.journal import Journal
from repro.db.recovery import apply_bindings, checkpoint, recover, replay_wal
from repro.db.schema import build_database
from repro.db.walstore import walstore_database_from_schema
from repro.errors import MoiraError
from repro.kerberos import KDC
from repro.protocol.wire import MajorRequest, decode_reply, encode_request
from repro.queries.base import QueryContext, execute_query
from repro.replication.feed import entry_from_tuple, entry_to_tuple
from repro.server import MoiraServer, seed_capacls
from repro.sim.clock import DEFAULT_EPOCH, Clock
from repro.sim.faults import FaultInjector, ServerCrash

BASE = DEFAULT_EPOCH + 500


# -- the sharded engine --------------------------------------------------------


class TestShardedEngine:
    def test_schema_declares_standard_shards(self):
        db = build_database()
        assert set(db.shards) == {"users", "machines", "quota"}
        assert db._shard_of["users"] == "users"
        assert db._shard_of["machine"] == "machines"
        assert db._shard_of["nfsquota"] == "quota"
        # system tables belong to no shard
        assert "values" not in db._shard_of
        assert "strings" not in db._shard_of

    def test_disjoint_shards_commit_concurrently(self):
        """A machines-shard writer commits while a users-shard
        transaction is still open — the seed's global lock forbade
        exactly this."""
        db = build_database()
        entered = threading.Event()
        release = threading.Event()
        committed_during: list[bool] = []

        def users_writer():
            with db.shard_txn(["users"]):
                db.table("users").insert(
                    {"login": "wp1", "users_id": 9001, "uid": 9001},
                    now=BASE)
                entered.set()
                release.wait(timeout=30)

        t = threading.Thread(target=users_writer)
        t.start()
        assert entered.wait(timeout=30)
        with db.shard_txn(["machines"]):
            db.table("machine").insert(
                {"name": "WP1.MIT.EDU", "mach_id": 9001, "type": "VAX"},
                now=BASE)
        committed_during.append(not release.is_set())
        release.set()
        t.join(timeout=30)
        assert committed_during == [True]
        assert db.table("machine").select({"name": "WP1.MIT.EDU"})
        assert db.table("users").select({"login": "wp1"})

    def test_cross_shard_writers_never_deadlock(self):
        """Writers naming overlapping shard pairs in opposite orders
        always make progress (locks are taken in sorted-name order
        regardless of how the caller spells the set)."""
        db = build_database()
        errors: list[BaseException] = []

        def spin(shards, mach_base):
            try:
                for i in range(25):
                    with db.shard_txn(shards):
                        db.table("machine").insert(
                            {"name": f"X{mach_base + i}.MIT.EDU",
                             "mach_id": mach_base + i, "type": "VAX"},
                            now=BASE)
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=spin, args=(["users", "machines"], 100)),
            threading.Thread(target=spin, args=(["machines", "quota"], 200)),
            threading.Thread(target=spin, args=(["quota", "users",
                                                 "machines"], 300)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not any(t.is_alive() for t in threads), "deadlocked"
        assert not errors
        assert db.table("machine").count() == 75

    def test_commit_hooks_fire_in_commit_seq_order(self):
        """The publication gate runs each commit hook only after every
        earlier seq has published — the WAL-order invariant."""
        db = build_database()
        order: list[int] = []
        mutex = threading.Lock()

        def hook(txn):
            with mutex:
                order.append(txn.seq)

        def writer(shard, base):
            for i in range(20):
                with db.shard_txn([shard], commit_hook=hook):
                    db.table("machine" if shard == "machines"
                             else "nfsquota").insert(
                        {"name": f"H{base + i}.MIT.EDU",
                         "mach_id": base + i, "type": "VAX"}
                        if shard == "machines" else
                        {"users_id": base + i, "filsys_id": base + i,
                         "phys_id": 1, "quota": 1},
                        now=BASE)

        threads = [threading.Thread(target=writer, args=("machines", 500)),
                   threading.Thread(target=writer, args=("quota", 700))]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert len(order) == 40
        assert order == sorted(order), "hooks fired out of commit order"
        assert order == list(range(order[0], order[0] + 40))

    def test_abort_rolls_back_rows_but_not_bindings(self):
        """An aborted writer's row changes vanish; the ids it drew from
        the system tables stay consumed and reach the abort hook as
        bindings (for the WAL's ``_aborted`` marker)."""
        db = build_database()
        hint_before = db.get_value("gid")
        seen: list[dict] = []

        with pytest.raises(RuntimeError):
            with db.shard_txn(["users"],
                              abort_hook=lambda txn: seen.append(
                                  txn.bindings)):
                db.table("users").insert(
                    {"login": "doomed", "users_id": 9100, "uid": 9100},
                    now=BASE)
                assert db.next_id("gid", now=BASE) == hint_before
                raise RuntimeError("boom")

        assert not db.table("users").select({"login": "doomed"})
        assert db.get_value("gid") == hint_before + 1  # hint not rolled back
        assert seen and seen[0]["id"]["gid"] == [hint_before]

    def test_scripted_ids_reproduce_allocation(self):
        """Replay scripting: ``next_id`` consumes journaled values and
        only ever advances the hint."""
        db = build_database()
        natural = db.get_value("gid")
        db.begin_scripted_ids({"id": {"gid": [natural + 7]}})
        try:
            assert db.next_id("gid", now=BASE) == natural + 7
        finally:
            db.end_scripted_ids()
        # hint advanced past the scripted value, not to natural + 1
        assert db.get_value("gid") == natural + 8
        # a lower scripted value must not move the hint backwards
        db.begin_scripted_ids({"id": {"gid": [natural]}})
        try:
            assert db.next_id("gid", now=BASE) == natural
        finally:
            db.end_scripted_ids()
        assert db.get_value("gid") == natural + 8


# -- bindings + replay ---------------------------------------------------------


class TestBindingsReplay:
    def test_apply_bindings_is_idempotent(self):
        db = build_database()
        base = db.get_value("list_id")
        bindings = {"id": {"list_id": [base, base + 1]},
                    "intern": {"write-path": 41}}
        apply_bindings(db, bindings, now=BASE)
        apply_bindings(db, bindings, now=BASE)
        assert db.get_value("list_id") == base + 2
        rows = db.table("strings").select({"string_id": 41})
        assert len(rows) == 1 and rows[0]["string"] == "write-path"
        # hints never move backwards
        apply_bindings(db, {"id": {"list_id": [1]}}, now=BASE)
        assert db.get_value("list_id") == base + 2

    def test_replay_rejects_out_of_commit_order(self, tmp_path):
        wal = tmp_path / "wal"
        journal = Journal(path=wal)
        journal.record(BASE, "root", "add_user",
                       ("r1", "7301", "/bin/sh", "L", "F", "", "1",
                        "m1", "1990"), commit_seq=1)
        journal.record(BASE + 1, "root", "add_user",
                       ("r2", "7302", "/bin/sh", "L", "F", "", "1",
                        "m2", "1990"), commit_seq=3)
        journal.record(BASE + 2, "root", "add_user",
                       ("r3", "7303", "/bin/sh", "L", "F", "", "1",
                        "m3", "1990"), commit_seq=2)
        journal.close()
        with pytest.raises(ValueError, match="out of commit order"):
            replay_wal(build_database(), Journal.load(wal))

    def test_replay_applies_aborted_entry_bindings(self, tmp_path):
        """An ``_aborted`` marker replays as its bindings only — the
        hint bump and interned string survive, no query runs."""
        wal = tmp_path / "wal"
        journal = Journal(path=wal)
        journal.record(BASE, "root", "_aborted", (), commit_seq=1,
                       bindings={"id": {"gid": [10900]},
                                 "intern": {"ghost": 77}})
        journal.close()
        db = build_database()
        result = replay_wal(db, Journal.load(wal))
        assert result.aborted_applied == 1
        assert result.replayed == 0
        assert db.get_value("gid") == 10901
        assert db.table("strings").select({"string_id": 77})

    def test_feed_tuple_carries_commit_seq_and_bindings(self):
        journal = Journal()
        journal.record(BASE, "root", "add_machine",
                       ("F1.MIT.EDU", "VAX"), client="test",
                       commit_seq=9,
                       bindings={"id": {"mach_id": [5]}, "intern": {}})
        entry = journal.entries[0]
        fields = entry_to_tuple(entry)
        assert len(fields) == 8
        back = entry_from_tuple(fields)
        assert back.commit_seq == 9
        assert back.bindings == {"id": {"mach_id": [5]}, "intern": {}}
        assert back.query == "add_machine"
        # a pre-sharding 6-field tuple still parses
        legacy = entry_from_tuple(fields[:6])
        assert legacy.commit_seq == 0
        assert legacy.query == "add_machine"


# -- the server's group-commit window ------------------------------------------


def _mini_world(wal_path=None, *, write_batch=4):
    """A tiny server world: schema db + capacls + eight users + an
    admin on moira-admins, all seeded before any WAL exists."""
    db = build_database()
    clock = Clock()
    clock.set(BASE)
    seed_capacls(db)
    ctx = QueryContext(db=db, clock=clock, caller="root", client="seed",
                       privileged=True)
    for i in range(8):
        execute_query(ctx, "add_user",
                      [f"wp{i}", str(7400 + i), "/bin/csh", f"Last{i}",
                       "First", "", "1", f"mit{i}", "1990"])
    execute_query(ctx, "add_member_to_list",
                  ["moira-admins", "USER", "wp7"])
    journal = Journal(path=wal_path)
    server = MoiraServer(db, clock, KDC(clock), journal=journal,
                         workers=0, write_batch=write_batch)
    return db, clock, journal, server


def _admin_conn(server):
    conn_id = server.open_connection("test")
    server._connections[conn_id].principal = "wp7"
    return conn_id


def _query_frame(args):
    return encode_request(MajorRequest.QUERY, args)[4:]


def _send(server, conn_id, args):
    replies = server.handle_frame(conn_id, _query_frame(args))
    return decode_reply(replies[-1][4:]).code


class TestWriteBatcher:
    def test_error_isolation_within_window(self):
        """One failing write in a window aborts alone; its neighbours
        commit and the WAL stays in commit-seq order."""
        db, clock, journal, server = _mini_world()
        conn_id = _admin_conn(server)
        assert _send(server, conn_id,
                     ["add_machine", "EI0.MIT.EDU", "VAX"]) == 0
        codes = []
        barrier = threading.Barrier(4)

        def client(args):
            cid = _admin_conn(server)
            barrier.wait(timeout=30)
            codes.append((args[1], _send(server, cid, args)))

        plans = [["add_machine", "EI1.MIT.EDU", "VAX"],
                 ["add_machine", "EI0.MIT.EDU", "VAX"],   # duplicate
                 ["add_machine", "EI2.MIT.EDU", "VAX"],
                 ["update_user_shell", "wp1", "/bin/sh"]]
        threads = [threading.Thread(target=client, args=(p,))
                   for p in plans]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        by_target = dict(codes)
        assert by_target["EI1.MIT.EDU"] == 0
        assert by_target["EI2.MIT.EDU"] == 0
        assert by_target["EI0.MIT.EDU"] != 0      # the duplicate failed
        assert by_target["wp1"] == 0
        assert db.table("machine").count({"name": "EI1.MIT.EDU"}) == 1
        assert db.table("machine").count({"name": "EI0.MIT.EDU"}) == 1
        assert db.table("users").select({"login": "wp1"})[0]["shell"] \
            == "/bin/sh"
        seqs = [e.commit_seq for e in journal.entries if e.commit_seq]
        assert seqs == sorted(seqs)

    def test_wal_stats_pseudo_query_reports_window(self):
        db, clock, journal, server = _mini_world()
        conn_id = _admin_conn(server)
        assert _send(server, conn_id,
                     ["add_machine", "WS0.MIT.EDU", "VAX"]) == 0
        replies = server.handle_frame(
            conn_id, _query_frame(["_wal_stats"]))
        rows = [decode_reply(r[4:]).fields for r in replies[:-1]]
        keys = {row[0].decode() if isinstance(row[0], bytes) else row[0]
                for row in rows}
        assert "_wal.appends" in keys
        assert "_batch.window" in keys
        assert "_batch.batches" in keys

    def test_torn_write_mid_batch_recovers_to_oracle(self, tmp_path):
        """A torn journal write inside a commit window crashes the
        "process"; checkpoint + surviving WAL + an idempotent resume
        land byte-identical on the never-crashed oracle."""
        shells = ["/bin/sh", "/usr/athena/tcsh", "/bin/csh"]
        muts = [["update_user_shell", f"wp{i}", shells[i % 3]]
                for i in range(6)]

        # the never-crashed oracle
        odb, oclock, _, oserver = _mini_world()
        for m in muts:
            ctx = QueryContext(db=odb, clock=oclock, caller="wp7",
                               client="test", privileged=True)
            execute_query(ctx, m[0], m[1:])
        oracle_dir = tmp_path / "oracle"
        mrbackup(odb, oracle_dir)
        oracle = {p.name: p.read_bytes() for p in oracle_dir.iterdir()}

        db, clock, journal, server = _mini_world(tmp_path / "wal",
                                                 write_batch=2)
        checkpoint(db, journal, tmp_path / "snap")
        faults = FaultInjector()
        faults.tear_write("journal.write", at_call=3)
        journal.faults = faults
        dead = threading.Event()

        def client(plan):
            cid = _admin_conn(server)
            for args in plan:
                if dead.is_set():
                    return
                try:
                    _send(server, cid, args)
                except ServerCrash:
                    dead.set()
                    return

        threads = [threading.Thread(target=client, args=(muts[t::3],))
                   for t in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert dead.is_set(), "the injected tear never fired"

        rec = recover(tmp_path / "snap", wal_path=tmp_path / "wal")
        for m in muts:    # the operator re-runs the whole schedule
            ctx = QueryContext(db=rec.db, clock=clock, caller="wp7",
                               client="test", privileged=True)
            try:
                execute_query(ctx, m[0], m[1:])
            except MoiraError:
                pass
        got_dir = tmp_path / "got"
        mrbackup(rec.db, got_dir)
        got = {p.name: p.read_bytes() for p in got_dir.iterdir()}
        assert got == oracle

    def test_batcher_survives_crash_and_serves_again(self, tmp_path):
        """After a mid-batch crash the lane releases leadership and
        queued writes fail fast — a post-recovery submit succeeds."""
        db, clock, journal, server = _mini_world(tmp_path / "wal",
                                                 write_batch=2)
        faults = FaultInjector()
        faults.crash_server("journal.batch_flush", at_call=1)
        journal.faults = faults
        conn_id = _admin_conn(server)
        with pytest.raises(ServerCrash):
            _send(server, conn_id, ["add_machine", "CR0.MIT.EDU", "VAX"])
        journal.faults = None
        assert _send(server, conn_id,
                     ["add_machine", "CR1.MIT.EDU", "VAX"]) == 0


# -- walstore batch boundaries -------------------------------------------------


class TestWalstoreBatches:
    def _lines(self, path: Path) -> int:
        return len([ln for ln in path.read_text().splitlines() if ln])

    def test_batch_commit_appends_whole_window(self, tmp_path):
        log = tmp_path / "ops.log"
        store = walstore_database_from_schema(str(log))
        before = self._lines(log)
        store.batch_begin()
        store.set_value("wp_a", 1, now=BASE)
        store.set_value("wp_b", 2, now=BASE)
        assert self._lines(log) == before     # buffered, not on disk
        store.batch_commit()
        assert self._lines(log) == before + 2
        store.close()
        reopened = walstore_database_from_schema(str(log))
        assert reopened.get_value("wp_a") == 1
        assert reopened.get_value("wp_b") == 2
        reopened.close()

    def test_batch_abort_drops_window_from_log(self, tmp_path):
        log = tmp_path / "ops.log"
        store = walstore_database_from_schema(str(log))
        store.set_value("kept", 5, now=BASE)
        before = self._lines(log)
        store.batch_begin()
        store.set_value("lost", 6, now=BASE)
        assert store.get_value("lost") == 6   # applied in memory
        store.batch_abort()                   # simulated crash mid-window
        assert self._lines(log) == before
        store.close()
        reopened = walstore_database_from_schema(str(log))
        assert reopened.get_value("kept") == 5
        with pytest.raises(MoiraError):
            reopened.get_value("lost")
        reopened.close()

    def test_append_through_outside_batch(self, tmp_path):
        log = tmp_path / "ops.log"
        store = walstore_database_from_schema(str(log))
        before = self._lines(log)
        store.set_value("direct", 9, now=BASE)
        assert self._lines(log) == before + 1
        store.close()
