"""Tests for the twelve administrative interface programs (§5.1 H)."""

from __future__ import annotations

import pytest

from repro.apps import (
    Chfn,
    Chpobox,
    Chsh,
    DcmMaint,
    FilsysMaint,
    ListMaint,
    MachMaint,
    MailMaint,
    MrCheck,
    MrTest,
    PrinterMaint,
    UserMaint,
)
from repro.core import AthenaDeployment, DeploymentConfig
from repro.errors import MoiraError, MR_PERM
from repro.workload import PopulationSpec


@pytest.fixture(scope="module")
def world():
    d = AthenaDeployment(DeploymentConfig(population=PopulationSpec(
        users=40, unregistered_users=4, nfs_servers=3, maillists=10,
        clusters=2, machines_per_cluster=2, printers=4,
        network_services=8)))
    admin_login = d.handles.logins[0]
    d.make_admin(admin_login)
    admin = d.client_for(admin_login, "adminpw", "apps-test")
    joe_login = d.handles.logins[1]
    joe = d.client_for(joe_login, "joepw", "apps-test")
    return d, admin, joe, joe_login


class TestChsh:
    def test_self_change(self, world):
        d, _, joe, joe_login = world
        chsh = Chsh(joe)
        assert chsh.run(joe_login, "/bin/sh") == "/bin/sh"
        assert chsh.current_shell(joe_login) == "/bin/sh"

    def test_unknown_shell_refused_client_side(self, world):
        _, _, joe, joe_login = world
        with pytest.raises(ValueError):
            Chsh(joe).run(joe_login, "/bin/zsh")

    def test_other_user_denied_before_submission(self, world):
        d, _, joe, _ = world
        other = d.handles.logins[2]
        with pytest.raises(MoiraError) as exc:
            Chsh(joe).run(other, "/bin/sh")
        assert exc.value.code == MR_PERM

    def test_admin_changes_anyone(self, world):
        d, admin, _, _ = world
        target = d.handles.logins[3]
        assert Chsh(admin).run(target, "/bin/ksh") == "/bin/ksh"


class TestChfn:
    def test_partial_update_preserves_other_fields(self, world):
        _, _, joe, joe_login = world
        chfn = Chfn(joe)
        chfn.run(joe_login, nickname="jojo", office_phone="x3-1234")
        info = chfn.get(joe_login)
        assert info.nickname == "jojo"
        assert info.office_phone == "x3-1234"
        assert info.fullname  # preserved from account creation
        chfn.run(joe_login, home_addr="Baker House")
        info2 = chfn.get(joe_login)
        assert info2.nickname == "jojo"
        assert info2.home_addr == "Baker House"

    def test_unknown_field_rejected(self, world):
        _, _, joe, joe_login = world
        with pytest.raises(ValueError):
            Chfn(joe).run(joe_login, shoe_size="11")


class TestChpobox:
    def test_move_between_pop_servers(self, world):
        d, _, joe, joe_login = world
        chpobox = Chpobox(joe)
        target = d.handles.pop_machines[1]
        info = chpobox.set_pop(joe_login, target)
        assert info.box == target

    def test_smtp_forwarding_and_restore(self, world):
        d, _, joe, joe_login = world
        chpobox = Chpobox(joe)
        chpobox.set_pop(joe_login, d.handles.pop_machines[0])
        info = chpobox.set_smtp(joe_login, "joe@media-lab.mit.edu")
        assert info.potype == "SMTP"
        restored = chpobox.restore_pop(joe_login)
        assert restored.potype == "POP"
        assert restored.box == d.handles.pop_machines[0]

    def test_typo_machine_rejected(self, world):
        from repro.errors import MR_MACHINE
        _, _, joe, joe_login = world
        with pytest.raises(MoiraError) as exc:
            Chpobox(joe).set_pop(joe_login, "E40-P0.MIT.EDU")
        assert exc.value.code == MR_MACHINE


class TestMailMaint:
    def test_self_service_join_leave(self, world):
        d, admin, joe, joe_login = world
        ListMaint(admin).create("open-club", public=True)
        mm = MailMaint(joe, joe_login)
        assert "open-club" in mm.public_lists()
        mm.join("open-club")
        assert "open-club" in mm.my_lists()
        mm.leave("open-club")
        assert "open-club" not in mm.my_lists()

    def test_private_list_join_denied(self, world):
        d, admin, joe, joe_login = world
        ListMaint(admin).create("closed-club", public=False)
        with pytest.raises(MoiraError) as exc:
            MailMaint(joe, joe_login).join("closed-club")
        assert exc.value.code == MR_PERM


class TestListMaint:
    def test_create_flags_rename_delete(self, world):
        _, admin, _, _ = world
        lm = ListMaint(admin)
        info = lm.create("lm-test", group=True, description="x")
        assert info.group
        assert info.gid > 0
        info = lm.set_flags("lm-test", hidden=True)
        assert info.hidden
        info = lm.rename("lm-test", "lm-test2")
        assert info.name == "lm-test2"
        lm.delete("lm-test2")
        assert lm.expand("lm-test*") == []

    def test_membership_via_menu(self, world):
        d, admin, _, _ = world
        lm = ListMaint(admin)
        lm.create("menu-list")
        member = d.handles.logins[4]
        from repro.client.menu import MenuSession
        session = MenuSession(lm.build_menu(), inputs=[
            "4",                       # membership submenu
            "2", "menu-list", "USER", member,   # add member
            "1", "menu-list",          # show members
            "q", "q",
        ])
        session.run()
        assert lm.members("menu-list") == [("USER", member)]


class TestUserMaint:
    def test_quota_change_example(self, world):
        """The paper's first motivating example, end to end."""
        d, admin, _, _ = world
        um = UserMaint(admin)
        target = d.handles.logins[5]
        old = um.get_quota(target)
        assert um.set_quota(target, old + 200) == old + 200

    def test_account_lifecycle(self, world):
        _, admin, _, _ = world
        um = UserMaint(admin)
        um.add_account("lifecycle", "Life", "Cycle", "STAFF")
        assert um.lookup("lifecycle")["status"] == 1
        um.deactivate("lifecycle")
        assert um.lookup("lifecycle")["status"] == 3
        um.remove("lifecycle")
        with pytest.raises(MoiraError):
            um.lookup("lifecycle")

    def test_lookup_by_name(self, world):
        d, admin, _, _ = world
        um = UserMaint(admin)
        hits = um.lookup_by_name("*", "*")
        assert len(hits) >= 40


class TestMachMaint:
    def test_cluster_workflow(self, world):
        _, admin, _, _ = world
        mm = MachMaint(admin)
        mm.add_machine("APPTEST.MIT.EDU", "RT")
        mm.add_cluster("apptest-cluster", "test", "nowhere")
        mm.assign("APPTEST.MIT.EDU", "apptest-cluster")
        assert ("APPTEST.MIT.EDU", "apptest-cluster") in mm.map()
        mm.add_cluster_data("apptest-cluster", "zephyr", "Z9.MIT.EDU")
        assert ("apptest-cluster", "zephyr", "Z9.MIT.EDU") in \
            mm.get_cluster_data()
        mm.delete_cluster_data("apptest-cluster", "zephyr", "Z9.MIT.EDU")
        mm.unassign("APPTEST.MIT.EDU", "apptest-cluster")
        mm.delete_cluster("apptest-cluster")
        mm.delete_machine("APPTEST.MIT.EDU")


class TestFilsysMaint:
    def test_project_locker_workflow(self, world):
        d, admin, _, _ = world
        fm = FilsysMaint(admin)
        machine = d.handles.nfs_machines[0]
        owner = d.handles.logins[6]
        group = d.handles.logins[6]  # personal group shares the login
        before = fm.free_space(machine, "/u1")
        fm.add("projx", machine, "/u1/projx", "/mit/projx", owner, group)
        fm.add_quota("projx", owner, 1000)
        assert fm.free_space(machine, "/u1") == before - 1000
        assert (owner, 1000) in fm.quotas_on_partition(machine, "/u1")
        fm.delete_quota("projx", owner)
        fm.delete("projx")
        assert fm.free_space(machine, "/u1") == before


class TestPrinterMaint:
    def test_crud(self, world):
        d, admin, _, _ = world
        pm = PrinterMaint(admin)
        host = d.handles.hesiod_machine
        pm.add("apptest-lp", host)
        assert any(p["printer"] == "apptest-lp" for p in pm.get("*"))
        pm.delete("apptest-lp")
        assert not any(p["printer"] == "apptest-lp" for p in pm.get("*"))


class TestDcmMaint:
    def test_status_and_force_update(self, world):
        d, admin, _, _ = world
        dm = DcmMaint(admin)
        statuses = {s.service for s in dm.service_status("*")}
        assert {"HESIOD", "NFS", "MAIL", "ZEPHYR"} <= statuses
        assert d.handles.hesiod_machine in dm.locations("HESIOD")
        before = d.dcm.runs
        dm.force_update("HESIOD", d.handles.hesiod_machine)
        assert d.dcm.runs == before + 1
        # the forced update really happened
        host = dm.host_status("HESIOD")[0]
        assert host.success

    def test_enable_disable(self, world):
        _, admin, _, _ = world
        dm = DcmMaint(admin)
        dm.disable_service("MAIL")
        assert not dm.service_status("MAIL")[0].enabled
        dm.enable_service("MAIL")
        assert dm.service_status("MAIL")[0].enabled


class TestMrTest:
    def test_query_and_history(self, world):
        _, admin, _, _ = world
        mt = MrTest(admin)
        result = mt.run("get_machine", "*")
        assert result.ok
        assert result.tuples
        assert "tuple" in result.render()
        assert mt.history[-1] is result

    def test_denied_query_shows_code(self, world):
        _, _, joe, _ = world
        mt = MrTest(joe)
        result = mt.run("add_machine", "NOPE.MIT.EDU", "VAX")
        assert not result.ok
        assert result.code == MR_PERM
        assert "permission" in result.render().lower()

    def test_builtins(self, world):
        _, admin, _, _ = world
        mt = MrTest(admin)
        assert len(mt.list_queries()) > 100
        assert "gubl" in mt.help("get_user_by_login")
        assert mt.list_users()


class TestMrCheck:
    def test_clean_database(self, world):
        d, _, _, _ = world
        assert MrCheck(d.db).run() == []

    def test_detects_dangling_member(self, world):
        d, _, _, _ = world
        d.db.table("members").insert(
            {"list_id": 999999, "member_type": "USER",
             "member_id": 888888})
        problems = MrCheck(d.db).run()
        assert any("missing list" in p for p in problems)
        assert any("dangling USER member" in p for p in problems)
        # clean up for other tests sharing the module fixture
        rows = d.db.table("members").select({"list_id": 999999})
        d.db.table("members").delete_rows(rows)

    def test_detects_allocation_drift(self, world):
        d, _, _, _ = world
        phys = d.db.table("nfsphys").rows[0]
        phys["allocated"] += 7
        problems = MrCheck(d.db).run()
        assert any("quota sum" in p for p in problems)
        phys["allocated"] -= 7
