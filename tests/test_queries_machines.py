"""Tests for machine/cluster queries (§7.0.2)."""

from __future__ import annotations

import pytest

from repro.errors import (
    MoiraError,
    MR_CLUSTER,
    MR_IN_USE,
    MR_MACHINE,
    MR_NO_MATCH,
    MR_NOT_UNIQUE,
    MR_TYPE,
)
from tests.conftest import make_user


def expect_error(code, fn, *args):
    with pytest.raises(MoiraError) as exc:
        fn(*args)
    assert exc.value.code == code, exc.value


class TestMachines:
    def test_names_uppercased(self, run):
        run("add_machine", "suomi.mit.edu", "VAX")
        assert run("get_machine", "SUOMI.MIT.EDU")[0][0] == \
            "SUOMI.MIT.EDU"
        # case-insensitive lookup
        assert run("get_machine", "suomi.mit.edu")[0][0] == \
            "SUOMI.MIT.EDU"

    def test_type_validated_against_aliases(self, run):
        expect_error(MR_TYPE, run, "add_machine", "BAD.MIT.EDU", "SUN")
        run("add_machine", "OK1.MIT.EDU", "VAX")
        run("add_machine", "OK2.MIT.EDU", "rt")  # case-folded type
        assert run("get_machine", "OK2.MIT.EDU")[0][1] == "RT"

    def test_duplicate_rejected(self, run):
        run("add_machine", "DUP.MIT.EDU", "VAX")
        expect_error(MR_NOT_UNIQUE, run, "add_machine", "dup.mit.edu",
                     "RT")

    def test_update(self, run):
        run("add_machine", "OLD.MIT.EDU", "VAX")
        run("update_machine", "OLD.MIT.EDU", "NEW.MIT.EDU", "RT")
        assert run("get_machine", "NEW.MIT.EDU")[0][1] == "RT"
        expect_error(MR_NO_MATCH, run, "get_machine", "OLD.MIT.EDU")

    def test_delete_in_use_as_pobox(self, run):
        run("add_machine", "PO.MIT.EDU", "VAX")
        make_user(run, "boxed")
        run("set_pobox", "boxed", "POP", "PO.MIT.EDU")
        expect_error(MR_IN_USE, run, "delete_machine", "PO.MIT.EDU")

    def test_delete_in_use_as_nfs_server(self, run):
        run("add_machine", "FS.MIT.EDU", "VAX")
        run("add_nfsphys", "FS.MIT.EDU", "/u1", "ra81", 1, 0, 1000)
        expect_error(MR_IN_USE, run, "delete_machine", "FS.MIT.EDU")

    def test_delete_free_machine(self, run):
        run("add_machine", "FREE.MIT.EDU", "VAX")
        run("delete_machine", "FREE.MIT.EDU")
        expect_error(MR_NO_MATCH, run, "get_machine", "FREE.MIT.EDU")

    def test_delete_unknown(self, run):
        expect_error(MR_MACHINE, run, "delete_machine", "GHOST.MIT.EDU")


class TestClusters:
    def test_add_get(self, run):
        run("add_cluster", "bldge40-vs", "E40 vaxstations", "Building E40")
        row = run("get_cluster", "bldge40-*")[0]
        assert row[0] == "bldge40-vs"
        assert row[2] == "Building E40"

    def test_cluster_names_case_sensitive(self, run):
        run("add_cluster", "Alpha", "", "")
        run("add_cluster", "alpha", "", "")  # distinct: case matters
        assert len(run("get_cluster", "*lpha")) >= 1

    def test_update(self, run):
        run("add_cluster", "c1", "d", "l")
        run("update_cluster", "c1", "c2", "d2", "l2")
        assert run("get_cluster", "c2")[0][1] == "d2"

    def test_delete_with_machines_refused(self, run):
        run("add_cluster", "full", "", "")
        run("add_machine", "M.MIT.EDU", "VAX")
        run("add_machine_to_cluster", "M.MIT.EDU", "full")
        expect_error(MR_IN_USE, run, "delete_cluster", "full")

    def test_delete_removes_service_data(self, run, db):
        run("add_cluster", "doomed", "", "")
        run("add_cluster_data", "doomed", "zephyr", "Z1.MIT.EDU")
        run("delete_cluster", "doomed")
        assert not db.table("svc").rows

    def test_unknown_cluster(self, run):
        expect_error(MR_CLUSTER, run, "update_cluster", "ghost", "x",
                     "", "")


class TestMachineClusterMap:
    def test_add_and_map(self, run):
        run("add_cluster", "c", "", "")
        run("add_machine", "M1.MIT.EDU", "VAX")
        run("add_machine", "M2.MIT.EDU", "RT")
        run("add_machine_to_cluster", "M1.MIT.EDU", "c")
        run("add_machine_to_cluster", "M2.MIT.EDU", "c")
        rows = run("get_machine_to_cluster_map", "*", "*")
        assert sorted(rows) == [("M1.MIT.EDU", "c"), ("M2.MIT.EDU", "c")]

    def test_machine_in_multiple_clusters(self, run):
        run("add_cluster", "c1", "", "")
        run("add_cluster", "c2", "", "")
        run("add_machine", "M.MIT.EDU", "VAX")
        run("add_machine_to_cluster", "M.MIT.EDU", "c1")
        run("add_machine_to_cluster", "M.MIT.EDU", "c2")
        rows = run("get_machine_to_cluster_map", "M*", "*")
        assert len(rows) == 2

    def test_delete_mapping(self, run):
        run("add_cluster", "c", "", "")
        run("add_machine", "M.MIT.EDU", "VAX")
        run("add_machine_to_cluster", "M.MIT.EDU", "c")
        run("delete_machine_from_cluster", "M.MIT.EDU", "c")
        expect_error(MR_NO_MATCH, run, "get_machine_to_cluster_map",
                     "M*", "*")

    def test_delete_absent_mapping(self, run):
        run("add_cluster", "c", "", "")
        run("add_machine", "M.MIT.EDU", "VAX")
        expect_error(MR_NO_MATCH, run, "delete_machine_from_cluster",
                     "M.MIT.EDU", "c")

    def test_wildcard_map_filtering(self, run):
        run("add_cluster", "east", "", "")
        run("add_cluster", "west", "", "")
        run("add_machine", "E1.MIT.EDU", "VAX")
        run("add_machine", "W1.MIT.EDU", "VAX")
        run("add_machine_to_cluster", "E1.MIT.EDU", "east")
        run("add_machine_to_cluster", "W1.MIT.EDU", "west")
        rows = run("get_machine_to_cluster_map", "*", "e*")
        assert rows == [("E1.MIT.EDU", "east")]


class TestClusterData:
    def test_add_requires_registered_label(self, run):
        run("add_cluster", "c", "", "")
        expect_error(MR_TYPE, run, "add_cluster_data", "c", "bogus",
                     "data")
        run("add_cluster_data", "c", "zephyr", "Z1.MIT.EDU")

    def test_get_by_cluster_and_label(self, run):
        run("add_cluster", "c1", "", "")
        run("add_cluster", "c2", "", "")
        run("add_cluster_data", "c1", "zephyr", "Z1")
        run("add_cluster_data", "c1", "lpr", "e40")
        run("add_cluster_data", "c2", "zephyr", "Z2")
        assert len(run("get_cluster_data", "c1", "*")) == 2
        assert len(run("get_cluster_data", "*", "zephyr")) == 2

    def test_delete_exact(self, run):
        run("add_cluster", "c", "", "")
        run("add_cluster_data", "c", "zephyr", "Z1")
        run("delete_cluster_data", "c", "zephyr", "Z1")
        expect_error(MR_NO_MATCH, run, "get_cluster_data", "c", "*")

    def test_delete_requires_exact_match(self, run):
        run("add_cluster", "c", "", "")
        run("add_cluster_data", "c", "zephyr", "Z1")
        expect_error(MR_NOT_UNIQUE, run, "delete_cluster_data", "c",
                     "zephyr", "other")
