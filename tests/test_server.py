"""Tests for the Moira server: auth, access control, caching, specials."""

from __future__ import annotations

import pytest

from repro.client import MoiraClient
from repro.errors import (
    MR_ARGS,
    MR_NO_HANDLE,
    MR_PERM,
    MoiraError,
)
from repro.protocol.wire import MajorRequest, encode_request
from tests.conftest import make_user


class TestNoop:
    def test_noop(self, admin_client):
        assert admin_client.mr_noop() == 0

    def test_noop_unauthenticated(self, server):
        c = MoiraClient(dispatcher=server)
        c.connect()
        assert c.mr_noop() == 0
        c.close()


class TestAuthentication:
    def test_unauthenticated_query_denied_for_private_queries(self,
                                                              server,
                                                              run):
        make_user(run, "target")
        c = MoiraClient(dispatcher=server)
        c.connect()
        code = c.mr_query("update_user_shell", ["target", "/bin/sh"])
        assert code == MR_PERM
        c.close()

    def test_public_queries_work_unauthenticated(self, server, run):
        """mr_connect doesn't authenticate because "simple read-only
        queries ... may not need authentication"."""
        run("add_machine", "PUB.MIT.EDU", "VAX")
        c = MoiraClient(dispatcher=server)
        c.connect()
        assert c.query("get_machine", "PUB*")[0][0] == "PUB.MIT.EDU"
        c.close()

    def test_auth_binds_principal_to_connection(self, admin_client, run,
                                                db):
        admin_client.query("add_machine", "AUDIT.MIT.EDU", "VAX")
        row = db.table("machine").select({"name": "AUDIT.MIT.EDU"})[0]
        assert row["modby"] == "admin"
        assert row["modwith"] == "pytest"

    def test_failed_auth_keeps_connection_unauthenticated(self, server,
                                                          kdc, clock,
                                                          run):
        make_user(run, "sneaky")
        kdc.add_principal("sneaky", "pw")
        creds = kdc.kinit("sneaky", "pw")
        c = MoiraClient(dispatcher=server, kdc=kdc, credentials=creds,
                        clock=clock)
        c.connect()
        # expire the ticket before using it
        ticket = kdc.get_service_ticket(creds, "moira", lifetime=10)
        clock.advance(100)
        code = c.mr_auth("expired")
        assert code != 0
        assert server.stats.auth_failures == 1
        c.close()


class TestAccessControl:
    def test_capability_list_grants(self, admin_client):
        assert admin_client.mr_query("add_machine", ["X.MIT.EDU",
                                                     "VAX"]) == 0

    def test_non_admin_denied(self, user_client):
        code = user_client.mr_query("add_machine", ["Y.MIT.EDU", "VAX"])
        assert code == MR_PERM

    def test_self_service_relaxation(self, user_client):
        assert user_client.mr_query("update_user_shell",
                                    ["joeuser", "/bin/sh"]) == 0

    def test_self_service_does_not_extend_to_others(self, user_client,
                                                    run):
        make_user(run, "other")
        code = user_client.mr_query("update_user_shell",
                                    ["other", "/bin/sh"])
        assert code == MR_PERM

    def test_public_list_self_add(self, user_client, run):
        run("add_list", "open-list", 1, 1, 0, 1, 0, 0, "NONE", "NONE",
            "d")
        assert user_client.mr_query(
            "add_member_to_list", ["open-list", "USER", "joeuser"]) == 0
        # but cannot add someone else
        make_user(run, "bystander")
        assert user_client.mr_query(
            "add_member_to_list",
            ["open-list", "USER", "bystander"]) == MR_PERM

    def test_private_list_self_add_denied(self, user_client, run):
        run("add_list", "closed-list", 1, 0, 0, 1, 0, 0, "NONE", "NONE",
            "d")
        assert user_client.mr_query(
            "add_member_to_list",
            ["closed-list", "USER", "joeuser"]) == MR_PERM

    def test_list_ace_governs_management(self, user_client, run):
        run("add_list", "mine", 1, 0, 0, 1, 0, 0, "USER", "joeuser", "d")
        make_user(run, "friend")
        assert user_client.mr_query(
            "add_member_to_list", ["mine", "USER", "friend"]) == 0

    def test_access_request_matches_query_behaviour(self, user_client,
                                                    run):
        """The Access major request predicts Query's permission result."""
        make_user(run, "other2")
        assert user_client.access("update_user_shell", "joeuser", "/s")
        assert not user_client.access("update_user_shell", "other2",
                                      "/s")

    def test_hidden_list_info_restricted(self, user_client, admin_client,
                                         run):
        run("add_list", "secret-l", 1, 0, 1, 1, 0, 0, "NONE", "NONE",
            "d")
        code = user_client.mr_query("get_list_info", ["secret-l"])
        assert code == MR_PERM
        assert admin_client.query("get_list_info", "secret-l")


class TestAccessCache:
    def test_cache_hits_on_repeated_check(self, server, user_client):
        server.access_cache.hits = server.access_cache.misses = 0
        user_client.access("update_user_shell", "joeuser", "/bin/sh")
        before_hits = server.access_cache.hits
        user_client.access("update_user_shell", "joeuser", "/bin/sh")
        assert server.access_cache.hits == before_hits + 1

    def test_mutation_invalidates(self, server, user_client, run):
        user_client.access("update_user_shell", "joeuser", "/bin/sh")
        gen = server.access_cache.generation
        user_client.query("update_user_shell", "joeuser", "/bin/sh")
        assert server.access_cache.generation > gen

    def test_denial_also_cached(self, server, user_client, run):
        make_user(run, "somebody")
        user_client.mr_query("update_user_shell", ["somebody", "/s"])
        hits = server.access_cache.hits
        user_client.mr_query("update_user_shell", ["somebody", "/s"])
        assert server.access_cache.hits == hits + 1

    def test_disabled_cache_never_hits(self, db, clock, kdc, run):
        from repro.server import MoiraServer, seed_capacls
        from repro.server.access import AccessCache

        server = MoiraServer(db, clock, kdc,
                             access_cache=AccessCache(enabled=False))
        seed_capacls(db)
        make_user(run, "nc")
        kdc.add_principal("nc", "pw")
        c = MoiraClient(dispatcher=server, kdc=kdc,
                        credentials=kdc.kinit("nc", "pw"), clock=clock)
        c.connect().auth("t")
        c.access("update_user_shell", "nc", "/bin/sh")
        c.access("update_user_shell", "nc", "/bin/sh")
        assert server.access_cache.hits == 0
        c.close()


class TestServerRobustness:
    def test_unknown_major_request(self, server):
        conn = server.open_connection("test")
        frame = encode_request(MajorRequest.NOOP, [])
        # corrupt the major number to an undefined value
        body = bytearray(frame[4:])
        body[2] = 77
        replies = server.handle_frame(conn, bytes(body))
        assert replies  # server answers with an error, doesn't crash

    def test_malformed_frame_returns_error(self, server):
        conn = server.open_connection("test")
        replies = server.handle_frame(conn, b"\x00\x02garbage")
        assert len(replies) == 1

    def test_wrong_arg_count(self, admin_client):
        assert admin_client.mr_query("get_machine", []) == MR_ARGS

    def test_unknown_query(self, admin_client):
        assert admin_client.mr_query("bogus", []) == MR_NO_HANDLE

    def test_handler_exception_does_not_kill_server(self, server,
                                                    admin_client,
                                                    monkeypatch):
        from repro.queries import base as qbase

        query = qbase.get_query("get_machine")
        original = query.handler
        monkeypatch.setattr(query, "handler",
                            lambda ctx, args: 1 / 0)
        code = admin_client.mr_query("get_machine", ["*"])
        assert code != 0
        monkeypatch.setattr(query, "handler", original)
        assert admin_client.mr_noop() == 0


class TestListUsers:
    def test_reports_live_connections(self, server, admin_client,
                                      user_client):
        rows = admin_client.query("_list_users")
        principals = {r[0] for r in rows}
        assert "admin" in principals
        assert "joeuser" in principals

    def test_connection_removed_on_close(self, server, admin_client,
                                         user_client):
        user_client.close()
        rows = admin_client.query("_list_users")
        assert "joeuser" not in {r[0] for r in rows}


class TestJournal:
    def test_side_effects_journaled(self, server, admin_client):
        admin_client.query("add_machine", "J.MIT.EDU", "VAX")
        entries = [e for e in server.journal.entries
                   if e.query == "add_machine"]
        assert entries
        assert entries[-1].who == "admin"
        assert entries[-1].args == ("J.MIT.EDU", "VAX")

    def test_retrievals_not_journaled(self, server, admin_client, run):
        run("add_machine", "R.MIT.EDU", "VAX")
        before = len(server.journal)
        admin_client.query("get_machine", "R*")
        assert len(server.journal) == before

    def test_failed_queries_not_journaled(self, server, admin_client):
        before = len(server.journal)
        admin_client.mr_query("add_machine", ["BAD.MIT.EDU", "CRAY"])
        assert len(server.journal) == before
