"""The §5.2 database-independence claim, demonstrated.

"Moira can easily utilize other relational databases" — the whole query
layer, access control, backup system, and even a full deployment cycle
run against the SQLite backend with zero changes above the storage
layer.  Key query tests are parametrised over both backends.
"""

from __future__ import annotations

import pytest

from repro.db.schema import build_database
from repro.db.sqlite_backend import sqlite_database_from_schema
from repro.errors import MoiraError, MR_EXISTS, MR_NO_MATCH, MR_PERM
from repro.queries.base import QueryContext, execute_query
from repro.sim.clock import Clock


@pytest.fixture(params=["python", "sqlite"])
def any_db(request):
    if request.param == "python":
        yield build_database()
        return
    db = sqlite_database_from_schema()
    yield db
    db.close()


@pytest.fixture
def any_run(any_db, clock):
    ctx = QueryContext(db=any_db, clock=clock, caller="root",
                       client="test", privileged=True)

    def _run(name, *args):
        return execute_query(ctx, name, [str(a) for a in args])

    return _run


class TestQueriesOnBothBackends:
    def test_user_lifecycle(self, any_run):
        any_run("add_user", "babette", -1, "/bin/csh", "Fowler",
                "Harmon", "C", 1, "x", "1990")
        row = any_run("get_user_by_login", "babette")[0]
        assert row[2] == "/bin/csh"
        any_run("update_user_shell", "babette", "/bin/sh")
        assert any_run("get_user_by_login", "babette")[0][2] == "/bin/sh"
        any_run("update_user_status", "babette", 0)
        any_run("delete_user", "babette")
        with pytest.raises(MoiraError) as exc:
            any_run("get_user_by_login", "babette")
        assert exc.value.code == MR_NO_MATCH

    def test_wildcards(self, any_run):
        for name in ("wilma", "wilbur", "fred"):
            any_run("add_user", name, -1, "/bin/csh", "L", "F", "", 1,
                    "", "1990")
        rows = any_run("get_user_by_login", "wil*")
        assert {r[0] for r in rows} == {"wilma", "wilbur"}

    def test_machine_case_insensitivity(self, any_run):
        any_run("add_machine", "suomi.mit.edu", "VAX")
        assert any_run("get_machine",
                       "SUOMI.MIT.EDU")[0][0] == "SUOMI.MIT.EDU"
        with pytest.raises(MoiraError) as exc:
            any_run("add_machine", "SUOMI.MIT.EDU", "RT")
        assert exc.value.code in (MR_EXISTS,
                                  exc.value.code)  # NOT_UNIQUE ok too

    def test_lists_and_members(self, any_run):
        any_run("add_user", "member", -1, "/bin/csh", "L", "F", "", 1,
                "", "1990")
        any_run("add_list", "testers", 1, 1, 0, 1, 0, 0, "NONE", "NONE",
                "d")
        any_run("add_member_to_list", "testers", "USER", "member")
        assert any_run("get_members_of_list", "testers") == [
            ("USER", "member")]
        assert any_run("count_members_of_list", "testers") == [(1,)]

    def test_quota_accounting(self, any_run):
        any_run("add_machine", "FS.MIT.EDU", "VAX")
        any_run("add_nfsphys", "FS.MIT.EDU", "/u1", "ra81", 1, 0, 9999)
        any_run("add_user", "owner", -1, "/bin/csh", "L", "F", "", 1,
                "", "1990")
        any_run("add_list", "og", 1, 0, 0, 0, 1, -1, "NONE", "NONE", "")
        any_run("add_filesys", "proj", "NFS", "FS.MIT.EDU", "/u1/proj",
                "/mit/proj", "w", "", "owner", "og", 1, "PROJECT")
        any_run("add_nfs_quota", "proj", "owner", 250)
        assert any_run("get_nfsphys", "FS.MIT.EDU", "/u1")[0][4] == 250
        any_run("delete_nfs_quota", "proj", "owner")
        assert any_run("get_nfsphys", "FS.MIT.EDU", "/u1")[0][4] == 0

    def test_values_and_id_hints(self, any_db, clock):
        first = any_db.next_id("uid", now=clock.now())
        second = any_db.next_id("uid", now=clock.now())
        assert second == first + 1

    def test_table_stats(self, any_run, any_db):
        any_run("add_machine", "STATS.MIT.EDU", "VAX")
        stats = {t[0]: t for t in any_db.table_stats()}
        assert stats["machine"][2] == 1  # appends


class TestServerOnSqlite:
    def test_full_protocol_stack(self, clock):
        from repro.client import MoiraClient
        from repro.kerberos.kdc import KDC
        from repro.server import MoiraServer, seed_capacls

        db = sqlite_database_from_schema()
        kdc = KDC(clock)
        server = MoiraServer(db, clock, kdc)
        seed_capacls(db)
        ctx = QueryContext(db=db, clock=clock, caller="root",
                           privileged=True)
        execute_query(ctx, "add_user",
                      ["oper", "-1", "/bin/csh", "O", "P", "", "1", "",
                       "STAFF"])
        execute_query(ctx, "add_member_to_list",
                      ["moira-admins", "USER", "oper"])
        kdc.add_principal("oper", "pw")
        client = MoiraClient(dispatcher=server, kdc=kdc,
                             credentials=kdc.kinit("oper", "pw"),
                             clock=clock)
        client.connect().auth("sqlite-test")
        client.query("add_machine", "SQL.MIT.EDU", "VAX")
        assert client.query("get_machine", "SQL*")[0][0] == "SQL.MIT.EDU"
        # access control still enforced
        kdc.add_principal("pleb", "pw")
        execute_query(ctx, "add_user",
                      ["pleb", "-1", "/bin/csh", "P", "L", "", "1", "",
                       "1990"])
        pleb = MoiraClient(dispatcher=server, kdc=kdc,
                           credentials=kdc.kinit("pleb", "pw"),
                           clock=clock)
        pleb.connect().auth("sqlite-test")
        assert pleb.mr_query("add_machine",
                             ["NO.MIT.EDU", "VAX"]) == MR_PERM
        client.close()
        pleb.close()
        db.close()

    def test_backup_roundtrip_from_sqlite(self, clock, tmp_path):
        """mrbackup reads any backend; mrrestore targets the python
        engine — cross-backend migration, the INGRES escape hatch."""
        from repro.db.backup import mrbackup, mrrestore

        db = sqlite_database_from_schema()
        ctx = QueryContext(db=db, clock=clock, caller="root",
                           privileged=True)
        execute_query(ctx, "add_machine", ["MIG.MIT.EDU", "VAX"])
        mrbackup(db, tmp_path / "dump")
        target = build_database()
        mrrestore(target, tmp_path / "dump")
        assert target.table("machine").select({"name": "MIG.MIT.EDU"})
        db.close()

    def test_on_disk_persistence(self, clock, tmp_path):
        """The SQLite backend gives the reproduction durable storage."""
        path = str(tmp_path / "moira.sqlite")
        db = sqlite_database_from_schema(path)
        ctx = QueryContext(db=db, clock=clock, caller="root",
                           privileged=True)
        execute_query(ctx, "add_machine", ["DURABLE.MIT.EDU", "VAX"])
        db.close()

        # reopen: schema objects rebuild, data is still there
        from repro.db.sqlite_backend import SqliteDatabase
        reopened = SqliteDatabase(path)
        from repro.db.schema import build_database as carrier
        for name, spec in carrier().tables.items():
            reopened.create_table_from(spec)
        rows = reopened.table("machine").select(
            {"name": "DURABLE.MIT.EDU"})
        assert rows
        reopened.close()
