"""Tests for the C-style mr_* API contract (§5.6.2 return codes)."""

from __future__ import annotations

import pytest

from repro.client import MoiraClient
from repro.errors import (
    MR_ABORTED,
    MR_ALREADY_CONNECTED,
    MR_NOT_CONNECTED,
    MoiraError,
)
from tests.conftest import make_user


class TestConnectionStates:
    def test_double_connect(self, server):
        c = MoiraClient(dispatcher=server)
        assert c.mr_connect() == 0
        assert c.mr_connect() == MR_ALREADY_CONNECTED
        c.close()

    def test_disconnect_without_connect(self, server):
        c = MoiraClient(dispatcher=server)
        assert c.mr_disconnect() == MR_NOT_CONNECTED

    def test_operations_require_connection(self, server):
        c = MoiraClient(dispatcher=server)
        assert c.mr_noop() == MR_NOT_CONNECTED
        assert c.mr_query("get_machine", ["*"]) == MR_NOT_CONNECTED
        assert c.mr_access("get_machine", ["*"]) == MR_NOT_CONNECTED
        assert c.mr_auth("prog") == MR_NOT_CONNECTED
        assert c.mr_trigger_dcm() == MR_NOT_CONNECTED

    def test_disconnect_then_reconnect(self, server):
        c = MoiraClient(dispatcher=server)
        assert c.mr_connect() == 0
        assert c.mr_disconnect() == 0
        assert c.mr_disconnect() == MR_NOT_CONNECTED
        assert c.mr_connect() == 0
        c.close()

    def test_auth_without_kerberos_configured(self, server):
        c = MoiraClient(dispatcher=server)
        c.mr_connect()
        assert c.mr_auth("prog") == MR_ABORTED
        c.close()

    def test_requires_exactly_one_endpoint(self):
        with pytest.raises(ValueError):
            MoiraClient()
        with pytest.raises(ValueError):
            MoiraClient(dispatcher=object(),
                        tcp_address=("localhost", 1))


class TestCallbackContract:
    def test_callback_receives_argc_argv_callarg(self, server, run):
        run("add_machine", "CB1.MIT.EDU", "VAX")
        run("add_machine", "CB2.MIT.EDU", "VAX")
        c = MoiraClient(dispatcher=server)
        c.mr_connect()
        collected = []
        sentinel = object()

        def callback(argc, argv, callarg):
            assert callarg is sentinel
            assert argc == len(argv)
            collected.append(argv)

        code = c.mr_query("get_machine", ["CB*"], callback, sentinel)
        assert code == 0
        assert len(collected) == 2
        c.close()

    def test_callback_not_called_on_error(self, server):
        c = MoiraClient(dispatcher=server)
        c.mr_connect()
        calls = []
        code = c.mr_query("get_machine", ["NOPE*"],
                          lambda *a: calls.append(a))
        assert code != 0
        assert calls == []
        c.close()

    def test_query_without_callback(self, server, run):
        run("add_machine", "NOCB.MIT.EDU", "VAX")
        c = MoiraClient(dispatcher=server)
        c.mr_connect()
        assert c.mr_query("get_machine", ["NOCB*"]) == 0
        c.close()


class TestPythonicWrappers:
    def test_context_manager(self, server, run):
        run("add_machine", "CTX.MIT.EDU", "VAX")
        with MoiraClient(dispatcher=server) as c:
            assert c.query("get_machine", "CTX*")

    def test_query_raises_moira_error(self, server):
        with MoiraClient(dispatcher=server) as c:
            with pytest.raises(MoiraError) as exc:
                c.query("get_machine", "GHOST*")
            assert "No records" in str(exc.value)

    def test_query_maybe_swallows_only_no_match(self, server, run):
        make_user(run, "qm")
        with MoiraClient(dispatcher=server) as c:
            assert c.query_maybe("get_machine", "GHOST*") == []
            # permission errors still raise
            with pytest.raises(MoiraError):
                c.query_maybe("update_user_shell", "qm", "/bin/sh")

    def test_access_returns_bool(self, server, user_client):
        assert user_client.access("update_user_shell", "joeuser",
                                  "/bin/sh") is True
        assert user_client.access("add_machine", "X.MIT.EDU",
                                  "VAX") is False
