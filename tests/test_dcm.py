"""Tests for the Data Control Manager (§5.7) against a small deployment."""

from __future__ import annotations

import pytest

from repro.core import AthenaDeployment, DeploymentConfig
from repro.db.locks import LockMode
from repro.workload import PopulationSpec


@pytest.fixture
def deployment():
    return AthenaDeployment(DeploymentConfig(population=PopulationSpec(
        users=40, unregistered_users=5, nfs_servers=3, maillists=8,
        clusters=3, machines_per_cluster=2, printers=5,
        network_services=12)))


def service_row(d, name):
    return d.db.table("servers").select({"name": name})[0]


def host_rows(d, name):
    return d.db.table("serverhosts").select({"service": name})


class TestBasicCycle:
    def test_nothing_happens_before_interval(self, deployment):
        d = deployment
        report = d.dcm.run_once()
        assert report.ran
        # dfcheck starts at deployment time; nothing is due yet
        assert report.generations == 0
        assert report.propagations_attempted == 0

    def test_full_propagation_after_interval(self, deployment):
        d = deployment
        d.run_hours(7)  # past the 6h hesiod interval
        row = service_row(d, "HESIOD")
        assert row["dfgen"] > 0
        for host in host_rows(d, "HESIOD"):
            assert host["success"] == 1
            assert host["lts"] >= row["dfgen"]

    def test_hesiod_serves_propagated_data(self, deployment):
        d = deployment
        d.run_hours(7)
        login = d.handles.logins[0]
        assert d.hesiod.resolve(login, "passwd")

    def test_intervals_respected(self, deployment):
        d = deployment
        d.run_hours(7)
        # only hesiod (6h) has fired; nfs is 12h, mail/zephyr 24h
        assert service_row(d, "HESIOD")["dfgen"] > 0
        assert service_row(d, "NFS")["dfgen"] == 0
        assert service_row(d, "MAIL")["dfgen"] == 0
        d.run_hours(6)
        assert service_row(d, "NFS")["dfgen"] > 0
        assert service_row(d, "MAIL")["dfgen"] == 0
        d.run_hours(12)
        assert service_row(d, "MAIL")["dfgen"] > 0
        assert service_row(d, "ZEPHYR")["dfgen"] > 0

    def test_no_change_skips_generation(self, deployment):
        """§5.1 E: files only regenerated if data changed."""
        d = deployment
        d.run_hours(7)
        first_dfgen = service_row(d, "HESIOD")["dfgen"]
        d.run_hours(7)  # another interval with NO database changes
        row = service_row(d, "HESIOD")
        assert row["dfgen"] == first_dfgen       # not regenerated
        assert row["dfcheck"] > first_dfgen      # but checked

    def test_change_triggers_regeneration(self, deployment):
        d = deployment
        d.run_hours(7)
        first_dfgen = service_row(d, "HESIOD")["dfgen"]
        d.direct_client().query("add_machine", "NEWBOX.MIT.EDU", "VAX")
        d.run_hours(7)
        assert service_row(d, "HESIOD")["dfgen"] > first_dfgen

    def test_unrelated_change_does_not_regenerate_zephyr(self,
                                                         deployment):
        d = deployment
        d.run_hours(25)
        z_dfgen = service_row(d, "ZEPHYR")["dfgen"]
        # printcap changes don't affect the zephyr extract
        d.direct_client().query("add_machine", "P.MIT.EDU", "VAX")
        d.direct_client().query("add_printcap", "newpr", "P.MIT.EDU",
                                "/sp", "newpr", "")
        d.run_hours(25)
        assert service_row(d, "ZEPHYR")["dfgen"] == z_dfgen
        # but hesiod (which includes printcap.db) did regenerate
        assert service_row(d, "HESIOD")["dfgen"] > z_dfgen


class TestDisabling:
    def test_nodcm_file(self, deployment):
        d = deployment
        d.moira_host.fs.write("/etc/nodcm", b"")
        d.moira_host.fs.fsync()
        report = d.dcm.run_once()
        assert not report.ran
        assert "nodcm" in report.disabled_reason

    def test_dcm_enable_value(self, deployment):
        d = deployment
        d.db.set_value("dcm_enable", 0)
        report = d.dcm.run_once()
        assert not report.ran
        assert report.log  # "logging this action"

    def test_disabled_service_skipped(self, deployment):
        d = deployment
        client = d.direct_client()
        r = client.query("get_server_info", "HESIOD")[0]
        client.query("update_server_info", "HESIOD", r[1], r[2], r[3],
                     r[6], 0, r[11], r[12])
        d.run_hours(7)
        assert service_row(d, "HESIOD")["dfgen"] == 0

    def test_disabled_host_skipped(self, deployment):
        d = deployment
        client = d.direct_client()
        machine = d.handles.nfs_machines[0]
        client.query("update_server_host_info", "NFS", machine, 0, 0, 0,
                     "")
        d.run_hours(13)
        for host in host_rows(d, "NFS"):
            mach = d.db.table("machine").select(
                {"mach_id": host["mach_id"]})[0]
            if mach["name"] == machine:
                assert host["lts"] == 0
            else:
                assert host["lts"] > 0


class TestFailureHandling:
    def test_unreachable_host_is_soft_failure(self, deployment):
        d = deployment
        d.network.partition(d.handles.hesiod_machine)
        d.run_hours(7)
        host = host_rows(d, "HESIOD")[0]
        assert host["success"] == 0
        assert host["hosterror"] == 0          # soft, not hard
        assert host["ltt"] > 0
        assert host["lts"] == 0

    def test_soft_failure_retried_until_success(self, deployment):
        """§5.9 B: "tagged for retry at a later time ... repeated until
        an attempt to update the server succeeds"."""
        d = deployment
        d.network.partition(d.handles.hesiod_machine)
        d.run_hours(7)
        assert host_rows(d, "HESIOD")[0]["lts"] == 0
        d.network.heal(d.handles.hesiod_machine)
        d.run_hours(1)   # next 15-min cron fires; no new generation needed
        host = host_rows(d, "HESIOD")[0]
        assert host["success"] == 1
        assert host["lts"] > 0

    def test_crashed_host_updates_after_reboot(self, deployment):
        d = deployment
        hesiod_host = d.hosts[d.handles.hesiod_machine]
        hesiod_host.crash()
        d.run_hours(7)
        assert host_rows(d, "HESIOD")[0]["success"] == 0
        hesiod_host.reboot()
        d.run_hours(1)
        assert host_rows(d, "HESIOD")[0]["success"] == 1
        # and the rebooted server answers from the new files
        assert d.hesiod.resolve(d.handles.logins[0], "passwd")

    def test_script_failure_is_hard_and_notifies(self, deployment):
        d = deployment
        daemon = d.daemons[d.handles.mailhub_machine]
        daemon.register_command("install_aliases", lambda: 1)
        d.run_hours(25)
        host = host_rows(d, "MAIL")[0]
        assert host["hosterror"] != 0
        assert host["hosterrmsg"]
        # zephyrgram to class MOIRA instance DCM, plus mail
        assert any(n[0] == "MOIRA" and n[1] == "DCM"
                   for n in d.notifications)
        assert d.mail_sent

    def test_hard_host_error_blocks_future_updates(self, deployment):
        d = deployment
        daemon = d.daemons[d.handles.mailhub_machine]
        daemon.register_command("install_aliases", lambda: 1)
        d.run_hours(25)
        tried = host_rows(d, "MAIL")[0]["ltt"]
        d.run_hours(25)
        assert host_rows(d, "MAIL")[0]["ltt"] == tried  # not retried

    def test_replicated_hard_failure_poisons_service(self, deployment):
        """§5.7.1: replicated services stop updating all hosts after a
        hard failure on any host."""
        d = deployment
        first_zephyr = d.handles.zephyr_machines[0]
        d.daemons[first_zephyr].register_command(
            "install_zephyr_acls", lambda: 1)
        d.run_hours(25)
        assert service_row(d, "ZEPHYR")["harderror"] != 0
        # remaining zephyr hosts were not updated after the failure
        updated = [h for h in host_rows(d, "ZEPHYR") if h["lts"] > 0]
        failed = [h for h in host_rows(d, "ZEPHYR")
                  if h["hosterror"] != 0]
        assert len(failed) == 1
        assert len(updated) < len(host_rows(d, "ZEPHYR"))

    def test_reset_error_reenables_service(self, deployment):
        d = deployment
        first_zephyr = d.handles.zephyr_machines[0]
        server = d.zephyr_servers[first_zephyr]
        d.daemons[first_zephyr].register_command(
            "install_zephyr_acls", lambda: 1)
        d.run_hours(25)
        # operator fixes the host and clears the errors
        d.daemons[first_zephyr].register_command(
            "install_zephyr_acls", server.install_acls)
        client = d.direct_client()
        client.query("reset_server_error", "ZEPHYR")
        client.query("reset_server_host_error", "ZEPHYR", first_zephyr)
        d.run_hours(25)
        assert service_row(d, "ZEPHYR")["harderror"] == 0
        assert all(h["success"] == 1 for h in host_rows(d, "ZEPHYR"))


class TestOverride:
    def test_override_forces_immediate_update(self, deployment):
        d = deployment
        d.run_hours(7)
        lts_before = host_rows(d, "HESIOD")[0]["lts"]
        client = d.direct_client()
        client.query("set_server_host_override", "HESIOD",
                     d.handles.hesiod_machine)
        d.clock.advance(60)
        d.dcm.run_once()
        host = host_rows(d, "HESIOD")[0]
        assert host["lts"] > lts_before
        assert host["override"] == 0  # cleared after the forced update


class TestLocking:
    def test_locked_service_skipped(self, deployment):
        d = deployment
        token = d.dcm.locks.acquire("service:HESIOD", LockMode.EXCLUSIVE)
        report = d.dcm.run_once()
        assert report.skipped_locked >= 1
        assert service_row(d, "HESIOD")["dfgen"] == 0
        d.dcm.locks.release("service:HESIOD", token)
        d.clock.advance(3600 * 7)
        d.dcm.run_once()
        assert service_row(d, "HESIOD")["dfgen"] > 0


class TestNfsSpecifics:
    def test_per_host_files_differ(self, deployment):
        d = deployment
        d.run_hours(13)
        quotas = set()
        for name in d.handles.nfs_machines:
            host = d.hosts[name]
            quotas.add(host.fs.read("/etc/nfs/quotas"))
        assert len(quotas) > 1  # hosts got different quota files

    def test_credentials_identical_across_hosts(self, deployment):
        d = deployment
        d.run_hours(13)
        creds = {d.hosts[n].fs.read("/etc/nfs/credentials")
                 for n in d.handles.nfs_machines}
        assert len(creds) == 1

    def test_value3_restricts_credentials(self, deployment):
        d = deployment
        client = d.direct_client()
        restricted = d.handles.nfs_machines[0]
        some_list = d.handles.maillist_names[0]
        client.query("update_server_host_info", "NFS", restricted, 1, 0,
                     0, some_list)
        d.run_hours(13)
        small = d.hosts[restricted].fs.read("/etc/nfs/credentials")
        full = d.hosts[d.handles.nfs_machines[1]].fs.read(
            "/etc/nfs/credentials")
        assert len(small.splitlines()) < len(full.splitlines())

    def test_lockers_created_from_directories_file(self, deployment):
        d = deployment
        d.run_hours(13)
        created = sum(len(s.lockers_created)
                      for s in d.nfs_servers.values())
        assert created == len(d.handles.logins)


class TestTriggerDcm:
    def test_trigger_via_protocol(self, deployment):
        d = deployment
        admin = d.handles.logins[0]
        d.make_admin(admin)
        client = d.client_for(admin, "pw", "dcm_maint")
        runs = d.dcm.runs
        assert client.mr_trigger_dcm() == 0
        assert d.dcm.runs == runs + 1
        client.close()

    def test_trigger_denied_without_capability(self, deployment):
        d = deployment
        from repro.errors import MR_PERM
        user = d.handles.logins[1]
        client = d.client_for(user, "pw", "dcm_maint")
        assert client.mr_trigger_dcm() == MR_PERM
        client.close()


class TestReport:
    def test_report_counts(self, deployment):
        d = deployment
        d.clock.advance(3600 * 25)
        report = d.dcm.run_once()
        assert report.generations == 4          # all four services
        assert report.propagations_attempted == \
            1 + 3 + 1 + 3                       # hesiod+nfs+mail+zephyr
        assert report.propagations_succeeded == \
            report.propagations_attempted
        assert report.bytes_propagated > 0
        assert report.files_generated > 11
