"""Tests for the simulation substrate: clock, cron, network, locks."""

from __future__ import annotations

import pytest

from repro.db.locks import LockHeld, LockManager, LockMode
from repro.sim.clock import Clock
from repro.sim.cron import Cron
from repro.sim.network import Network, NetworkError


class TestClock:
    def test_starts_at_epoch(self):
        assert Clock(1000).now() == 1000

    def test_advance(self):
        c = Clock(0)
        assert c.advance(60) == 60
        assert c.advance_minutes(2) == 180
        assert c.advance_hours(1) == 3780

    def test_no_time_travel(self):
        c = Clock(100)
        with pytest.raises(ValueError):
            c.advance(-1)
        with pytest.raises(ValueError):
            c.set(50)


class TestCron:
    def test_fires_at_interval(self):
        clock = Clock(0)
        cron = Cron(clock)
        fired = []
        cron.add("job", 600, lambda when: fired.append(when))
        cron.run_until(3000)
        assert fired == [600, 1200, 1800, 2400, 3000]

    def test_clock_lands_on_deadline(self):
        clock = Clock(0)
        cron = Cron(clock)
        cron.add("job", 700, lambda when: None)
        cron.run_until(1000)
        assert clock.now() == 1000

    def test_multiple_jobs_fire_in_time_order(self):
        clock = Clock(0)
        cron = Cron(clock)
        order = []
        cron.add("slow", 300, lambda when: order.append(("slow", when)))
        cron.add("fast", 100, lambda when: order.append(("fast", when)))
        cron.run_until(300)
        # ties at t=300 break by scheduling order: "slow" was enqueued
        # for t=300 before "fast" was rescheduled to t=300
        assert order == [("fast", 100), ("fast", 200), ("slow", 300),
                         ("fast", 300)]

    def test_first_delay_override(self):
        clock = Clock(0)
        cron = Cron(clock)
        fired = []
        cron.add("job", 1000, lambda when: fired.append(when),
                 first_delay=10)
        cron.run_until(1010)
        assert fired == [10, 1010]

    def test_removed_job_stops_firing(self):
        clock = Clock(0)
        cron = Cron(clock)
        fired = []
        cron.add("job", 100, lambda when: fired.append(when))
        cron.run_until(100)
        cron.remove("job")
        cron.run_until(500)
        assert fired == [100]

    def test_duplicate_name_rejected(self):
        cron = Cron(Clock(0))
        cron.add("job", 100, lambda when: None)
        with pytest.raises(ValueError):
            cron.add("job", 100, lambda when: None)

    def test_job_sees_schedule_time_not_wall_time(self):
        """Jobs reschedule from their fire time (crontab semantics)."""
        clock = Clock(0)
        cron = Cron(clock)
        fired = []

        def slow_job(when):
            fired.append((when, clock.now()))

        cron.add("job", 100, slow_job)
        count = cron.run_for(350)
        assert count == 3
        assert [w for w, _ in fired] == [100, 200, 300]


class TestNetwork:
    def test_delivery(self):
        net = Network()
        assert net.deliver("HOST", b"abc") == b"abc"
        assert net.messages_delivered == 1
        assert net.bytes_delivered == 3

    def test_partition(self):
        net = Network()
        net.partition("host.mit.edu")
        with pytest.raises(NetworkError):
            net.deliver("HOST.MIT.EDU", b"x")
        net.heal("HOST.MIT.EDU")
        assert net.deliver("host.mit.edu", b"x") == b"x"

    def test_loss_rate_one_always_loses(self):
        net = Network(seed=1)
        net.set_loss_rate("h", 1.0)
        with pytest.raises(NetworkError):
            net.deliver("h", b"x")
        assert net.messages_lost == 1

    def test_corruption_flips_exactly_one_byte(self):
        net = Network(seed=2)
        net.set_corrupt_rate("h", 1.0)
        payload = bytes(range(64))
        damaged = net.deliver("h", payload)
        assert damaged != payload
        assert len(damaged) == len(payload)
        diffs = [i for i, (a, b) in enumerate(zip(payload, damaged))
                 if a != b]
        assert len(diffs) == 1

    def test_determinism_under_seed(self):
        results = []
        for _ in range(2):
            net = Network(seed=7)
            net.set_loss_rate("h", 0.5)
            outcome = []
            for i in range(20):
                try:
                    net.deliver("h", b"x")
                    outcome.append(True)
                except NetworkError:
                    outcome.append(False)
            results.append(outcome)
        assert results[0] == results[1]


class TestLockManager:
    def test_exclusive_excludes_everyone(self):
        lm = LockManager()
        token = lm.acquire("svc", LockMode.EXCLUSIVE)
        assert lm.try_acquire("svc", LockMode.SHARED) is None
        assert lm.try_acquire("svc", LockMode.EXCLUSIVE) is None
        lm.release("svc", token)
        assert lm.try_acquire("svc", LockMode.SHARED) is not None

    def test_shared_allows_sharing(self):
        lm = LockManager()
        t1 = lm.acquire("svc", LockMode.SHARED)
        t2 = lm.acquire("svc", LockMode.SHARED)
        assert lm.try_acquire("svc", LockMode.EXCLUSIVE) is None
        lm.release("svc", t1)
        assert lm.try_acquire("svc", LockMode.EXCLUSIVE) is None
        lm.release("svc", t2)
        assert lm.try_acquire("svc", LockMode.EXCLUSIVE) is not None

    def test_held_context_manager(self):
        lm = LockManager()
        with lm.held("svc", LockMode.EXCLUSIVE):
            assert lm.is_locked("svc")
            with pytest.raises(LockHeld):
                with lm.held("svc", LockMode.SHARED):
                    pass
        assert not lm.is_locked("svc")

    def test_release_wrong_token(self):
        lm = LockManager()
        lm.acquire("svc", LockMode.SHARED)
        with pytest.raises(KeyError):
            lm.release("svc", 999)

    def test_independent_names(self):
        lm = LockManager()
        lm.acquire("a", LockMode.EXCLUSIVE)
        assert lm.try_acquire("b", LockMode.EXCLUSIVE) is not None
