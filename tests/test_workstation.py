"""Tests for the workstation-side consumers: attach and login."""

from __future__ import annotations

import pytest

from repro.apps.workstation import Attach, AttachError, WorkstationLogin
from repro.core import AthenaDeployment, DeploymentConfig
from repro.errors import MoiraError
from repro.workload import PopulationSpec


@pytest.fixture(scope="module")
def world():
    d = AthenaDeployment(DeploymentConfig(population=PopulationSpec(
        users=30, unregistered_users=0, nfs_servers=3, maillists=5,
        clusters=2, machines_per_cluster=2, printers=3,
        network_services=5)))
    d.run_hours(13)   # hesiod + NFS propagated
    attach = Attach(d.hesiod, d.nfs_servers)
    login = WorkstationLogin(d.hesiod, d.kdc, attach)
    return d, attach, login


class TestAttach:
    def test_attach_home_locker(self, world):
        d, attach, _ = world
        user = d.handles.logins[0]
        mount = attach.attach(user, user)
        assert mount.mountpoint == f"/mit/{user}"
        assert mount.mode == "w"
        assert mount.remote_path.endswith(user)

    def test_unknown_filesystem(self, world):
        _, attach, _ = world
        with pytest.raises(AttachError):
            attach.attach("no-such-locker", "whoever")

    def test_credentials_gate_access(self, world):
        d, attach, _ = world
        user = d.handles.logins[1]
        with pytest.raises(AttachError) as exc:
            attach.attach(user, "stranger")
        assert "credentials" in str(exc.value)

    def test_detach(self, world):
        d, attach, _ = world
        user = d.handles.logins[2]
        mount = attach.attach(user, user)
        attach.detach(mount.mountpoint)
        with pytest.raises(AttachError):
            attach.detach(mount.mountpoint)

    def test_new_filesystem_attachable_after_propagation(self, world):
        d, attach, _ = world
        client = d.direct_client()
        owner = d.handles.logins[3]
        machine = d.handles.nfs_machines[0]
        client.query("add_filesys", "shared-proj", "NFS", machine,
                     "/u1/shared-proj", "/mit/shared-proj", "w", "",
                     owner, owner, 1, "PROJECT")
        with pytest.raises(AttachError):
            attach.attach("shared-proj", owner)  # not in hesiod yet
        d.run_hours(7)
        mount = attach.attach("shared-proj", owner)
        assert mount.mountpoint == "/mit/shared-proj"


class TestWorkstationLogin:
    def test_full_login(self, world):
        d, _, login = world
        user = d.handles.logins[0]
        d.kdc.add_principal(user, "pw")
        session = login.login(user, "pw")
        assert session.login == user
        assert session.home == f"/mit/{user}"
        assert session.home_mount is not None
        # the personal group is in the group list
        assert any(name == user for name, _ in session.groups)

    def test_wrong_password(self, world):
        d, _, login = world
        user = d.handles.logins[4]
        d.kdc.add_principal(user, "right")
        with pytest.raises(MoiraError):
            login.login(user, "wrong")

    def test_unknown_user(self, world):
        _, _, login = world
        with pytest.raises(MoiraError):
            login.login("nobody-here", "pw")

    def test_deactivated_user_disappears_after_propagation(self, world):
        """The lifecycle end: a deactivated account stops resolving once
        the DCM pushes new files (Atropos cutting the thread)."""
        d, _, login = world
        user = d.handles.logins[5]
        d.kdc.add_principal(user, "pw")
        assert login.login(user, "pw")
        d.direct_client().query("update_user_status", user, 3)
        d.run_hours(7)
        with pytest.raises(MoiraError):
            login.login(user, "pw")   # no hesiod passwd entry anymore
