"""Journal edge-case tests: since()/after_seq()/tail() bisection
boundaries, group-commit fsync batching, and WAL segment rotation.

The replication tail protocol leans on these exact edges — an empty
log, the first/last retained entry, and the seq gap a checkpoint
truncate leaves behind — so they get direct coverage here instead of
only riding along inside the crash sweeps.
"""

from __future__ import annotations

import os

import pytest

from repro.db.journal import Journal
from repro.db.recovery import checkpoint, recover
from repro.db.schema import build_database
from repro.sim.clock import DEFAULT_EPOCH, Clock

from tests.test_wal_recovery import apply_one, dump, mutations

BASE = DEFAULT_EPOCH + 1000


def fill(journal, n, start=0):
    for i in range(start, start + n):
        journal.record(BASE + i * 10, "root", "q", (str(i),))


class TestBisectionBoundaries:
    def test_empty_log(self):
        journal = Journal()
        assert journal.since(0) == []
        assert journal.since(BASE) == []
        assert journal.after_seq(0) == []
        assert journal.after_seq(99) == []
        assert journal.last_seq() == 0
        assert journal.current_seq() == 0
        assert journal.oldest_seq() == 1
        assert journal.tail(0) == (1, 0, [])

    def test_single_entry(self):
        journal = Journal()
        fill(journal, 1)
        assert [e.seq for e in journal.after_seq(0)] == [1]
        assert journal.after_seq(1) == []
        assert len(journal.since(BASE)) == 1      # exactly at the stamp
        assert len(journal.since(BASE + 1)) == 0  # one past it
        assert journal.tail(0)[2] == journal.entries
        assert journal.tail(1) == (1, 1, [])

    def test_first_and_last_entry_probes(self):
        journal = Journal()
        fill(journal, 20)
        # first retained entry
        assert journal.after_seq(0)[0].seq == 1
        assert journal.since(BASE)[0].seq == 1
        assert journal.since(BASE - 1)[0].seq == 1
        # last retained entry
        assert [e.seq for e in journal.after_seq(19)] == [20]
        assert [e.seq for e in journal.since(BASE + 19 * 10)] == [20]
        # one past the end
        assert journal.after_seq(20) == []
        assert journal.since(BASE + 19 * 10 + 1) == []

    def test_seq_gap_after_truncate(self):
        journal = Journal()
        fill(journal, 10)
        journal.truncate(6)
        # after_seq silently starts at the oldest retained entry...
        assert [e.seq for e in journal.after_seq(3)] == [7, 8, 9, 10]
        assert [e.seq for e in journal.after_seq(6)] == [7, 8, 9, 10]
        assert [e.seq for e in journal.after_seq(9)] == [10]
        # ...but tail() reports the gap so a replica knows to resync
        oldest, current, entries = journal.tail(3)
        assert (oldest, current) == (7, 10)
        assert entries is None
        # the boundary itself is NOT a gap: 6+1 == oldest
        oldest, current, entries = journal.tail(6)
        assert [e.seq for e in entries] == [7, 8, 9, 10]

    def test_current_seq_survives_full_truncate(self):
        journal = Journal()
        fill(journal, 5)
        journal.truncate(5)
        assert journal.last_seq() == 0       # nothing retained
        assert journal.current_seq() == 5    # but history is remembered
        assert journal.oldest_seq() == 6
        assert journal.tail(5) == (6, 5, [])
        # a fresh replica (after_seq=0) must resync, not silently skip
        assert journal.tail(0)[2] is None


class TestGroupCommit:
    @pytest.fixture()
    def fsync_counter(self, monkeypatch):
        import repro.db.journal as journal_mod
        calls = []
        real = os.fsync

        def counting(fd):
            calls.append(fd)
            return real(fd)

        monkeypatch.setattr(journal_mod.os, "fsync", counting)
        return calls

    def test_default_is_fsync_per_append(self, tmp_path, fsync_counter):
        journal = Journal(path=tmp_path / "wal")
        fill(journal, 5)
        assert len(fsync_counter) == 5
        journal.close()
        assert len(fsync_counter) == 5   # nothing pending at close

    def test_batched_fsync(self, tmp_path, fsync_counter):
        journal = Journal(path=tmp_path / "wal", fsync_batch=4)
        fill(journal, 8)
        assert len(fsync_counter) == 2       # once per 4 appends
        fill(journal, 2, start=8)
        journal.close()                      # close syncs the remainder
        assert len(fsync_counter) == 3
        loaded = Journal.load(tmp_path / "wal")
        assert [e.seq for e in loaded.entries] == list(range(1, 11))

    def test_interval_fsync(self, tmp_path, fsync_counter):
        # a huge interval and batch: only the first append (interval
        # elapsed since epoch) and close() sync
        journal = Journal(path=tmp_path / "wal", fsync_batch=10_000,
                          fsync_interval_ms=3_600_000.0)
        fill(journal, 50)
        assert len(fsync_counter) == 1
        journal.close()
        assert len(fsync_counter) == 2
        assert len(Journal.load(tmp_path / "wal").entries) == 50

    def test_truncate_syncs_pending_batch(self, tmp_path):
        journal = Journal(path=tmp_path / "wal", fsync_batch=100)
        fill(journal, 10)
        journal.truncate(4)      # must not lose the unsynced 5..10
        loaded = Journal.load(tmp_path / "wal")
        assert [e.seq for e in loaded.entries] == [5, 6, 7, 8, 9, 10]

    def test_sync_is_idempotent(self, tmp_path, fsync_counter):
        journal = Journal(path=tmp_path / "wal", fsync_batch=100)
        fill(journal, 3)
        assert len(fsync_counter) == 0
        journal.sync()
        journal.sync()           # nothing new to sync
        assert len(fsync_counter) == 1
        journal.close()
        assert len(fsync_counter) == 1


class TestSegmentRotation:
    def test_appends_go_to_segment_files(self, tmp_path):
        wal = tmp_path / "wal"
        journal = Journal(path=wal, rotate_segments=True)
        fill(journal, 10)
        journal.close()
        assert not wal.exists()          # no monolithic file
        segs = journal.segment_files()
        assert [first for first, _ in segs] == [1]

    def test_truncate_unlinks_covered_segments(self, tmp_path):
        wal = tmp_path / "wal"
        journal = Journal(path=wal, rotate_segments=True)
        fill(journal, 10)
        journal.truncate(10)             # checkpoint covers everything
        assert journal.segment_files() == []
        fill(journal, 5, start=10)       # new segment starts at seq 11
        journal.close()
        segs = journal.segment_files()
        assert [first for first, _ in segs] == [11]
        loaded = Journal.load(wal)
        assert [e.seq for e in loaded.entries] == [11, 12, 13, 14, 15]
        assert loaded.rotate_segments    # auto-detected

    def test_truncate_rewrites_straddling_segment(self, tmp_path):
        wal = tmp_path / "wal"
        journal = Journal(path=wal, rotate_segments=True)
        fill(journal, 10)
        journal.truncate(4)              # watermark inside the segment
        segs = journal.segment_files()
        assert [first for first, _ in segs] == [5]
        loaded = Journal.load(wal)
        assert [e.seq for e in loaded.entries] == [5, 6, 7, 8, 9, 10]

    def test_compaction_across_checkpoints(self, tmp_path):
        """Repeated checkpoint cycles keep the segment count bounded:
        covered segments are unlinked, never rescanned or rewritten."""
        wal = tmp_path / "wal"
        journal = Journal(path=wal, rotate_segments=True)
        for cycle in range(5):
            fill(journal, 20, start=cycle * 20)
            assert len(journal.segment_files()) == 1
            journal.truncate(journal.last_seq())
            assert journal.segment_files() == []
        assert journal.current_seq() == 100

    def test_torn_tail_in_segment_is_scrubbed(self, tmp_path):
        wal = tmp_path / "wal"
        journal = Journal(path=wal, rotate_segments=True)
        fill(journal, 3)
        journal.close()
        seg = journal.segment_files()[0][1]
        with open(seg, "a", encoding="utf-8") as fh:
            fh.write('{"seq": 4, "when": 567')     # torn mid-record
        loaded = Journal.load(wal)
        assert loaded.torn_tail
        assert [e.seq for e in loaded.entries] == [1, 2, 3]
        # the torn record is scrubbed: appends go to a NEW segment a
        # future load reads past (no stopping short at the old tear)
        loaded.record(BASE, "root", "q", ())
        loaded.close()
        again = Journal.load(wal)
        assert [e.seq for e in again.entries] == [1, 2, 3, 4]
        assert not again.torn_tail

    def test_checkpoint_recover_with_segments(self, tmp_path):
        """The PR 4 recovery protocol is segment-agnostic end to end."""
        db = build_database()
        journal = Journal(path=tmp_path / "wal", rotate_segments=True)
        clock = Clock()
        muts = mutations(12)
        for i, (name, args) in enumerate(muts[:8]):
            apply_one(db, journal, clock, BASE + i * 10, name, args)
        checkpoint(db, journal, tmp_path / "snap")
        for i, (name, args) in enumerate(muts[8:], start=8):
            apply_one(db, journal, clock, BASE + i * 10, name, args)
        journal.close()
        rec = recover(tmp_path / "snap", wal_path=tmp_path / "wal")
        assert rec.replayed == 4
        assert dump(rec.db, tmp_path / "d1") == dump(db, tmp_path / "d2")
