"""Content-fidelity tests: generated files match the paper's §5.8.2
example formats line for line."""

from __future__ import annotations

import pytest

from repro.db.schema import build_database
from repro.dcm.generators import get_generator
from repro.dcm.generators.base import GenContext
from repro.queries.base import QueryContext, execute_query
from repro.sim.clock import Clock


@pytest.fixture
def world():
    """A tiny hand-built world matching the paper's examples."""
    db = build_database()
    clock = Clock()
    ctx = QueryContext(db=db, clock=clock, caller="root",
                       client="test", privileged=True)

    def run(name, *args):
        return execute_query(ctx, name, [str(a) for a in args])

    run("add_machine", "CHARON.MIT.EDU", "VAX")
    run("add_machine", "ATHENA-PO-2.MIT.EDU", "VAX")
    run("add_machine", "BLANKET.MIT.EDU", "VAX")
    run("add_machine", "SCARECROW.MIT.EDU", "RT")
    run("add_machine", "TOTO.MIT.EDU", "RT")
    run("add_nfsphys", "CHARON.MIT.EDU", "/u1", "ra81a", 1, 0, 100000)

    run("add_user", "babette", 6530, "/bin/csh", "Fowler", "Harmon",
        "C", 1, "xx", "1990")
    run("set_pobox", "babette", "POP", "ATHENA-PO-2.MIT.EDU")
    run("add_list", "babette", 1, 0, 0, 0, 1, 10914, "USER", "babette",
        "personal group")
    run("add_member_to_list", "babette", "USER", "babette")
    run("add_filesys", "babette", "NFS", "CHARON.MIT.EDU",
        "/u1/babette", "/mit/babette", "w", "", "babette", "babette",
        1, "HOMEDIR")
    run("add_nfs_quota", "babette", "babette", 300)

    run("add_list", "video-users", 1, 1, 0, 1, 0, 0, "USER", "babette",
        "Video Users")
    run("add_member_to_list", "video-users", "USER", "babette")
    run("add_member_to_list", "video-users", "STRING",
        "rubin@media-lab.mit.edu")

    run("add_cluster", "bldge40-rt", "E40 RTs", "E40")
    run("add_cluster_data", "bldge40-rt", "lpr", "e40")
    run("add_cluster", "bldge40-vs", "E40 vaxstations", "E40")
    run("add_cluster_data", "bldge40-vs", "zephyr", "neskaya.mit.edu")
    run("add_machine_to_cluster", "SCARECROW.MIT.EDU", "bldge40-rt")
    # TOTO lives in two clusters -> pseudo-cluster
    run("add_machine_to_cluster", "TOTO.MIT.EDU", "bldge40-rt")
    run("add_machine_to_cluster", "TOTO.MIT.EDU", "bldge40-vs")

    run("add_printcap", "linus", "BLANKET.MIT.EDU",
        "/usr/spool/printer/linus", "linus", "")
    run("add_service", "smtp", "TCP", 25, "mail")
    run("add_server_info", "HESIOD", 360, "/tmp/h.out", "h.sh",
        "REPLICAT", 1, "NONE", "NONE")
    run("add_server_host_info", "HESIOD", "CHARON.MIT.EDU", 1, 0, 0, "")
    run("add_zephyr_class", "message", "LIST", "video-users", "NONE",
        "NONE", "NONE", "NONE", "USER", "babette")
    return db, clock, run


def generate(db, clock, service):
    gen = get_generator(service)
    hosts = db.table("serverhosts").select({"service": service.upper()})
    return gen.generate(GenContext(db, clock.now(), hosts=hosts))


def lines_of(result, path):
    return result.files[path].decode().splitlines()


class TestHesiodFormats:
    def test_passwd_record_format(self, world):
        db, clock, _ = world
        result = generate(db, clock, "HESIOD")
        lines = lines_of(result, "/etc/hesiod/passwd.db")
        assert lines == [
            'babette.passwd HS UNSPECA "babette:*:6530:101:'
            'Harmon C Fowler,,,,:/mit/babette:/bin/csh"'
        ]

    def test_uid_cname_pairs_passwd(self, world):
        db, clock, _ = world
        result = generate(db, clock, "HESIOD")
        assert lines_of(result, "/etc/hesiod/uid.db") == [
            "6530.uid HS CNAME babette.passwd"
        ]

    def test_pobox_record(self, world):
        db, clock, _ = world
        result = generate(db, clock, "HESIOD")
        assert lines_of(result, "/etc/hesiod/pobox.db") == [
            'babette.pobox HS UNSPECA "POP ATHENA-PO-2.MIT.EDU babette"'
        ]

    def test_group_and_gid_records(self, world):
        db, clock, _ = world
        result = generate(db, clock, "HESIOD")
        assert lines_of(result, "/etc/hesiod/group.db") == [
            'babette.group HS UNSPECA "babette:*:10914:"'
        ]
        assert lines_of(result, "/etc/hesiod/gid.db") == [
            "10914.gid HS CNAME babette.group"
        ]

    def test_grplist_pairs(self, world):
        db, clock, _ = world
        result = generate(db, clock, "HESIOD")
        assert lines_of(result, "/etc/hesiod/grplist.db") == [
            'babette.grplist HS UNSPECA "babette:10914"'
        ]

    def test_filsys_record(self, world):
        db, clock, _ = world
        result = generate(db, clock, "HESIOD")
        assert lines_of(result, "/etc/hesiod/filsys.db") == [
            'babette.filsys HS UNSPECA '
            '"NFS /u1/babette charon w /mit/babette"'
        ]

    def test_printcap_record(self, world):
        db, clock, _ = world
        result = generate(db, clock, "HESIOD")
        assert lines_of(result, "/etc/hesiod/printcap.db") == [
            'linus.pcap HS UNSPECA "linus:rp=linus:rm=BLANKET.MIT.EDU:'
            'sd=/usr/spool/printer/linus"'
        ]

    def test_service_record_lowercases_protocol(self, world):
        db, clock, _ = world
        result = generate(db, clock, "HESIOD")
        assert lines_of(result, "/etc/hesiod/service.db") == [
            'smtp.service HS UNSPECA "smtp tcp 25"'
        ]

    def test_sloc_record(self, world):
        db, clock, _ = world
        result = generate(db, clock, "HESIOD")
        assert lines_of(result, "/etc/hesiod/sloc.db") == [
            "HESIOD.sloc HS UNSPECA CHARON.MIT.EDU"
        ]

    def test_cluster_single_membership_cname(self, world):
        db, clock, _ = world
        result = generate(db, clock, "HESIOD")
        lines = lines_of(result, "/etc/hesiod/cluster.db")
        assert 'bldge40-rt.cluster HS UNSPECA "lpr e40"' in lines
        assert 'bldge40-vs.cluster HS UNSPECA ' \
               '"zephyr neskaya.mit.edu"' in lines
        assert "SCARECROW.MIT.EDU.cluster HS CNAME " \
               "bldge40-rt.cluster" in lines

    def test_multi_cluster_machine_gets_pseudo_cluster(self, world):
        """§5.8.2: "a pseudo-cluster will be made by Moira which has as
        its cluster data the union ... Then the machine in question
        will be CNAME'd into this pseudo-cluster."""
        db, clock, _ = world
        result = generate(db, clock, "HESIOD")
        lines = lines_of(result, "/etc/hesiod/cluster.db")
        assert "TOTO.MIT.EDU.cluster HS CNAME toto-pseudo.cluster" in \
            lines
        pseudo = [l for l in lines if l.startswith("toto-pseudo")]
        assert 'toto-pseudo.cluster HS UNSPECA "lpr e40"' in pseudo
        assert 'toto-pseudo.cluster HS UNSPECA ' \
               '"zephyr neskaya.mit.edu"' in pseudo

    def test_inactive_users_excluded(self, world):
        db, clock, run = world
        run("add_user", "ghost", 7000, "/bin/csh", "Ghost", "G", "", 0,
            "", "1990")
        result = generate(db, clock, "HESIOD")
        assert "ghost" not in result.files[
            "/etc/hesiod/passwd.db"].decode()

    def test_inactive_groups_excluded(self, world):
        db, clock, run = world
        run("add_list", "dead-group", 0, 0, 0, 0, 1, 999, "NONE", "NONE",
            "inactive")
        result = generate(db, clock, "HESIOD")
        assert "dead-group" not in result.files[
            "/etc/hesiod/group.db"].decode()

    def test_output_parses_in_hesiod_server(self, world):
        """The generator output and the consumer agree on the format."""
        from repro.hosts.host import SimulatedHost
        from repro.servers.hesiod import HesiodServer

        db, clock, _ = world
        result = generate(db, clock, "HESIOD")
        host = SimulatedHost("h")
        for path, data in result.files.items():
            host.fs.write(path, data)
        host.fs.fsync()
        server = HesiodServer(host)
        server.start()
        assert server.getpwnam("babette")["uid"] == 6530
        assert server.getpwuid(6530)["login"] == "babette"
        assert server.resolve("toto.mit.edu", "cluster")


class TestMailFormats:
    def test_owner_and_member_lines(self, world):
        db, clock, _ = world
        result = generate(db, clock, "MAIL")
        text = result.files["/usr/lib/aliases"].decode()
        assert "owner-video-users: babette" in text
        assert "video-users: babette, rubin@media-lab.mit.edu" in text

    def test_pobox_alias_uses_local_suffix(self, world):
        db, clock, _ = world
        result = generate(db, clock, "MAIL")
        text = result.files["/usr/lib/aliases"].decode()
        assert "babette: babette@ATHENA-PO-2.LOCAL" in text

    def test_smtp_pobox_passes_address_through(self, world):
        db, clock, run = world
        run("add_user", "offsite", 7100, "/bin/csh", "Off", "Site", "",
            1, "", "G")
        run("set_pobox", "offsite", "SMTP", "offsite@dec.com")
        result = generate(db, clock, "MAIL")
        assert "offsite: offsite@dec.com" in \
            result.files["/usr/lib/aliases"].decode()

    def test_passwd_file_rides_along(self, world):
        db, clock, _ = world
        result = generate(db, clock, "MAIL")
        passwd = result.files["/etc/passwd"].decode()
        assert passwd.startswith("babette:*:6530:101:")

    def test_aliases_parse_on_the_hub(self, world):
        from repro.hosts.host import SimulatedHost
        from repro.servers.mailhub import MailHub

        db, clock, _ = world
        result = generate(db, clock, "MAIL")
        host = SimulatedHost("athena.mit.edu")
        hub = MailHub(host)
        for path, data in result.files.items():
            host.fs.write(path, data)
        host.fs.fsync()
        hub.reload()
        resolved = hub.deliver("video-users").resolved
        assert "rubin@media-lab.mit.edu" in resolved
        assert "babette@athena-po-2.local" in resolved

    def test_inactive_list_excluded(self, world):
        db, clock, run = world
        run("add_list", "defunct", 0, 0, 0, 1, 0, 0, "NONE", "NONE", "")
        result = generate(db, clock, "MAIL")
        assert "defunct" not in result.files["/usr/lib/aliases"].decode()


class TestNfsFormats:
    def test_credentials_line(self, world):
        db, clock, _ = world
        result = generate(db, clock, "NFS")
        # no NFS serverhosts registered in this world; master file only
        creds = result.files["/etc/nfs/credentials"].decode()
        assert creds == "babette:6530:10914\n"

    def test_quotas_and_directories_per_host(self, world):
        db, clock, run = world
        run("add_server_info", "NFS", 720, "/tmp/n.out", "n.sh",
            "UNIQUE", 1, "NONE", "NONE")
        run("add_server_host_info", "NFS", "CHARON.MIT.EDU", 1, 0, 0, "")
        result = generate(db, clock, "NFS")
        host_files = result.host_files["CHARON.MIT.EDU"]
        assert host_files["/etc/nfs/quotas"].decode() == "6530 300\n"
        assert host_files["/etc/nfs/directories"].decode() == \
            "/u1/babette 6530 10914 HOMEDIR\n"

    def test_noncreate_lockers_excluded_from_directories(self, world):
        db, clock, run = world
        run("add_server_info", "NFS", 720, "/tmp/n.out", "n.sh",
            "UNIQUE", 1, "NONE", "NONE")
        run("add_server_host_info", "NFS", "CHARON.MIT.EDU", 1, 0, 0, "")
        run("add_filesys", "noauto", "NFS", "CHARON.MIT.EDU",
            "/u1/noauto", "/mit/noauto", "w", "", "babette", "babette",
            0, "PROJECT")
        result = generate(db, clock, "NFS")
        dirs = result.host_files["CHARON.MIT.EDU"][
            "/etc/nfs/directories"].decode()
        assert "noauto" not in dirs


class TestZephyrFormats:
    def test_list_ace_expanded_recursively(self, world):
        db, clock, run = world
        run("add_list", "inner-z", 1, 0, 0, 0, 0, 0, "NONE", "NONE", "")
        run("add_user", "zuser", 7200, "/bin/csh", "Z", "U", "", 1, "",
            "G")
        run("add_member_to_list", "inner-z", "USER", "zuser")
        run("add_member_to_list", "video-users", "LIST", "inner-z")
        result = generate(db, clock, "ZEPHYR")
        xmt = result.files["/etc/zephyr/acl/message.xmt.acl"].decode()
        assert set(xmt.split()) == {"babette", "zuser"}

    def test_user_ace(self, world):
        db, clock, _ = world
        result = generate(db, clock, "ZEPHYR")
        iui = result.files["/etc/zephyr/acl/message.iui.acl"].decode()
        assert iui == "babette\n"

    def test_none_ace_is_wildcard(self, world):
        db, clock, _ = world
        result = generate(db, clock, "ZEPHYR")
        sub = result.files["/etc/zephyr/acl/message.sub.acl"].decode()
        assert sub == "*.*@*\n"

    def test_four_files_per_class(self, world):
        db, clock, _ = world
        result = generate(db, clock, "ZEPHYR")
        names = {p.rsplit("/", 1)[1] for p in result.files}
        assert names == {"message.xmt.acl", "message.sub.acl",
                         "message.iws.acl", "message.iui.acl"}
