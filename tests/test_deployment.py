"""Integration tests for the assembled deployment and the workload
generator — the whole paper's system running together."""

from __future__ import annotations

import pytest

from repro.apps import MrCheck
from repro.core import AthenaDeployment, DeploymentConfig
from repro.db.backup import mrbackup, mrrestore
from repro.db.schema import build_database
from repro.workload import PopulationSpec, load_population, random_names


@pytest.fixture(scope="module")
def world():
    return AthenaDeployment(DeploymentConfig(population=PopulationSpec(
        users=60, unregistered_users=6, nfs_servers=4, maillists=12,
        clusters=3, machines_per_cluster=3, printers=6,
        network_services=15)))


class TestPopulation:
    def test_deterministic_under_seed(self):
        db1, db2 = build_database(), build_database()
        spec = PopulationSpec(users=25, unregistered_users=2,
                              nfs_servers=2, maillists=5, clusters=2,
                              machines_per_cluster=2, printers=3,
                              network_services=5, seed=7)
        h1 = load_population(db1, spec)
        h2 = load_population(db2, spec)
        assert h1.logins == h2.logins
        assert db1.table("users").rows == db2.table("users").rows
        assert db1.table("members").rows == db2.table("members").rows

    def test_logins_unique(self):
        import random
        names = random_names(random.Random(3), 500)
        logins = [l for _, _, l in names]
        assert len(set(logins)) == 500

    def test_population_is_consistent(self, world):
        assert MrCheck(world.db).run() == []

    def test_every_user_has_group_locker_quota(self, world):
        d = world
        for login in d.handles.logins[:10]:
            client = d.direct_client()
            assert client.query("get_list_info", login)
            fs = client.query("get_filesys_by_label", login)[0]
            assert fs[10] == "HOMEDIR"
            assert client.query("get_nfs_quota", login, login)

    def test_class_mix(self, world):
        rows = world.direct_client().query("get_user_by_class", "*")
        years = {r[8] for r in rows}
        assert "G" in years          # grads present
        assert any(y.startswith("19") for y in years)  # undergrads


class TestSteadyState:
    def test_week_of_operation(self, world):
        """A simulated week: all services propagate, stay healthy, and
        the database stays consistent."""
        d = world
        d.run_hours(24 * 7)
        for name in ("HESIOD", "NFS", "MAIL", "ZEPHYR"):
            row = d.db.table("servers").select({"name": name})[0]
            assert row["harderror"] == 0, row["errmsg"]
            assert row["dfgen"] > 0
        hosts = d.db.table("serverhosts").rows
        for host in hosts:
            if host["service"] in ("HESIOD", "NFS", "MAIL", "ZEPHYR"):
                assert host["success"] == 1
        assert MrCheck(d.db).run() == []

    def test_quiet_week_generates_once(self):
        """With no database changes, each service generates exactly once
        (the first interval) and then reports no-change forever."""
        d = AthenaDeployment(DeploymentConfig(population=PopulationSpec(
            users=10, unregistered_users=0, nfs_servers=2, maillists=2,
            clusters=1, machines_per_cluster=1, printers=1,
            network_services=3)))
        d.run_hours(24 * 7)
        # count generation log lines from all runs
        assert d.dcm.runs > 600   # 4/hour * 24 * 7
        hesiod = d.db.table("servers").select({"name": "HESIOD"})[0]
        first_gen = hesiod["dfgen"]
        assert first_gen > 0
        d.run_hours(24)
        assert d.db.table("servers").select(
            {"name": "HESIOD"})[0]["dfgen"] == first_gen

    def test_end_to_end_change_flow(self, world):
        """An admin change lands on the managed servers within the
        propagation interval — the system's whole reason to exist."""
        d = world
        client = d.direct_client()
        client.query("add_user", "e2euser", -1, "/bin/csh", "End",
                     "ToEnd", "", 1, "x", "STAFF")
        client.query("set_pobox", "e2euser", "POP",
                     d.handles.pop_machines[0])
        d.run_hours(7)
        pw = d.hesiod.getpwnam("e2euser")
        assert pw["shell"] == "/bin/csh"
        box = d.hesiod.get_pobox("e2euser")
        assert box["machine"] == d.handles.pop_machines[0]
        d.run_hours(24)
        assert d.mailhub.resolve("e2euser")[0].endswith(".local")


class TestBackupIntegration:
    def test_full_world_roundtrip(self, world, tmp_path):
        d = world
        sizes = mrbackup(d.db, tmp_path / "b")
        restored = build_database()
        mrrestore(restored, tmp_path / "b")
        for name, table in d.db.tables.items():
            assert len(restored.tables[name]) == len(table), name
        # consistency survives the round trip
        assert MrCheck(restored).run() == []
        # passwd-ish relations dominate the dump, as in the paper
        assert sizes["users"] == max(sizes.values())


class TestJournalRecovery:
    def test_replay_after_restore(self, tmp_path):
        """§5.2.2: nightly backup + journal bounds loss to zero."""
        d = AthenaDeployment(DeploymentConfig(population=PopulationSpec(
            users=8, unregistered_users=0, nfs_servers=2, maillists=2,
            clusters=1, machines_per_cluster=1, printers=1,
            network_services=3)))
        # nightly backup happens now
        mrbackup(d.db, tmp_path / "nightly")
        backup_time = d.clock.now()
        # next day: changes accumulate in the journal
        d.clock.advance(3600)
        client = d.direct_client()
        client.query("add_machine", "LOST1.MIT.EDU", "VAX")
        client.query("add_machine", "LOST2.MIT.EDU", "RT")
        client.query("update_user_shell", d.handles.logins[0], "/bin/sh")
        # disaster: restore from the backup...
        restored = build_database()
        mrrestore(restored, tmp_path / "nightly")
        assert not restored.table("machine").select(
            {"name": "LOST1.MIT.EDU"})
        # ...then replay the journal
        from repro.client.lib import DirectClient
        replay_client = DirectClient(restored, d.clock, caller="recovery")

        def execute(query, args, who):
            replay_client.query(query, *args)

        replayed = d.journal.replay(execute, since=backup_time)
        assert replayed == 3
        assert restored.table("machine").select({"name": "LOST1.MIT.EDU"})
        assert restored.table("users").select(
            {"login": d.handles.logins[0]})[0]["shell"] == "/bin/sh"
