"""Tests for the userreg forms dialogue (§5.10)."""

from __future__ import annotations

import pytest

from repro.core import AthenaDeployment, DeploymentConfig
from repro.reg import RegistrationServer, UserReg
from repro.reg.forms import RegistrationForms
from repro.workload import PopulationSpec


@pytest.fixture
def forms_world():
    d = AthenaDeployment(DeploymentConfig(population=PopulationSpec(
        users=20, unregistered_users=5, nfs_servers=2, maillists=3,
        clusters=1, machines_per_cluster=1, printers=1,
        network_services=3)))
    reg = RegistrationServer(d.db, d.clock, d.kdc)
    forms = RegistrationForms(UserReg(reg, d.kdc))
    return d, forms


def student(d, i=0):
    return d.handles.unregistered_ids[i]


class TestRegistrationForms:
    def test_happy_dialogue(self, forms_world):
        d, forms = forms_world
        first, last, mit_id = student(d)
        result = forms.session([
            first, "Q", last, mit_id,
            "frosh88", "sekrit1", "sekrit1",
        ])
        assert result.registered
        assert result.login == "frosh88"
        assert any("created" in line for line in result.transcript)
        assert d.kdc.kinit("frosh88", "sekrit1")

    def test_taken_login_reprompts(self, forms_world):
        d, forms = forms_world
        taken = d.handles.logins[0]
        d.kdc.add_principal(taken, "pw")
        first, last, mit_id = student(d)
        result = forms.session([
            first, "Q", last, mit_id,
            taken, "pw1", "pw1",          # first choice: taken
            "secondtry", "pw1", "pw1",    # second choice: free
        ])
        assert result.registered
        assert result.login == "secondtry"
        assert result.attempts == 2
        assert any("already taken" in line for line in result.transcript)

    def test_password_mismatch_reprompts(self, forms_world):
        d, forms = forms_world
        first, last, mit_id = student(d)
        result = forms.session([
            first, "Q", last, mit_id,
            "mismatch", "aaa", "bbb",     # mismatch
            "ccc", "ccc",                 # retry matches
        ])
        assert result.registered
        assert any("do not match" in line for line in result.transcript)
        assert d.kdc.kinit("mismatch", "ccc")

    def test_wrong_id_explained(self, forms_world):
        d, forms = forms_world
        first, last, _ = student(d)
        result = forms.session([
            first, "Q", last, "111111111",
            "nobody", "pw", "pw",
        ])
        assert not result.registered
        assert any("does not match our records" in line
                   for line in result.transcript)

    def test_unknown_student_explained(self, forms_world):
        _, forms = forms_world
        result = forms.session([
            "Not", "A", "Student", "123456789",
            "ghost", "pw", "pw",
        ])
        assert not result.registered
        assert any("registrar" in line for line in result.transcript)

    def test_abandoned_session(self, forms_world):
        d, forms = forms_world
        first, last, mit_id = student(d)
        result = forms.session([first, "Q"])  # walks away mid-form
        assert not result.registered
        assert any("abandoned" in line for line in result.transcript)

    def test_wrong_workstation_login(self, forms_world):
        _, forms = forms_world
        result = forms.session([], workstation_login="root",
                               workstation_password="toor")
        assert not result.registered
        assert any("register/athena" in line
                   for line in result.transcript)

    def test_too_many_taken_logins(self, forms_world):
        d, forms = forms_world
        for name in ("a1", "a2", "a3"):
            d.kdc.add_principal(name, "pw")
        first, last, mit_id = student(d, 1)
        result = forms.session([
            first, "Q", last, mit_id,
            "a1", "p", "p", "a2", "p", "p", "a3", "p", "p",
        ])
        assert not result.registered
        assert any("consultant" in line for line in result.transcript)
