"""Coverage for the remaining app operations: operator error handling,
preregistration, partition management."""

from __future__ import annotations

import pytest

from repro.apps import DcmMaint, FilsysMaint, MachMaint, UserMaint
from repro.core import AthenaDeployment, DeploymentConfig
from repro.workload import PopulationSpec


@pytest.fixture
def world():
    d = AthenaDeployment(DeploymentConfig(population=PopulationSpec(
        users=25, unregistered_users=0, nfs_servers=2, maillists=4,
        clusters=1, machines_per_cluster=2, printers=2,
        network_services=5)))
    admin = d.handles.logins[0]
    d.make_admin(admin)
    client = d.client_for(admin, "pw", "extra")
    return d, client


class TestOperatorErrorWorkflow:
    def test_failed_hosts_and_service_errors(self, world):
        d, client = world
        dm = DcmMaint(client)
        # break the hesiod install, force a cycle
        d.daemons[d.handles.hesiod_machine].register_command(
            "restart_hesiod", lambda: 1)
        d.run_hours(7)
        assert ("HESIOD", d.handles.hesiod_machine) in dm.failed_hosts()
        assert "HESIOD" in dm.services_with_errors()

        # fix the host, reset both errors, converge
        d.daemons[d.handles.hesiod_machine].register_command(
            "restart_hesiod", d.hesiod.restart)
        dm.reset_service_error("HESIOD")
        dm.reset_host_error("HESIOD", d.handles.hesiod_machine)
        d.run_hours(7)
        assert dm.services_with_errors() == []
        host = dm.host_status("HESIOD")[0]
        assert host.success

    def test_failed_hosts_empty_when_healthy(self, world):
        d, client = world
        d.run_hours(7)
        dm = DcmMaint(client)
        assert ("HESIOD", d.handles.hesiod_machine) not in \
            dm.failed_hosts("HESIOD")


class TestPreregistration:
    def test_preregister_then_register(self, world):
        """The accounts office loads a late addition from the
        registrar, then the student registers normally."""
        from repro.reg import RegistrationServer, UserReg
        from repro.reg.server import hash_mit_id

        d, client = world
        um = UserMaint(client)
        um.preregister("Late", "Addition",
                       hash_mit_id("987654321", "Late", "Addition"),
                       "1992")
        hits = um.lookup_by_name("Late", "Addition")
        assert hits[0]["status"] == 0
        assert hits[0]["login"].startswith("#")

        reg = RegistrationServer(d.db, d.clock, d.kdc)
        outcome = UserReg(reg, d.kdc).register(
            "Late", "Addition", "987654321", "lateadd", "pw")
        assert outcome.success


class TestPartitionManagement:
    def test_add_partition_and_place_locker(self, world):
        d, client = world
        fm = FilsysMaint(client)
        MachMaint(client).add_machine("NEWFS.MIT.EDU", "VAX")
        fm.add_partition("NEWFS.MIT.EDU", "/u2", "ra90", 1, 50000)
        assert fm.free_space("NEWFS.MIT.EDU", "/u2") == 50000
        owner = d.handles.logins[1]
        fm.add("newproj", "NEWFS.MIT.EDU", "/u2/newproj",
               "/mit/newproj", owner, owner)
        fm.add_quota("newproj", owner, 700)
        assert fm.free_space("NEWFS.MIT.EDU", "/u2") == 49300


class TestMachRename:
    def test_rename_machine(self, world):
        d, client = world
        mm = MachMaint(client)
        mm.add_machine("BEFORE.MIT.EDU", "RT")
        mm.rename_machine("BEFORE.MIT.EDU", "AFTER.MIT.EDU")
        assert mm.get_machine("AFTER.MIT.EDU")[0]["type"] == "RT"
        assert mm.get_machine("AFTER*")


class TestMiscellaneousSurface:
    def test_hesiod_record_count(self, world):
        d, _ = world
        d.run_hours(7)
        assert d.hesiod.record_count() > len(d.handles.logins)

    def test_credential_cache_destroy(self, world):
        from repro.errors import MoiraError

        d, _ = world
        login = d.handles.logins[2]
        d.kdc.add_principal(login, "pw")
        cache = d.kdc.kinit(login, "pw")
        d.kdc.get_service_ticket(cache, "moira")
        assert cache.get("moira")
        cache.destroy()   # kdestroy at logout
        with pytest.raises(MoiraError):
            cache.get("moira")
