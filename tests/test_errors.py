"""Tests for the com_err reproduction (repro.errors)."""

from __future__ import annotations

import pytest

import repro.errors as errors
from repro.errors import (
    ErrorTable,
    MoiraError,
    MOIRA_ERRORS,
    com_err,
    error_message,
    error_table_name,
    reset_com_err_hook,
    set_com_err_hook,
)


class TestErrorTableHash:
    def test_base_is_table_specific(self):
        assert MOIRA_ERRORS.base != 0
        assert MOIRA_ERRORS.base & 0xFF == 0  # 256 codes per table

    def test_codes_are_base_plus_offset(self):
        assert errors.MR_ARG_TOO_LONG == MOIRA_ERRORS.base + 1
        assert errors.MR_ARGS == MOIRA_ERRORS.base + 2

    def test_table_name_roundtrips_through_code(self):
        assert error_table_name(errors.MR_PERM) == "sms"
        assert error_table_name(errors.KRB_NO_TICKET) == "krb"

    def test_different_tables_do_not_collide(self):
        sms_codes = {MOIRA_ERRORS.code(s) for s in MOIRA_ERRORS.symbols()}
        krb_codes = {errors.KRB_ERRORS.code(s)
                     for s in errors.KRB_ERRORS.symbols()}
        assert not sms_codes & krb_codes

    def test_duplicate_table_name_rejected(self):
        with pytest.raises(ValueError):
            ErrorTable("sms", [("X", "x")])

    def test_bad_table_name_rejected(self):
        with pytest.raises(ValueError):
            ErrorTable("toolong", [("X", "x")])
        with pytest.raises(ValueError):
            ErrorTable("a b", [("X", "x")])


class TestErrorMessage:
    def test_zero_is_success(self):
        assert error_message(0) == "Success"

    def test_moira_code_text(self):
        assert error_message(errors.MR_PERM) == (
            "Insufficient permission to perform requested database access")
        assert error_message(errors.MR_NO_MATCH) == (
            "No records in database match query")

    def test_errno_passthrough(self):
        import errno
        assert "denied" in error_message(errno.EACCES).lower()

    def test_unknown_code_in_known_range(self):
        code = MOIRA_ERRORS.base + 200  # beyond the defined messages
        assert "Unknown code sms 200" == error_message(code)

    def test_unknown_table(self):
        msg = error_message(0x7F000000)
        assert msg.startswith("Unknown code")


class TestComErr:
    def test_prints_to_stderr_by_default(self, capsys):
        reset_com_err_hook()
        com_err("mrtest", errors.MR_ARGS, "while parsing")
        captured = capsys.readouterr()
        assert "mrtest:" in captured.err
        assert "Incorrect number of arguments" in captured.err
        assert "while parsing" in captured.err

    def test_zero_code_prints_no_error_text(self, capsys):
        reset_com_err_hook()
        com_err("mrtest", 0, "informational")
        captured = capsys.readouterr()
        assert "Success" not in captured.err
        assert "informational" in captured.err

    def test_hook_intercepts(self, capsys):
        calls = []
        old = set_com_err_hook(lambda who, code, msg: calls.append(
            (who, code, msg)))
        try:
            com_err("app", errors.MR_PERM, "ctx")
        finally:
            set_com_err_hook(old)
        assert calls == [("app", errors.MR_PERM, "ctx")]
        assert capsys.readouterr().err == ""

    def test_set_hook_returns_previous(self):
        reset_com_err_hook()
        first = lambda *a: None  # noqa: E731
        assert set_com_err_hook(first) is None
        assert set_com_err_hook(None) is first


class TestMoiraError:
    def test_carries_code_and_symbol(self):
        err = MoiraError(errors.MR_USER, "nobody")
        assert err.code == errors.MR_USER
        assert err.symbol == "MR_USER"
        assert "No such user" in str(err)
        assert "nobody" in str(err)

    def test_symbol_of_foreign_code(self):
        err = MoiraError(12345)
        assert err.symbol == "12345"

    def test_is_exception(self):
        with pytest.raises(MoiraError):
            raise MoiraError(errors.MR_PERM)
