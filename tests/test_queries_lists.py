"""Tests for list/member queries (§7.0.3)."""

from __future__ import annotations

import pytest

from repro.errors import (
    MoiraError,
    MR_EXISTS,
    MR_IN_USE,
    MR_LIST,
    MR_NO_MATCH,
    MR_TYPE,
)
from tests.conftest import make_user


def expect_error(code, fn, *args):
    with pytest.raises(MoiraError) as exc:
        fn(*args)
    assert exc.value.code == code, exc.value


def add_list(run, name, *, active=1, public=0, hidden=0, maillist=1,
             group=0, gid=0, ace_type="NONE", ace_name="NONE", desc="d"):
    run("add_list", name, active, public, hidden, maillist, group, gid,
        ace_type, ace_name, desc)


class TestAddList:
    def test_add_and_info(self, run):
        make_user(run, "owner")
        add_list(run, "video-users", public=1, ace_type="USER",
                 ace_name="owner")
        row = run("get_list_info", "video-users")[0]
        assert row[0] == "video-users"
        assert row[2] == 1          # public
        assert row[7] == "USER"
        assert row[8] == "owner"

    def test_unique_gid_assignment(self, run):
        add_list(run, "g1", group=1, gid=-1)
        add_list(run, "g2", group=1, gid=-1)
        gid1 = run("get_list_info", "g1")[0][6]
        gid2 = run("get_list_info", "g2")[0][6]
        assert gid2 == gid1 + 1

    def test_explicit_gid(self, run):
        add_list(run, "g", group=1, gid=4242)
        assert run("get_list_info", "g")[0][6] == 4242

    def test_duplicate_rejected(self, run):
        add_list(run, "dup")
        expect_error(MR_EXISTS, run, "add_list", "dup", 1, 0, 0, 1, 0, 0,
                     "NONE", "NONE", "d")

    def test_self_referential_ace(self, run):
        """The access list may be the list that is being created."""
        add_list(run, "selfref", ace_type="LIST", ace_name="selfref")
        row = run("get_list_info", "selfref")[0]
        assert row[7] == "LIST"
        assert row[8] == "selfref"


class TestUpdateDeleteList:
    def test_rename_keeps_members(self, run):
        make_user(run, "m")
        add_list(run, "before")
        run("add_member_to_list", "before", "USER", "m")
        run("update_list", "before", "after", 1, 0, 0, 1, 0, 0, "NONE",
            "NONE", "d")
        assert run("get_members_of_list", "after") == [("USER", "m")]

    def test_delete_empty_list(self, run):
        add_list(run, "empty")
        run("delete_list", "empty")
        expect_error(MR_NO_MATCH, run, "get_list_info", "empty")

    def test_delete_nonempty_refused(self, run):
        make_user(run, "m")
        add_list(run, "full")
        run("add_member_to_list", "full", "USER", "m")
        expect_error(MR_IN_USE, run, "delete_list", "full")

    def test_delete_sublist_refused(self, run):
        add_list(run, "inner")
        add_list(run, "outer")
        run("add_member_to_list", "outer", "LIST", "inner")
        expect_error(MR_IN_USE, run, "delete_list", "inner")

    def test_delete_acl_list_refused(self, run):
        add_list(run, "acl-list")
        add_list(run, "guarded", ace_type="LIST", ace_name="acl-list")
        expect_error(MR_IN_USE, run, "delete_list", "acl-list")

    def test_delete_self_referential_allowed(self, run):
        add_list(run, "selfy", ace_type="LIST", ace_name="selfy")
        run("delete_list", "selfy")


class TestMembers:
    def test_add_user_member(self, run):
        make_user(run, "u")
        add_list(run, "l")
        run("add_member_to_list", "l", "USER", "u")
        assert run("get_members_of_list", "l") == [("USER", "u")]

    def test_add_string_member(self, run):
        add_list(run, "l")
        run("add_member_to_list", "l", "STRING", "ext@media-lab.mit.edu")
        assert run("get_members_of_list", "l") == [
            ("STRING", "ext@media-lab.mit.edu")]

    def test_add_list_member(self, run):
        add_list(run, "inner")
        add_list(run, "outer")
        run("add_member_to_list", "outer", "LIST", "inner")
        assert run("get_members_of_list", "outer") == [("LIST", "inner")]

    def test_duplicate_member_rejected(self, run):
        make_user(run, "u")
        add_list(run, "l")
        run("add_member_to_list", "l", "USER", "u")
        expect_error(MR_EXISTS, run, "add_member_to_list", "l", "USER",
                     "u")

    def test_bad_member_type(self, run):
        add_list(run, "l")
        expect_error(MR_TYPE, run, "add_member_to_list", "l", "ROBOT",
                     "r2d2")

    def test_unknown_member(self, run):
        add_list(run, "l")
        expect_error(MR_NO_MATCH, run, "add_member_to_list", "l", "USER",
                     "ghost")

    def test_delete_member(self, run):
        make_user(run, "u")
        add_list(run, "l")
        run("add_member_to_list", "l", "USER", "u")
        run("delete_member_from_list", "l", "USER", "u")
        # an empty retrieval is MR_NO_MATCH, per §7's general errors
        expect_error(MR_NO_MATCH, run, "get_members_of_list", "l")
        assert run("count_members_of_list", "l") == [(0,)]

    def test_delete_absent_member(self, run):
        make_user(run, "u")
        add_list(run, "l")
        expect_error(MR_NO_MATCH, run, "delete_member_from_list", "l",
                     "USER", "u")

    def test_count_members(self, run):
        add_list(run, "counted")
        for i in range(5):
            make_user(run, f"cm{i}")
            run("add_member_to_list", "counted", "USER", f"cm{i}")
        assert run("count_members_of_list", "counted") == [(5,)]

    def test_get_members_of_unknown_list(self, run):
        expect_error(MR_LIST, run, "get_members_of_list", "ghost")


class TestListsOfMember:
    def test_direct_membership(self, run):
        make_user(run, "u")
        add_list(run, "a")
        add_list(run, "b")
        run("add_member_to_list", "a", "USER", "u")
        rows = run("get_lists_of_member", "USER", "u")
        assert [r[0] for r in rows] == ["a"]

    def test_recursive_membership(self, run):
        make_user(run, "u")
        add_list(run, "inner")
        add_list(run, "middle")
        add_list(run, "outer")
        run("add_member_to_list", "inner", "USER", "u")
        run("add_member_to_list", "middle", "LIST", "inner")
        run("add_member_to_list", "outer", "LIST", "middle")
        direct = {r[0] for r in run("get_lists_of_member", "USER", "u")}
        recursive = {r[0] for r in run("get_lists_of_member", "RUSER",
                                       "u")}
        assert direct == {"inner"}
        assert recursive == {"inner", "middle", "outer"}

    def test_cyclic_sublists_terminate(self, run):
        make_user(run, "u")
        add_list(run, "x")
        add_list(run, "y")
        run("add_member_to_list", "x", "LIST", "y")
        run("add_member_to_list", "y", "LIST", "x")
        run("add_member_to_list", "x", "USER", "u")
        recursive = {r[0] for r in run("get_lists_of_member", "RUSER",
                                       "u")}
        assert recursive == {"x", "y"}

    def test_bad_type(self, run):
        expect_error(MR_TYPE, run, "get_lists_of_member", "ROBOT", "u")


class TestQualifiedGetLists:
    def test_tristate_filters(self, run):
        add_list(run, "pub-mail", public=1, maillist=1)
        add_list(run, "priv-mail", public=0, maillist=1)
        add_list(run, "pub-group", public=1, maillist=0, group=1)
        rows = run("qualified_get_lists", "TRUE", "TRUE", "FALSE", "TRUE",
                   "DONTCARE")
        assert [r[0] for r in rows] == ["pub-mail"]
        rows = run("qualified_get_lists", "TRUE", "DONTCARE", "FALSE",
                   "DONTCARE", "TRUE")
        assert [r[0] for r in rows] == ["pub-group"]

    def test_invalid_tristate(self, run):
        expect_error(MR_TYPE, run, "qualified_get_lists", "MAYBE",
                     "TRUE", "FALSE", "TRUE", "TRUE")


class TestExpandListNames:
    def test_wildcard_expansion(self, run):
        add_list(run, "course-6.001")
        add_list(run, "course-6.002")
        add_list(run, "staff")
        rows = run("expand_list_names", "course-6.*")
        assert {r[0] for r in rows} == {"course-6.001", "course-6.002"}

    def test_hidden_lists_not_expanded(self, run):
        add_list(run, "visible-x")
        add_list(run, "hidden-x", hidden=1)
        rows = run("expand_list_names", "*-x")
        assert {r[0] for r in rows} == {"visible-x"}


class TestGetAceUse:
    def test_user_ace_on_list(self, run):
        make_user(run, "boss")
        add_list(run, "managed", ace_type="USER", ace_name="boss")
        rows = run("get_ace_use", "USER", "boss")
        assert ("LIST", "managed") in rows

    def test_ruser_finds_via_acl_list(self, run):
        make_user(run, "worker")
        add_list(run, "admins")
        run("add_member_to_list", "admins", "USER", "worker")
        add_list(run, "managed", ace_type="LIST", ace_name="admins")
        # direct USER search finds nothing -> MR_NO_MATCH
        expect_error(MR_NO_MATCH, run, "get_ace_use", "USER", "worker")
        recursive = run("get_ace_use", "RUSER", "worker")
        assert ("LIST", "managed") in recursive

    def test_query_capability_reported(self, ctx, run, db):
        from repro.server.access import seed_capacls
        make_user(run, "cap")
        seed_capacls(db)
        run("add_member_to_list", "moira-admins", "USER", "cap")
        rows = run("get_ace_use", "RUSER", "cap")
        assert ("QUERY", "add_user") in rows

    def test_bad_type(self, run):
        expect_error(MR_TYPE, run, "get_ace_use", "STRING", "x")
