"""Tests for the paper's expansion requirements (§4, §5.1 D).

"Ability for expansion and routine upgrades ... as new services are
added, the mechanism which supports those services must be easily
added" — a site registers a brand-new managed service (generator +
server rows + host binding) and the DCM picks it up without any core
changes.

"The system is designed to allow further expansion ... with the
ultimate capability of Moira supporting multiple databases through the
same query mechanism" — a query handle bound to a secondary database
resolves transparently through the same application interface.
"""

from __future__ import annotations

import pytest

from repro.core import AthenaDeployment, DeploymentConfig
from repro.db.engine import Column, Database, Table
from repro.dcm.dcm import ServiceBinding
from repro.dcm.generators.base import (
    GenContext,
    Generator,
    GeneratorResult,
    register_generator,
)
from repro.queries.base import (
    QueryContext,
    execute_query,
    register,
    unregister,
)
from repro.workload import PopulationSpec


class MotdGenerator(Generator):
    """A site-local service: ships /etc/motd from the values relation."""

    service = "MOTD"
    tables = ("values",)

    def generate(self, ctx: GenContext) -> GeneratorResult:
        stamp = ctx.db.get_value("motd_serial")
        text = f"Welcome to Athena. MOTD serial {stamp}.\n"
        return GeneratorResult(files={"/etc/motd": text.encode()})


@pytest.fixture
def deployment():
    return AthenaDeployment(DeploymentConfig(population=PopulationSpec(
        users=20, unregistered_users=0, nfs_servers=2, maillists=3,
        clusters=1, machines_per_cluster=1, printers=2,
        network_services=4)))


class TestNewService:
    def test_site_adds_a_service_end_to_end(self, deployment):
        d = deployment
        client = d.direct_client()

        # 1. the new generator module is "checked in via dcm_maint"
        register_generator(MotdGenerator())
        client.query("add_value", "motd_serial", 1)

        # 2. register the service and its host with ordinary queries
        client.query("add_machine", "MOTDHOST.MIT.EDU", "VAX")
        client.query("add_server_info", "MOTD", 60, "/tmp/motd.out",
                     "/bin/motd.sh", "UNIQUE", 1, "NONE", "NONE")
        client.query("add_server_host_info", "MOTD", "MOTDHOST.MIT.EDU",
                     1, 0, 0, "")

        # 3. bind the simulated host
        host = d._make_host("MOTDHOST.MIT.EDU")
        d.dcm.bind_host("MOTD", "MOTDHOST.MIT.EDU", ServiceBinding(
            host=host, daemon=d.daemons["MOTDHOST.MIT.EDU"]))

        # 4. the DCM picks it up on its next due cycle
        d.run_hours(2)
        assert host.fs.read("/etc/motd").startswith(b"Welcome")

        # 5. and the no-change machinery applies to it too
        gen_before = d.dcm.total_generations
        d.run_hours(2)
        assert d.dcm.total_generations == gen_before
        client.query("update_value", "motd_serial", 2)
        d.run_hours(2)
        assert b"serial 2" in host.fs.read("/etc/motd")


class TestMultipleDatabases:
    def _phonebook(self) -> Database:
        db = Database()
        db.create_table(Table(
            "entries",
            [Column("name", str, max_len=32),
             Column("phone", str, max_len=16)],
            unique=[("name",)], indexes=["name"]))
        db.table("entries").insert({"name": "mitinfo",
                                    "phone": "253-1000"})
        return db

    def test_query_handle_routes_to_secondary_database(self, db, clock):
        phonebook = self._phonebook()

        @register("get_phone", "gpho", ("name",), ("name", "phone"),
                  side_effects=False, public=True, database="phonebook")
        def get_phone(ctx, args):
            return [(r["name"], r["phone"])
                    for r in ctx.db.table("entries").select(
                        {"name": args[0]})]

        try:
            ctx = QueryContext(db=db, clock=clock, caller="root",
                               privileged=True,
                               extra_databases={"phonebook": phonebook})
            rows = execute_query(ctx, "get_phone", ["mitinfo"])
            assert rows == [("mitinfo", "253-1000")]
            # the primary database was untouched and primary queries
            # still resolve against it
            assert "entries" not in db.tables
            execute_query(ctx, "add_machine", ["MIXED.MIT.EDU", "VAX"])
            assert db.table("machine").select({"name": "MIXED.MIT.EDU"})
        finally:
            unregister("get_phone")

    def test_missing_secondary_database_fails_cleanly(self, db, clock):
        from repro.errors import MoiraError, MR_NO_HANDLE

        @register("get_phone2", "gph2", ("name",), ("name",),
                  side_effects=False, public=True, database="phonebook")
        def get_phone2(ctx, args):
            return [("x",)]

        try:
            ctx = QueryContext(db=db, clock=clock, caller="root",
                               privileged=True)
            with pytest.raises(MoiraError) as exc:
                execute_query(ctx, "get_phone2", ["a"])
            assert exc.value.code == MR_NO_HANDLE
        finally:
            unregister("get_phone2")

    def test_unregister_removes_handle(self, db, clock):
        from repro.errors import MoiraError, MR_NO_HANDLE

        @register("temp_query", "tmpq", (), (), side_effects=False,
                  public=True)
        def temp_query(ctx, args):
            return [("ok",)]

        unregister("temp_query")
        ctx = QueryContext(db=db, clock=clock, caller="root",
                           privileged=True)
        with pytest.raises(MoiraError) as exc:
            execute_query(ctx, "temp_query", [])
        assert exc.value.code == MR_NO_HANDLE
