"""Shared fixtures: a bootstrapped Moira deployment in various sizes."""

from __future__ import annotations

import pytest

from repro.client import MoiraClient
from repro.db.journal import Journal
from repro.db.schema import build_database
from repro.kerberos import KDC
from repro.queries.base import QueryContext, execute_query
from repro.server import MoiraServer, seed_capacls
from repro.sim.clock import Clock


@pytest.fixture
def clock():
    return Clock()


@pytest.fixture
def db():
    return build_database()


@pytest.fixture
def ctx(db, clock):
    """A privileged direct context (the DCM / bootstrap path)."""
    return QueryContext(db=db, clock=clock, caller="root",
                        client="test", privileged=True,
                        journal=Journal())


@pytest.fixture
def run(ctx):
    """Callable: run(query, *args) via the privileged context."""

    def _run(name, *args):
        return execute_query(ctx, name, [str(a) for a in args])

    return _run


@pytest.fixture
def kdc(clock):
    return KDC(clock)


@pytest.fixture
def server(db, clock, kdc, ctx):
    srv = MoiraServer(db, clock, kdc)
    seed_capacls(db)
    return srv


def make_user(run, login, *, status=1, year="1990", uid=-1):
    run("add_user", login, uid, "/bin/csh", login.capitalize(), "Test",
        "", status, f"mitid-{login}", year)
    return login


@pytest.fixture
def admin_client(server, kdc, clock, run):
    """An authenticated client on the moira-admins capability list."""
    make_user(run, "admin", year="STAFF")
    run("add_member_to_list", "moira-admins", "USER", "admin")
    kdc.add_principal("admin", "adminpw")
    creds = kdc.kinit("admin", "adminpw")
    client = MoiraClient(dispatcher=server, kdc=kdc, credentials=creds,
                         clock=clock)
    client.connect().auth("pytest")
    yield client
    client.close()


@pytest.fixture
def user_client(server, kdc, clock, run):
    """An authenticated ordinary user ("joeuser")."""
    make_user(run, "joeuser")
    kdc.add_principal("joeuser", "joepw")
    creds = kdc.kinit("joeuser", "joepw")
    client = MoiraClient(dispatcher=server, kdc=kdc, credentials=creds,
                         clock=clock)
    client.connect().auth("pytest")
    yield client
    client.close()
