"""Wire-level edge cases for the TCP transport: coalesced frames,
frames split across segments, and pipelined request/reply ordering.

These drive raw sockets (no MoiraClient) so TCP segmentation is under
the test's control, and run against both dispatch modes: ``inline``
(workers=0, queries on the selector thread — the seed behaviour) and
``pooled`` (worker-pool dispatch with the wakeup-pipe reply path).
"""

from __future__ import annotations

import socket
import time

import pytest

from repro.db.schema import build_database
from repro.errors import MR_MORE_DATA, MR_NO_MATCH
from repro.kerberos import KDC
from repro.protocol.transport import TcpServerTransport, connect_tcp
from repro.protocol.wire import (
    MajorRequest,
    decode_reply,
    encode_request,
    read_frame,
)
from repro.queries.base import QueryContext, execute_query
from repro.server import MoiraServer, seed_capacls
from repro.sim.clock import Clock

MACHINES = 5


def _make_server(workers: int) -> MoiraServer:
    db = build_database()
    clock = Clock()
    server = MoiraServer(db, clock, KDC(clock), workers=workers)
    seed_capacls(db)
    ctx = QueryContext(db=db, clock=clock, caller="root",
                       client="framing", privileged=True)
    for i in range(MACHINES):
        execute_query(ctx, "add_machine", [f"FRAME{i}.MIT.EDU", "VAX"])
    return server


@pytest.fixture(params=[0, 4], ids=["inline", "pooled"])
def tcp(request):
    server = _make_server(request.param)
    transport = TcpServerTransport(server).start()
    yield transport
    transport.stop()
    server.shutdown()


def _gmac(pattern: str) -> bytes:
    return encode_request(MajorRequest.QUERY, ["get_machine", pattern])


def _read_reply_stream(sock: socket.socket) -> list:
    """Frames until (and including) the final non-MORE_DATA reply."""
    replies = []
    while True:
        frame = read_frame(sock.recv)
        assert frame, "server closed connection mid-stream"
        reply = decode_reply(frame)
        replies.append(reply)
        if reply.code != MR_MORE_DATA:
            return replies


class TestFraming:
    def test_two_frames_coalesced_in_one_segment(self, tcp):
        """Both requests of a single send() answer, in order."""
        with socket.create_connection(tcp.address, timeout=10) as sock:
            sock.sendall(_gmac("FRAME*") + _gmac("FRAME1.MIT.EDU"))
            first = _read_reply_stream(sock)
            second = _read_reply_stream(sock)
        assert [r.code for r in first].count(MR_MORE_DATA) == MACHINES
        assert first[-1].code == 0
        assert len(second) == 2
        assert second[0].fields[0] == b"FRAME1.MIT.EDU"

    def test_frame_split_across_segments(self, tcp):
        """A request dribbled in 3-byte segments still parses whole."""
        request = _gmac("FRAME2.MIT.EDU")
        with socket.create_connection(tcp.address, timeout=10) as sock:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            for i in range(0, len(request), 3):
                sock.sendall(request[i:i + 3])
                time.sleep(0.002)
            replies = _read_reply_stream(sock)
        assert replies[0].fields[0] == b"FRAME2.MIT.EDU"
        assert replies[-1].code == 0

    def test_error_replies_frame_correctly(self, tcp):
        with socket.create_connection(tcp.address, timeout=10) as sock:
            sock.sendall(_gmac("NOPE*"))
            replies = _read_reply_stream(sock)
        assert len(replies) == 1
        assert replies[0].code == MR_NO_MATCH


class TestPipelining:
    def test_pipelined_replies_arrive_in_request_order(self, tcp):
        """One connection, many requests in flight: reply streams come
        back strictly in request order, never interleaved."""
        wanted = [f"FRAME{i % MACHINES}.MIT.EDU" for i in range(20)]
        with socket.create_connection(tcp.address, timeout=10) as sock:
            sock.sendall(b"".join(_gmac(name) for name in wanted))
            for name in wanted:
                replies = _read_reply_stream(sock)
                assert replies[0].fields[0] == name.encode()
                assert len(replies) == 2  # exactly one tuple + status

    def test_connections_interleave_but_streams_do_not(self, tcp):
        """Two pipelining connections get disjoint, in-order answers."""
        socks = [socket.create_connection(tcp.address, timeout=10)
                 for _ in range(2)]
        try:
            plans = [[f"FRAME{(i + j) % MACHINES}.MIT.EDU"
                      for i in range(10)] for j in range(2)]
            for sock, plan in zip(socks, plans):
                sock.sendall(b"".join(_gmac(name) for name in plan))
            for sock, plan in zip(socks, plans):
                for name in plan:
                    replies = _read_reply_stream(sock)
                    assert replies[0].fields[0] == name.encode()
        finally:
            for sock in socks:
                sock.close()

    def test_client_helper_still_works(self, tcp):
        host, port = tcp.address
        conn = connect_tcp(host, port)
        try:
            replies = conn.call(MajorRequest.QUERY,
                                ["get_machine", "FRAME0.MIT.EDU"])
            assert replies[0].fields[0] == b"FRAME0.MIT.EDU"
            assert replies[-1].code == 0
        finally:
            conn.close()


class TestBackpressure:
    def test_tiny_high_water_mark_does_not_deadlock(self):
        """A big retrieve through a 2 KiB output window completes
        byte-perfect: workers block on the high-water mark and resume
        as the (slow) client drains."""
        server = _make_server(workers=4)
        ctx = QueryContext(db=server.db, clock=server.clock,
                           caller="root", client="framing",
                           privileged=True)
        for i in range(300):
            execute_query(ctx, "add_machine", [f"BULK{i}.MIT.EDU", "VAX"])
        transport = TcpServerTransport(server, high_water=2048,
                                       low_water=512).start()
        try:
            with socket.create_connection(transport.address,
                                          timeout=30) as sock:
                sock.sendall(_gmac("BULK*"))
                replies = _read_reply_stream(sock)
            assert [r.code for r in replies].count(MR_MORE_DATA) == 300
            assert replies[-1].code == 0
        finally:
            transport.stop()
            server.shutdown()
