"""Replication-tier tests: snapshot/tail byte-identity, idempotent
apply, freshness (read-your-writes), router ejection/re-probe, and the
crash/restart matrix on both sides of the feed.

The correctness oracle is the one ``tests/test_wal_recovery.py`` uses:
mrbackup dumps compared byte-for-byte.
"""

from __future__ import annotations

import threading
from types import SimpleNamespace

import pytest

from repro.client.lib import MoiraClient, ReplicaSet
from repro.core import AthenaDeployment, DeploymentConfig
from repro.db.journal import Journal
from repro.db.recovery import checkpoint, recover
from repro.db.schema import build_database
from repro.dcm.retry import RetryPolicy
from repro.errors import (
    MoiraError,
    MR_ABORTED,
    MR_BUSY,
    MR_NO_MATCH,
    MR_PERM,
)
from repro.protocol.transport import connect_inproc
from repro.protocol.wire import MajorRequest, encode_request
from repro.replication.replica import ReplicaServer
from repro.server.moira_server import MoiraServer
from repro.sim.clock import DEFAULT_EPOCH, Clock
from repro.sim.faults import FaultInjector
from repro.workload import PopulationSpec

from tests.test_wal_recovery import apply_one, dump, mutations

BASE = DEFAULT_EPOCH + 1000

SMALL = dict(users=10, unregistered_users=2, nfs_servers=2, maillists=3,
             clusters=2, machines_per_cluster=2, printers=2,
             network_services=3)


def make_primary(**journal_kwargs):
    """A bare primary: database + journal + serving stack, no campus."""
    db = build_database()
    clock = Clock()
    journal = Journal(**journal_kwargs)
    server = MoiraServer(db, clock, journal=journal, workers=0)
    return SimpleNamespace(db=db, clock=clock, journal=journal,
                           server=server)


def make_replica(primary, **kw):
    return ReplicaServer(
        primary.clock,
        feed_factory=lambda: connect_inproc(primary.server),
        **kw)


def mutate(primary, muts, *, start=0):
    for i, (name, args) in enumerate(muts, start=start):
        apply_one(primary.db, primary.journal, primary.clock,
                  BASE + i * 10, name, args)


def add_machine(primary, name="FRAME0.MIT.EDU", *, at=500):
    apply_one(primary.db, primary.journal, primary.clock,
              BASE + at * 10, "add_machine", [name, "VAX"])


class TestSnapshotAndTail:
    def test_bootstrap_is_byte_identical(self, tmp_path):
        primary = make_primary()
        mutate(primary, mutations(6))
        replica = make_replica(primary)
        replica.step()
        assert replica.applied_seq == primary.journal.current_seq()
        assert replica.snapshots_loaded == 1
        assert dump(replica.db, tmp_path / "r") == \
            dump(primary.db, tmp_path / "p")

    def test_incremental_tail_is_byte_identical(self, tmp_path):
        primary = make_primary()
        muts = mutations(10)
        mutate(primary, muts[:4])
        replica = make_replica(primary)
        replica.step()
        mutate(primary, muts[4:], start=4)
        applied = replica.step()
        assert applied == 6
        assert replica.snapshots_loaded == 1     # tail only, no resync
        assert replica.entries_applied == 6
        assert dump(replica.db, tmp_path / "r") == \
            dump(primary.db, tmp_path / "p")

    def test_apply_is_idempotent_by_watermark(self, tmp_path):
        primary = make_primary()
        mutate(primary, mutations(5))
        replica = make_replica(primary)
        replica.step()
        before = dump(replica.db, tmp_path / "r1")
        # re-deliver the full tail (a feed retry after a lost ack)
        applied = replica._apply(list(primary.journal.entries))
        assert applied == 0
        assert dump(replica.db, tmp_path / "r2") == before

    def test_tail_respects_max_entries(self):
        primary = make_primary()
        muts = mutations(14)
        mutate(primary, muts[:8])
        replica = make_replica(primary)
        replica.sync_snapshot()      # watermark 8... make it lag:
        mutate(primary, muts[8:], start=8)
        assert replica.step(max_entries=2) == 2
        assert replica.applied_seq == 10
        assert replica.step() == 4
        assert replica.applied_seq == 14

    def test_version_vector_tracks_primary(self):
        primary = make_primary()
        mutate(primary, mutations(3))
        replica = make_replica(primary)
        replica.step()
        assert replica.primary_versions == primary.db.versions()
        role, seq, _versions, epoch = replica.status_tuple()
        assert (role, seq) == ("replica", str(replica.applied_seq))
        assert epoch == str(replica.epoch)


class TestReadOnlyServing:
    def test_replica_rejects_mutations(self):
        primary = make_primary()
        mutate(primary, mutations(2))
        replica = make_replica(primary)
        replica.step()
        client = MoiraClient(dispatcher=replica.server).connect()
        with pytest.raises(MoiraError) as err:
            client.query("add_machine", "X.MIT.EDU", "VAX")
        assert err.value.code == MR_PERM
        # ...even wrapped in the freshness gate
        with pytest.raises(MoiraError) as err:
            client.query("_repl_read", "0", "add_machine",
                         "Y.MIT.EDU", "VAX")
        assert err.value.code == MR_PERM
        client.close()

    def test_repl_read_frames_match_primary(self):
        """The replica's gated read answers byte-identical frames to
        the primary's plain query — the wire-level oracle."""
        primary = make_primary()
        mutate(primary, mutations(6))
        add_machine(primary)
        replica = make_replica(primary)
        replica.step()
        plain = encode_request(MajorRequest.QUERY,
                               ["get_machine", "FRAME0.MIT.EDU"])[4:]
        gated = encode_request(MajorRequest.QUERY,
                               ["_repl_read",
                                str(replica.applied_seq),
                                "get_machine", "FRAME0.MIT.EDU"])[4:]
        p_conn = primary.server.open_connection("oracle")
        r_conn = replica.server.open_connection("probe")
        p_frames = primary.server.handle_frame(p_conn, plain)
        r_frames = replica.server.handle_frame(r_conn, gated)
        assert p_frames == r_frames
        assert len(p_frames) >= 2    # at least one tuple + final status

    def test_primary_unwraps_repl_read(self):
        primary = make_primary()
        mutate(primary, mutations(3))
        add_machine(primary)
        client = MoiraClient(dispatcher=primary.server).connect()
        direct = client.query("get_machine", "FRAME0.MIT.EDU")
        wrapped = client.query("_repl_read", "999999",
                               "get_machine", "FRAME0.MIT.EDU")
        assert direct == wrapped     # any token is fresh on the primary
        client.close()

    def test_replica_behind_token_answers_busy(self):
        primary = make_primary()
        mutate(primary, mutations(3))
        replica = make_replica(primary, staleness_budget=0.02)
        replica.step()
        # sever the feed so the eager pull inside the gate cannot help
        replica._feed_factory = lambda: (_ for _ in ()).throw(
            MoiraError(MR_ABORTED, "partitioned"))
        replica._drop_feed()
        client = MoiraClient(dispatcher=replica.server,
                             busy_retries=0).connect()
        with pytest.raises(MoiraError) as err:
            client.query("_repl_read",
                         str(replica.applied_seq + 1),
                         "get_machine", "ANY.MIT.EDU")
        assert err.value.code == MR_BUSY
        client.close()


class TestCrashMatrix:
    def test_replica_restart_resyncs(self, tmp_path):
        primary = make_primary()
        muts = mutations(9)
        mutate(primary, muts[:5])
        replica = make_replica(primary)
        replica.step()
        replica.stop()       # the replica process dies; state is gone
        mutate(primary, muts[5:], start=5)
        reborn = make_replica(primary, name="reborn")
        reborn.step()
        assert reborn.applied_seq == primary.journal.current_seq()
        assert dump(reborn.db, tmp_path / "r") == \
            dump(primary.db, tmp_path / "p")

    def test_checkpoint_does_not_strand_fresh_replica(self, tmp_path):
        primary = make_primary(path=tmp_path / "wal")
        muts = mutations(10)
        mutate(primary, muts[:6])
        replica = make_replica(primary)
        replica.step()
        checkpoint(primary.db, primary.journal, tmp_path / "snap")
        mutate(primary, muts[6:], start=6)
        replica.step()
        assert replica.resyncs == 0      # the tail never gapped for it
        assert dump(replica.db, tmp_path / "r") == \
            dump(primary.db, tmp_path / "p")

    def test_checkpoint_past_lagging_replica_forces_resync(self, tmp_path):
        primary = make_primary(path=tmp_path / "wal")
        muts = mutations(12)
        mutate(primary, muts[:4])
        replica = make_replica(primary)
        replica.step()       # applied 4
        mutate(primary, muts[4:8], start=4)
        checkpoint(primary.db, primary.journal, tmp_path / "snap")
        mutate(primary, muts[8:], start=8)
        replica.step()       # tail reports the gap -> snapshot resync
        assert replica.resyncs == 1
        assert replica.snapshots_loaded == 2
        replica.step()       # next tail is contiguous
        assert replica.applied_seq == primary.journal.current_seq()
        assert dump(replica.db, tmp_path / "r") == \
            dump(primary.db, tmp_path / "p")

    def test_primary_restart_does_not_strand_replica(self, tmp_path):
        """Primary crashes and recovers via the PR 4 protocol; the
        replica's next pulls continue from its watermark unharmed."""
        wal = tmp_path / "wal"
        primary = make_primary(path=wal)
        box = {"server": primary.server}
        muts = mutations(12)
        mutate(primary, muts[:5])
        checkpoint(primary.db, primary.journal, tmp_path / "snap")
        mutate(primary, muts[5:9], start=5)
        replica = ReplicaServer(
            primary.clock,
            feed_factory=lambda: connect_inproc(box["server"]))
        replica.step()       # applied 9
        # -- crash: everything in memory is gone ------------------------
        primary.journal.close()
        rec = recover(tmp_path / "snap", wal_path=wal)
        journal = Journal.load(wal)
        restarted = MoiraServer(rec.db, Clock(), journal=journal,
                                workers=0)
        box["server"] = restarted
        replica._drop_feed()     # its old connection died with the crash
        clock = Clock()
        for j, (name, args) in enumerate(muts[9:], start=9):
            apply_one(rec.db, journal, clock, BASE + j * 10, name, args)
        replica.step()
        assert replica.resyncs == 0
        assert replica.applied_seq == journal.current_seq()
        assert dump(replica.db, tmp_path / "r") == \
            dump(rec.db, tmp_path / "p")

    def test_group_commit_rewind_forces_resync(self, tmp_path):
        """A primary that lost an un-fsync'd batch restarts *behind*
        the replica; the replica detects the rewind and rebuilds."""
        primary = make_primary()
        mutate(primary, mutations(8))
        replica = make_replica(primary)
        replica.step()       # applied 8
        # simulate the rewound primary: same feed, shorter history
        rewound = make_primary()
        mutate(rewound, mutations(5))
        replica._feed_factory = lambda: connect_inproc(rewound.server)
        replica._drop_feed()
        replica.step()
        assert replica.resyncs == 1
        assert replica.applied_seq == 5
        assert dump(replica.db, tmp_path / "r") == \
            dump(rewound.db, tmp_path / "p")


class TestReplicaSetRouting:
    @pytest.fixture()
    def world(self):
        d = AthenaDeployment(DeploymentConfig(
            population=PopulationSpec(**SMALL),
            replicas=2, server_workers=0,
            staleness_budget=0.05,
            faults=FaultInjector()))
        yield d
        d.replica_cluster.stop()
        d.server.shutdown()

    def test_reads_balance_and_writes_hit_primary(self, world):
        admin = world.handles.logins[0]
        world.make_admin(admin)
        rs = world.replica_set_client(admin)
        rs.query("add_machine", "RTR1.MIT.EDU", "VAX")
        for _ in range(4):
            rows = rs.query("get_machine", "RTR1.MIT.EDU")
            assert rows[0][0] == "RTR1.MIT.EDU"
        stats = rs.stats()
        assert stats["writes"] == 1
        assert stats["reads_replica"] == 4    # both replicas in rotation
        assert stats["reads_primary"] == 0
        assert stats["min_seq"] >= 1          # token advanced by write
        # the replicas really served it (freshness pulled them forward)
        for replica in world.replica_cluster.replicas:
            assert replica.applied_seq >= stats["min_seq"]
        rs.close()

    def test_read_your_writes_falls_through_under_lag(self, world):
        """Feed partition: replicas cannot catch up to the session
        token, answer MR_BUSY, and the router lands on the primary —
        the read still sees the write."""
        admin = world.handles.logins[0]
        world.make_admin(admin)
        rs = world.replica_set_client(admin)
        world.config.faults.fail(
            "repl.tail", MoiraError(MR_ABORTED, "partitioned"),
            times=-1)
        rs.query("add_machine", "RYW.MIT.EDU", "VAX")
        rows = rs.query("get_machine", "RYW.MIT.EDU")
        assert rows[0][0] == "RYW.MIT.EDU"    # never time-travels
        stats = rs.stats()
        assert stats["reads_primary"] == 1
        assert stats["fallthroughs"] == 1
        assert stats["ejections"] == 2        # both replicas ejected
        rs.close()

    def test_stale_replica_serves_old_reads_without_token(self, world):
        """A session that never wrote has min_seq 0: lagging replicas
        are still valid (monotonic reads are not promised, read-your-
        writes is)."""
        world.config.faults.fail(
            "repl.tail", MoiraError(MR_ABORTED, "partitioned"),
            times=-1)
        rs = world.replica_set_client()
        machine = world.handles.nfs_machines[0]
        rows = rs.query("get_machine", machine)
        assert rows[0][0] == machine
        assert rs.stats()["reads_replica"] == 1
        rs.close()

    def test_ejected_replica_is_reprobed_after_backoff(self, world):
        admin = world.handles.logins[0]
        world.make_admin(admin)
        fake = {"now": 0.0}
        policy = RetryPolicy(backoff_base=10.0, backoff_factor=2.0,
                             backoff_cap=100.0, jitter_frac=0.0,
                             breaker_threshold=3,
                             breaker_cooldown=50.0)
        rs = world.replica_cluster.replica_set(admin,
                                               retry_policy=policy)
        rs._time = lambda: fake["now"]
        machine = world.handles.nfs_machines[0]

        # kill replica 0's serving path (connection-level failure)
        slot = rs._slots[0]
        healthy_query = slot.client.query
        slot.client.query = lambda *a, **k: (_ for _ in ()).throw(
            MoiraError(MR_ABORTED, "dead replica"))

        rows = rs.query("get_machine", machine)   # probe 0, fail, use 1
        assert rows[0][0] == machine
        assert rs.stats() ["ejections"] == 1
        assert slot.next_attempt_at == pytest.approx(10.0)

        rs.query("get_machine", machine)          # inside backoff: skip
        assert rs.stats()["ejections"] == 1       # not re-attempted
        assert rs.stats()["probes"] == 0

        fake["now"] = 11.0                        # backoff elapsed
        rs.query("get_machine", machine)          # probe fails again
        assert rs.stats()["probes"] == 1
        assert rs.stats()["ejections"] == 2
        assert slot.next_attempt_at == pytest.approx(11.0 + 20.0)

        fake["now"] = 32.0
        rs.query("get_machine", machine)          # third strike: breaker
        assert slot.consecutive_failures == 3
        assert slot.next_attempt_at == pytest.approx(32.0 + 50.0)

        # the replica comes back; the next probe heals the slot
        slot.client.query = healthy_query
        fake["now"] = 83.0
        rs.query("get_machine", machine)
        assert slot.consecutive_failures == 0
        assert slot.next_attempt_at == 0.0
        rs.close()

    def test_real_answers_propagate(self, world):
        rs = world.replica_set_client()
        with pytest.raises(MoiraError) as err:
            rs.query("get_machine", "NOSUCH.MIT.EDU")
        assert err.value.code == MR_NO_MATCH
        # the replica answered it — no fallthrough to the primary
        assert rs.stats()["reads_primary"] == 0
        assert rs.query_maybe("get_machine", "NOSUCH.MIT.EDU") == []
        rs.close()

    def test_pump_threads_keep_replicas_fresh(self, world):
        admin = world.handles.logins[0]
        world.make_admin(admin)
        world.replica_cluster.start(interval=0.002)
        client = world.client_for(admin, "pw")
        client.query("add_machine", "PUMP.MIT.EDU", "VAX")
        target = world.journal.current_seq()
        deadline = threading.Event()
        for replica in world.replica_cluster.replicas:
            assert replica.wait_for_seq(target, budget=2.0), \
                f"{replica.name} stuck at {replica.applied_seq}"
        assert not deadline.is_set()
        client.close()


class TestSeedPathUnchanged:
    def test_default_deployment_has_no_replica_tier(self):
        d = AthenaDeployment(DeploymentConfig(
            population=PopulationSpec(**SMALL)))
        assert d.replica_cluster is None
        with pytest.raises(ValueError):
            d.replica_set_client()
        # the journal keeps the seed write-path defaults
        assert d.journal.fsync_batch == 1
        assert d.journal.fsync_interval_ms == 0.0
        assert d.journal.rotate_segments is False
        d.server.shutdown()

    def test_replicaset_with_no_replicas_is_a_plain_client(self):
        primary = make_primary()
        mutate(primary, mutations(3))
        add_machine(primary, "SOLO.MIT.EDU")
        rs = ReplicaSet(MoiraClient(dispatcher=primary.server).connect())
        rows = rs.query("get_machine", "SOLO.MIT.EDU")
        assert rows[0][0] == "SOLO.MIT.EDU"
        stats = rs.stats()
        assert stats["reads_primary"] == 1
        assert stats["fallthroughs"] == 0     # no replicas configured
        rs.close()
