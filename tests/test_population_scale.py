"""The parallel population builder and the 1M design-point math.

Three contracts from the scale PR:

* ``PopulationSpec.design_point`` sizes the campus with ~33% headroom
  at every design point the roadmap names (10k, 100k, 1M);
* ``random_names`` stays deterministic (a golden digest pins the
  generator) and globally collision-free under partitioned callers;
* ``load_population(parallel=True)`` builds a world byte-identical to
  the serial oracle, at any worker count, with or without user
  sub-shards.
"""

from __future__ import annotations

import hashlib
import random

import pytest

from repro.db.backup import mrbackup
from repro.db.schema import build_database
from repro.workload import (
    USERS_PARTITION,
    PopulationSpec,
    load_population,
    random_names,
)

SMALL = dict(users=400, unregistered_users=40, nfs_servers=4,
             maillists=20, clusters=3, machines_per_cluster=3,
             printers=6, network_services=12)


# -- design-point headroom -----------------------------------------------------


class TestDesignPoint:
    @pytest.mark.parametrize("users", [10_000, 100_000, 1_000_000])
    def test_nfs_headroom(self, users):
        """NFS capacity ≥ 4/3 of demand: every account (registered +
        registrar tape) takes 4 slots of the 300-per-partition layout,
        and a third of the fleet must be spare."""
        spec = PopulationSpec.design_point(users)
        total = spec.users + spec.unregistered_users
        per_partition = 400_000 // 300
        capacity = spec.nfs_servers * 3 * per_partition
        assert capacity >= total * 4, (spec.nfs_servers, users)

    @pytest.mark.parametrize("users", [10_000, 100_000, 1_000_000])
    def test_pop_and_zephyr_track_users(self, users):
        spec = PopulationSpec.design_point(users)
        assert spec.pop_servers * 6_000 >= spec.users + \
            spec.unregistered_users
        assert spec.zephyr_servers >= max(3, users // 20_000)

    @pytest.mark.parametrize("users", [10_000, 100_000, 1_000_000])
    def test_campus_floors(self, users):
        spec = PopulationSpec.design_point(users)
        assert spec.clusters >= max(12, users // 2_500)
        assert spec.printers >= max(40, users // 1_000)
        assert spec.maillists >= max(150, users // 200)
        assert spec.unregistered_users >= max(1_000, users // 10)

    def test_paper_point_matches_defaults(self):
        """The 10k design point is the paper's §5.1 campus."""
        spec = PopulationSpec.design_point(10_000)
        assert spec.users == 10_000
        assert spec.nfs_servers >= 20


# -- random_names --------------------------------------------------------------


class TestRandomNames:
    def test_logins_unique_at_scale(self):
        names = random_names(random.Random(7), 50_000)
        assert len({login for _, _, login in names}) == 50_000

    def test_partition_offsets_disjoint(self):
        """Partitioned callers with private RNGs and start offsets
        never collide — the login suffix is the global serial."""
        whole: set = set()
        for p, start in enumerate(range(0, 4 * USERS_PARTITION,
                                        USERS_PARTITION)):
            part = random_names(random.Random(f"seed/{p}"),
                                USERS_PARTITION, start=start)
            logins = {login for _, _, login in part}
            assert not (whole & logins)
            whole |= logins
        assert len(whole) == 4 * USERS_PARTITION

    def test_golden_digest_seed_1988(self):
        """Pin the generator: any drift in syllables, draw order, or
        login construction silently rebuilds every world — this digest
        makes it a visible, deliberate change."""
        names = random_names(random.Random(1988), 1000)
        digest = hashlib.sha256(
            "\n".join("|".join(t) for t in names).encode()).hexdigest()
        assert digest == ("fee1e2daf57773668bee728b7bd0e21b"
                          "ab8a08ac8a6f1fdb7b65ca86ed1fbe30")

    def test_start_continuation_equivalence(self):
        """One RNG drawn in two chunks equals one continuous draw —
        the property the per-partition id plan relies on."""
        rng = random.Random(42)
        split = random_names(rng, 100) + random_names(rng, 100,
                                                      start=100)
        assert split == random_names(random.Random(42), 200)


# -- parallel build == serial oracle -------------------------------------------


def _digest(db, tmp_path, tag):
    directory = tmp_path / tag
    mrbackup(db, directory)
    h = hashlib.sha256()
    for p in sorted(directory.iterdir()):
        h.update(p.name.encode())
        h.update(p.read_bytes())
    return h.hexdigest()


def _build(tmp_path, tag, *, parallel, workers=None, subshards=0):
    db = build_database(user_subshards=subshards)
    handles = load_population(db, PopulationSpec(**SMALL),
                              parallel=parallel, workers=workers)
    return handles, _digest(db, tmp_path, tag)


class TestParallelBuild:
    def test_parallel_matches_serial_oracle(self, tmp_path):
        serial, d_serial = _build(tmp_path, "serial", parallel=False)
        par, d_par = _build(tmp_path, "par4", parallel=True, workers=4)
        assert par.logins == serial.logins
        assert d_par == d_serial

    def test_worker_count_is_invisible(self, tmp_path):
        _, d_one = _build(tmp_path, "par1", parallel=True, workers=1)
        _, d_eight = _build(tmp_path, "par8", parallel=True, workers=8)
        assert d_one == d_eight

    def test_subshards_are_invisible(self, tmp_path):
        _, d_flat = _build(tmp_path, "flat", parallel=True)
        _, d_sub = _build(tmp_path, "sub", parallel=True, subshards=8)
        assert d_flat == d_sub

    def test_builds_are_rerun_stable(self, tmp_path):
        _, first = _build(tmp_path, "a", parallel=True)
        _, second = _build(tmp_path, "b", parallel=True)
        assert first == second

    def test_nfsphys_allocation_matches_serial(self, tmp_path):
        """Satellite check for the old per-machine probe: the machines
        stage's name→id map must land the same quota accounting the
        serial per-user updates did."""
        db_s = build_database()
        load_population(db_s, PopulationSpec(**SMALL), parallel=False)
        db_p = build_database()
        load_population(db_p, PopulationSpec(**SMALL), parallel=True)
        alloc_s = sorted(r["allocated"]
                         for r in db_s.table("nfsphys").select())
        alloc_p = sorted(r["allocated"]
                         for r in db_p.table("nfsphys").select())
        assert alloc_p == alloc_s
        assert sum(alloc_s) > 0

    def test_backends_without_shards_fall_back(self):
        """SQLite-backed worlds have no shard locks; parallel=True must
        quietly build serially rather than fail."""
        from repro.db.backend import create_backend
        db = create_backend("sqlite", ":memory:")
        handles = load_population(db, PopulationSpec(**SMALL),
                                  parallel=True)
        assert len(handles.logins) == SMALL["users"]
