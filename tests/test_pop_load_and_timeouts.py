"""Tests for POP load accounting (serverhosts.value1) and the §5.9
per-operation update timeout."""

from __future__ import annotations

import pytest

from repro.core import AthenaDeployment, DeploymentConfig
from repro.workload import PopulationSpec
from tests.conftest import make_user


@pytest.fixture
def pop_world(run):
    run("add_machine", "PO1.MIT.EDU", "VAX")
    run("add_machine", "PO2.MIT.EDU", "VAX")
    run("add_server_info", "POP", 0, "", "", "REPLICAT", 1, "NONE",
        "NONE")
    run("add_server_host_info", "POP", "PO1.MIT.EDU", 1, 0, 100, "")
    run("add_server_host_info", "POP", "PO2.MIT.EDU", 1, 0, 100, "")
    make_user(run, "mover")


def pop_load(run, machine):
    return run("get_server_host_info", "POP", machine)[0][10]


class TestPopLoadAccounting:
    def test_set_pobox_increments(self, run, pop_world):
        run("set_pobox", "mover", "POP", "PO1.MIT.EDU")
        assert pop_load(run, "PO1.MIT.EDU") == 1

    def test_move_between_servers_transfers_load(self, run, pop_world):
        run("set_pobox", "mover", "POP", "PO1.MIT.EDU")
        run("set_pobox", "mover", "POP", "PO2.MIT.EDU")
        assert pop_load(run, "PO1.MIT.EDU") == 0
        assert pop_load(run, "PO2.MIT.EDU") == 1

    def test_same_server_is_noop(self, run, pop_world):
        run("set_pobox", "mover", "POP", "PO1.MIT.EDU")
        run("set_pobox", "mover", "POP", "PO1.MIT.EDU")
        assert pop_load(run, "PO1.MIT.EDU") == 1

    def test_switch_to_smtp_releases_load(self, run, pop_world):
        run("set_pobox", "mover", "POP", "PO1.MIT.EDU")
        run("set_pobox", "mover", "SMTP", "mover@elsewhere.edu")
        assert pop_load(run, "PO1.MIT.EDU") == 0

    def test_delete_pobox_releases_load(self, run, pop_world):
        run("set_pobox", "mover", "POP", "PO1.MIT.EDU")
        run("delete_pobox", "mover")
        assert pop_load(run, "PO1.MIT.EDU") == 0

    def test_restore_pop_retakes_load(self, run, pop_world):
        run("set_pobox", "mover", "POP", "PO1.MIT.EDU")
        run("delete_pobox", "mover")
        run("set_pobox_pop", "mover")
        assert pop_load(run, "PO1.MIT.EDU") == 1

    def test_load_never_negative(self, run, pop_world):
        run("set_pobox", "mover", "POP", "PO1.MIT.EDU")
        run("delete_pobox", "mover")
        run("delete_pobox", "mover")  # idempotent second delete
        assert pop_load(run, "PO1.MIT.EDU") == 0


class TestUpdateTimeout:
    def test_wedged_host_is_soft_failure(self):
        """A host that is up but unresponsive times out softly and
        recovers once it speeds back up (§5.9 A)."""
        d = AthenaDeployment(DeploymentConfig(population=PopulationSpec(
            users=15, unregistered_users=0, nfs_servers=2, maillists=2,
            clusters=1, machines_per_cluster=1, printers=1,
            network_services=3)))
        daemon = d.daemons[d.handles.hesiod_machine]
        daemon.response_delay = 10_000  # wedged
        d.run_hours(7)
        row = d.db.table("serverhosts").select({"service": "HESIOD"})[0]
        assert row["success"] == 0
        assert row["hosterror"] == 0          # soft
        assert "exceeded" in row["hosterrmsg"]
        daemon.response_delay = 0
        d.run_hours(1)
        row = d.db.table("serverhosts").select({"service": "HESIOD"})[0]
        assert row["success"] == 1
