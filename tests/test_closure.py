"""Oracle tests for the membership-closure index.

The oracle is the seed's recursive walk over ``members`` (kept on
``QueryContext`` as ``_user_on_list_walk`` / ``_lists_containing_walk``)
— the closure must agree with it after arbitrary randomised churn,
including cycles, row "renames" (update_rows moving a member between
lists), changelog overflow, and concurrent mutation through the PR 2
worker pool.  When the closure is disabled or raises, answers must
still come from the walk — never be wrong, never be missing."""

from __future__ import annotations

import random
import threading

import pytest

from repro.client import MoiraClient
from repro.core import AthenaDeployment, DeploymentConfig
from repro.db.closure import MembershipClosure
from repro.db.engine import Column, Table
from repro.errors import MoiraError
from repro.protocol.transport import TcpServerTransport
from repro.workload import PopulationSpec

N_USERS = 16
N_LISTS = 12


def seed_entities(db, n_users: int = N_USERS,
                  n_lists: int = N_LISTS) -> list[int]:
    """Bare users + list rows straight into the engine; returns the
    list_ids."""
    users = db.table("users")
    for i in range(n_users):
        users.insert({"login": f"czuser{i}", "users_id": 500 + i,
                      "uid": 500 + i})
    lists = db.table("list")
    out = []
    for i in range(n_lists):
        lid = 700 + i
        lists.insert({"name": f"czlist{i}", "list_id": lid, "active": 1,
                      "acl_type": "LIST", "acl_id": lid})
        out.append(lid)
    return out


def assert_closure_matches_walk(ctx, list_ids) -> None:
    db = ctx.db
    closure = db.membership_closure()
    for i in range(N_USERS):
        uid = 500 + i
        assert (closure.lists_containing("USER", uid)
                == ctx._lists_containing_walk("USER", uid)), f"user {uid}"
    for lid in list_ids:
        assert (closure.lists_containing("LIST", lid)
                == ctx._lists_containing_walk("LIST", lid)), f"list {lid}"
        for i in range(0, N_USERS, 3):
            login = f"czuser{i}"
            assert (ctx.user_on_list_id(lid, login)
                    == ctx._user_on_list_walk(lid, 500 + i))


class TestClosureOracle:
    def test_randomised_churn_matches_walk(self, ctx):
        rng = random.Random(42)
        db = ctx.db
        list_ids = seed_entities(db)
        members = db.table("members")
        for step in range(250):
            roll = rng.random()
            existing = members.rows
            if roll < 0.45 or not existing:
                mtype = rng.choice(["USER", "USER", "LIST", "STRING"])
                mid = (500 + rng.randrange(N_USERS) if mtype == "USER"
                       else rng.choice(list_ids) if mtype == "LIST"
                       else rng.randrange(5))
                try:
                    members.insert({"list_id": rng.choice(list_ids),
                                    "member_type": mtype,
                                    "member_id": mid})
                except MoiraError:
                    pass  # duplicate membership; uniqueness holds
            elif roll < 0.7:
                members.delete_rows([rng.choice(existing)])
            else:
                # a "rename": move a membership row to another list
                try:
                    members.update_rows([rng.choice(existing)],
                                        {"list_id": rng.choice(list_ids)})
                except MoiraError:
                    pass
            if step % 25 == 0:
                assert_closure_matches_walk(ctx, list_ids)
        assert_closure_matches_walk(ctx, list_ids)
        assert db.membership_closure().syncs > 0

    def test_cycles_terminate_and_agree(self, ctx):
        db = ctx.db
        list_ids = seed_entities(db, n_lists=6)
        members = db.table("members")
        a, b, c, d = list_ids[:4]
        # a -> b -> c -> a cycle, d hanging off c, user on a
        for parent, child in ((a, b), (b, c), (c, a), (c, d)):
            members.insert({"list_id": parent, "member_type": "LIST",
                            "member_id": child})
        members.insert({"list_id": a, "member_type": "USER",
                        "member_id": 500})
        assert_closure_matches_walk(ctx, list_ids)
        closure = db.membership_closure()
        # every cycle participant transitively contains the user
        for lid in (a, b, c):
            assert closure.contains(lid, "USER", 500)
        assert not closure.contains(d, "USER", 500)

    def test_query_layer_churn_matches_walk(self, ctx, run):
        """The same oracle, driven through the real query handles."""
        rng = random.Random(7)
        for i in range(6):
            run("add_user", f"qluser{i}", 900 + i, "/bin/csh", f"Q{i}",
                "User", "", 1, f"mitid-q{i}", "1990")
        for i in range(5):
            run("add_list", f"qllist{i}", 1, 1, 0, 0, 0, 0,
                "LIST", f"qllist{i}", "closure test list")
        memberships: set[tuple[str, str, str]] = set()
        for _ in range(120):
            lname = f"qllist{rng.randrange(5)}"
            if rng.random() < 0.5:
                mtype, member = "USER", f"qluser{rng.randrange(6)}"
            else:
                mtype, member = "LIST", f"qllist{rng.randrange(5)}"
            key = (lname, mtype, member)
            try:
                if key in memberships and rng.random() < 0.6:
                    run("delete_member_from_list", *key)
                    memberships.discard(key)
                else:
                    run("add_member_to_list", *key)
                    memberships.add(key)
            except MoiraError:
                pass  # self-membership or duplicate; fine
        db = ctx.db
        closure = db.membership_closure()
        for i in range(6):
            rows = db.table("users").select({"login": f"qluser{i}"})
            uid = rows[0]["users_id"]
            assert (closure.lists_containing("USER", uid)
                    == ctx._lists_containing_walk("USER", uid))


def small_members_table(changelog: int = 4) -> Table:
    return Table(
        "members",
        [Column("list_id", int), Column("member_type", str, max_len=8),
         Column("member_id", int)],
        unique=[("list_id", "member_type", "member_id")],
        indexes=["list_id", "member_id"],
        composite_indexes=[("member_type", "member_id")],
        changelog=changelog,
    )


class TestClosureResync:
    def test_changelog_overflow_forces_rebuild(self):
        members = small_members_table(changelog=4)
        closure = MembershipClosure(members)
        members.insert({"list_id": 1, "member_type": "LIST",
                        "member_id": 2})
        assert closure.contains(1, "LIST", 2)
        rebuilds = closure.rebuilds
        # far more mutations than the log holds between lookups
        for i in range(20):
            members.insert({"list_id": 2, "member_type": "USER",
                            "member_id": 100 + i})
        members.insert({"list_id": 2, "member_type": "LIST",
                        "member_id": 3})
        assert closure.contains(1, "LIST", 3)  # via 1 -> 2 -> 3
        assert closure.contains(1, "USER", 110)
        assert closure.rebuilds > rebuilds

    def test_incremental_replay_without_rebuild(self):
        members = small_members_table(changelog=64)
        closure = MembershipClosure(members)
        closure.poke()  # initial build
        rebuilds = closure.rebuilds
        members.insert({"list_id": 5, "member_type": "LIST",
                        "member_id": 6})
        members.insert({"list_id": 6, "member_type": "USER",
                        "member_id": 9})
        assert closure.contains(5, "USER", 9)
        row = members.select({"list_id": 5})[0]
        members.delete_rows([row])
        assert not closure.contains(5, "USER", 9)
        assert closure.contains(6, "USER", 9)
        assert closure.rebuilds == rebuilds  # replayed, never rebuilt

    def test_poke_is_cheap_and_current(self):
        members = small_members_table(changelog=64)
        closure = MembershipClosure(members)
        members.insert({"list_id": 1, "member_type": "LIST",
                        "member_id": 2})
        closure.poke()
        assert closure._synced_version == members.version
        syncs = closure.syncs
        closure.poke()  # no-op: version unchanged
        assert closure.syncs == syncs

    def test_memo_overflow_recomputes_correctly(self):
        members = small_members_table(changelog=256)
        closure = MembershipClosure(members, max_cached=4)
        for child in range(2, 12):
            members.insert({"list_id": child - 1, "member_type": "LIST",
                            "member_id": child})
        for child in range(2, 12):
            assert closure.lists_containing("LIST", child) == \
                set(range(1, child))
        assert closure.memo_overflows > 0


class TestClosureFallback:
    def test_disabled_database_uses_walk(self, ctx):
        db = ctx.db
        seed_entities(db, n_users=2, n_lists=2)
        db.table("members").insert({"list_id": 700, "member_type": "USER",
                                    "member_id": 500})
        db.closure_enabled = False
        assert ctx._membership_closure() is None
        assert ctx.user_on_list_id(700, "czuser0")
        assert ctx.lists_containing("USER", 500) == {700}

    def test_broken_closure_never_breaks_answers(self, ctx, monkeypatch):
        db = ctx.db
        seed_entities(db, n_users=2, n_lists=2)
        db.table("members").insert({"list_id": 700, "member_type": "USER",
                                    "member_id": 500})
        closure = db.membership_closure()

        def boom(*a, **k):
            raise RuntimeError("closure corrupted")

        monkeypatch.setattr(closure, "contains", boom)
        monkeypatch.setattr(closure, "lists_containing", boom)
        assert ctx.user_on_list_id(700, "czuser0")
        assert ctx.lists_containing("USER", 500) == {700}


class TestClosureUnderWorkerPool:
    def test_concurrent_churn_stays_consistent(self):
        """Writers mutate memberships over TCP (through the worker
        pool) while readers run recursive retrievals; afterwards the
        closure agrees with the walk for every entity."""
        d = AthenaDeployment(DeploymentConfig(population=PopulationSpec(
            users=20, unregistered_users=0, nfs_servers=1, maillists=2,
            clusters=1, machines_per_cluster=1, printers=1,
            network_services=2)))
        direct = d.direct_client()
        logins = d.handles.logins[:8]
        for i in range(4):
            direct.query("add_list", f"pool{i}", 1, 1, 0, 0, 0, 0,
                         "LIST", f"pool{i}", "worker-pool churn")
        for i in range(3):
            direct.query("add_member_to_list", f"pool{i}", "LIST",
                         f"pool{i + 1}")
        for login in logins:
            d.make_admin(login)
        tcp = TcpServerTransport(d.server).start()
        errors: list[Exception] = []

        def churn(index: int):
            try:
                rng = random.Random(1000 + index)
                login = logins[index]
                creds = d.kdc.kinit(login, f"pw{login}")
                client = MoiraClient(tcp_address=tcp.address,
                                     kdc=d.kdc, credentials=creds,
                                     clock=d.clock)
                client.connect().auth("pool-churn")
                for step in range(25):
                    lname = f"pool{rng.randrange(4)}"
                    victim = logins[rng.randrange(len(logins))]
                    try:
                        if rng.random() < 0.6:
                            client.query("add_member_to_list", lname,
                                         "USER", victim)
                        else:
                            client.query("delete_member_from_list",
                                         lname, "USER", victim)
                    except MoiraError:
                        pass  # duplicate add / absent delete
                    if step % 5 == 0:
                        try:
                            client.query("get_lists_of_member",
                                         "RUSER", login)
                        except MoiraError:
                            pass  # no memberships right now
                client.close()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        for login in logins:
            if not d.kdc.principal_exists(login):
                d.kdc.add_principal(login, f"pw{login}")
        threads = [threading.Thread(target=churn, args=(i,))
                   for i in range(len(logins))]
        try:
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
        finally:
            tcp.stop()
        assert not errors
        ctx = direct._ctx
        users = d.db.table("users")
        for login in logins:
            uid = users.select({"login": login})[0]["users_id"]
            assert (d.db.membership_closure().lists_containing("USER", uid)
                    == ctx._lists_containing_walk("USER", uid)), login
        for i in range(4):
            lid = d.db.table("list").select(
                {"name": f"pool{i}"})[0]["list_id"]
            assert (d.db.membership_closure().lists_containing("LIST", lid)
                    == ctx._lists_containing_walk("LIST", lid))
