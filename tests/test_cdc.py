"""The CDC push pipeline: WAL-as-change-stream extraction, durable
cursors (compaction pins, restart resume, forced-compaction resync
self-heal), debounce/coalescing windows, origin-seq attribution, the
``_cdc`` observability rows, and — the load-bearing property — byte
identity between CDC-converged host files and the cron ``run_once``
oracle under randomized mutation interleavings."""

from __future__ import annotations

import random

import pytest

from repro.client.lib import MoiraClient
from repro.core import AthenaDeployment, DeploymentConfig
from repro.db.journal import Journal
from repro.dcm.cdc import CdcCursor, CdcExtractor, JournalChangeSource
from repro.replication.feed import CURSOR_ROW
from repro.sim.clock import DEFAULT_EPOCH
from repro.workload import PopulationSpec

SMALL = PopulationSpec(users=40, unregistered_users=5, nfs_servers=3,
                       maillists=8, clusters=3, machines_per_cluster=2,
                       printers=5, network_services=12)

BASE = DEFAULT_EPOCH + 1000

# push residue that legitimately differs between delta and full pushes
# (staged tars, install scripts, .moira_old backups) and daemon pid
# files (restart counts track push counts, not content) — the oracle
# compares the *installed* files, the bytes the services actually serve
RESIDUE = (".moira_update", ".moira_old", ".pid")
SCRIPT_TEMP = "/tmp/moira_install_script"


def make_deployment(**overrides) -> AthenaDeployment:
    config = dict(population=SMALL, cdc=True)
    config.update(overrides)
    return AthenaDeployment(DeploymentConfig(**config))


@pytest.fixture
def deployment():
    d = make_deployment()
    d.run_hours(7)      # cron builds + pushes the initial generation
    return d


def service_row(d, name):
    return d.db.table("servers").select({"name": name})[0]


def host_rows(d, name):
    return d.db.table("serverhosts").select({"service": name})


def installed_files(d) -> dict[str, dict[str, bytes]]:
    """Every host's installed config files (push residue excluded)."""
    snapshot = {}
    for name, host in sorted(d.hosts.items()):
        files = {}
        for path in host.fs.listdir(""):
            if path.endswith(RESIDUE) or path == SCRIPT_TEMP:
                continue
            files[path] = host.fs.read(path)
        snapshot[name] = files
    return snapshot


def add_user(client, login, uid):
    client.query("add_user", login, str(uid), "/bin/csh", "User",
                 login.capitalize(), "X", "1", str(900000 + uid), "G")


# -- the durable cursor --------------------------------------------------------


class TestCursor:
    def test_memory_cursor(self):
        cursor = CdcCursor()
        assert cursor.seq == 0 and not cursor.loaded
        cursor.advance_to(5)
        cursor.advance_to(3)        # monotonic: no going back
        assert cursor.seq == 5
        cursor.reset(2)             # ...except by explicit reset
        assert cursor.seq == 2

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "cursor.json"
        CdcCursor("cdc", path).advance_to(42)
        reloaded = CdcCursor("cdc", path)
        assert reloaded.loaded and reloaded.seq == 42

    def test_unreadable_token_starts_cold(self, tmp_path):
        path = tmp_path / "cursor.json"
        path.write_text("not json")
        cursor = CdcCursor("cdc", path)
        assert cursor.seq == 0 and not cursor.loaded

    def test_fresh_extractor_starts_at_stream_head(self, deployment):
        # no durable token: the extractor must not replay history it
        # cannot attribute (the initial cron push covered it)
        d = deployment
        assert d.cdc.cursor.seq == d.journal.current_seq()
        assert d.cdc.cursor_lag() == 0

    def test_restart_resumes_from_durable_token(self, tmp_path):
        d = make_deployment(cdc_cursor_path=tmp_path / "cursor.json")
        d.run_hours(7)
        d.pump_cdc()
        token = d.cdc.cursor.seq
        add_user(d.direct_client(), "restarted", 20950)
        # crash before the pump: the mutation is committed but not
        # converged, and the durable token still floors it
        d.cdc.close()
        revived = CdcExtractor(
            d.dcm, JournalChangeSource(d.journal), d.clock,
            journal=d.journal, cursor_path=tmp_path / "cursor.json")
        assert revived.cursor.loaded
        assert revived.cursor.seq == token
        summary = revived.pump()
        assert "HESIOD" in summary["converged"]
        hesiod = d.hosts[d.handles.hesiod_machine.upper()]
        assert b"restarted" in hesiod.fs.read("/etc/hesiod/passwd.db")
        revived.close()


# -- compaction pins and the resync self-heal ---------------------------------


class TestCompactionPins:
    def shell(self, journal, login, sh):
        return journal.record(BASE, "root", "update_user_shell",
                              (login, sh))

    def test_cursor_pins_compaction(self):
        journal = Journal()
        self.shell(journal, "ann", "/bin/sh")
        self.shell(journal, "ann", "/bin/csh")
        self.shell(journal, "ann", "/bin/tcsh")
        journal.set_cursor("cdc", 1)
        # seq 1 is below the cursor (already processed): droppable.
        # seq 2 is superseded too but sits above the pin: retained, so
        # the extractor's tail(1) still finds a contiguous suffix.
        out = journal.compact(
            supersedable={"update_user_shell": 0})
        assert out["dropped"] == 1
        assert [e.seq for e in journal.entries] == [2, 3]
        _oldest, _current, entries = journal.tail(1)
        assert entries is not None and len(entries) == 2
        journal.clear_cursor("cdc")
        assert journal.compact(
            supersedable={"update_user_shell": 0})["dropped"] == 1
        assert [e.seq for e in journal.entries] == [3]

    def test_cursor_listed_in_stats(self):
        journal = Journal()
        journal.set_cursor("cdc", 7)
        assert journal.stats()["cursors"] == {"cdc": 7}

    def test_forced_compaction_ignores_cursor(self):
        journal = Journal()
        self.shell(journal, "ann", "/bin/sh")
        self.shell(journal, "ann", "/bin/csh")
        journal.set_cursor("cdc", 0)
        assert journal.compact(supersedable={"update_user_shell": 0},
                               force=True)["dropped"] == 1

    def test_default_compaction_never_strands_extractor(self, deployment):
        d = deployment
        add_user(d.direct_client(), "pinned", 20951)
        # cursor is behind (pump not yet run); default compaction must
        # respect the pin so the poll still sees the mutation
        d.compact_wal()
        summary = d.pump_cdc()
        assert d.cdc.stats["resyncs"] == 0
        assert "HESIOD" in summary["converged"]
        hesiod = d.hosts[d.handles.hesiod_machine.upper()]
        assert b"pinned" in hesiod.fs.read("/etc/hesiod/passwd.db")

    def test_forced_compaction_resync_self_heals(self, deployment):
        """Forced compaction past the cursor wipes the window the
        extractor was counting on; the next pump must detect it, reset
        the cursor, and reconverge *every* service from current state
        — and the result must still carry the missed mutation."""
        d = deployment
        client = d.direct_client()
        add_user(client, "healme", 20952)
        # a superseded record above the cursor: forced compaction folds
        # it and the floor lands past the cursor — a real hole
        client.query("update_user_shell", "healme", "/bin/sh")
        client.query("update_user_shell", "healme", "/bin/tcsh")
        out = d.compact_wal(force=True)     # ignores the cursor pin
        assert out["dropped"] >= 1
        assert d.cdc.cursor.seq < d.journal.stats()["compact_floor"]
        summary = d.pump_cdc()
        assert d.cdc.stats["resyncs"] == 1
        # the full-reconvergence cycle touched every pushable service
        assert set(summary["converged"]) >= {"HESIOD", "MAIL", "NFS",
                                             "ZEPHYR"}
        assert d.cdc.cursor.seq == d.journal.current_seq()
        assert d.cdc.cursor_lag() == 0
        hesiod = d.hosts[d.handles.hesiod_machine.upper()]
        assert b"healme" in hesiod.fs.read("/etc/hesiod/passwd.db")
        # converged is converged: the next cron cycle stays a no-op
        before = installed_files(d)
        d.run_hours(25)
        assert installed_files(d) == before


# -- mapping, debounce, coalescing --------------------------------------------


class TestMappingAndCoalescing:
    def test_sub_second_convergence(self, deployment):
        """The headline: mutation to converged host within the same
        virtual second (the cron baseline is hours)."""
        d = deployment
        t0 = d.clock.now()
        add_user(d.direct_client(), "speedy", 20953)
        summary = d.pump_cdc()
        assert summary["now"] == t0     # zero virtual seconds elapsed
        hesiod = d.hosts[d.handles.hesiod_machine.upper()]
        assert b"speedy" in hesiod.fs.read("/etc/hesiod/passwd.db")
        assert d.cdc.cursor_lag() == 0

    def test_footprint_maps_to_dependent_services_only(self, deployment):
        d = deployment
        d.direct_client().query("add_cluster", "cdcc", "test", "e40")
        d.cdc.poll()
        # the cluster relation feeds only the Hesiod generator
        assert sorted(d.cdc._pending) == ["HESIOD"]
        d.pump_cdc()

    def test_bookkeeping_writes_do_not_feed_back(self, deployment):
        d = deployment
        add_user(d.direct_client(), "fedback", 20954)
        d.pump_cdc()
        # the pushes journaled flag writes; they must not re-dirty
        pumped = d.cdc.stats["pumps"]
        summary = d.pump_cdc()
        assert summary["converged"] == []
        assert summary["pending"] == []
        assert d.cdc.stats["entries_ignored"] > 0
        assert d.cdc.stats["pumps"] == pumped + 1
        assert d.cdc.cursor_lag() == 0

    def test_idle_pump_probe_is_cheap(self, deployment):
        d = deployment
        add_user(d.direct_client(), "probed", 20955)
        assert d.cdc.has_work        # commit listener raised the flag
        d.pump_cdc()
        assert not d.cdc.has_work    # settled: cron ticks stay no-ops

    def test_debounce_window_holds_convergence(self):
        d = make_deployment(cdc_debounce_seconds=300)
        d.run_hours(7)
        add_user(d.direct_client(), "slowed", 20956)
        summary = d.pump_cdc()
        assert summary["converged"] == []
        assert summary["pending"]            # window open, not due
        assert d.cdc.debounce_occupancy() > 0
        # the open window floors the durable cursor below the mutation
        assert d.cdc.cursor.seq < d.journal.current_seq()
        d.clock.advance(300)
        summary = d.pump_cdc()
        assert "HESIOD" in summary["converged"]
        hesiod = d.hosts[d.handles.hesiod_machine.upper()]
        assert b"slowed" in hesiod.fs.read("/etc/hesiod/passwd.db")
        assert d.cdc.cursor_lag() == 0

    def test_max_coalesce_forces_early_convergence(self):
        d = make_deployment(cdc_debounce_seconds=100000,
                            cdc_max_coalesce=5)
        d.run_hours(7)
        client = d.direct_client()
        for i in range(5):
            add_user(client, f"burst{i}", 20960 + i)
        summary = d.pump_cdc()
        assert "HESIOD" in summary["converged"]   # window overflowed
        assert d.cdc.stats["pushes_coalesced"] > 0

    def test_storm_coalesces_into_batched_pushes(self, deployment):
        """A registration storm rides a handful of pushes: mutations
        coalesce per service, and each service pushes each host once."""
        d = deployment
        client = d.direct_client()
        n = 50
        for i in range(n):
            add_user(client, f"storm{i:03d}", 21000 + i)
        summary = d.pump_cdc()
        assert "HESIOD" in summary["converged"]
        total_hosts = len(d.db.table("serverhosts").rows)
        assert d.cdc.stats["host_pushes"] <= total_hosts
        assert d.cdc.stats["pushes_coalesced"] >= (n - 1)
        hesiod = d.hosts[d.handles.hesiod_machine.upper()]
        passwd = hesiod.fs.read("/etc/hesiod/passwd.db")
        for i in range(n):
            assert f"storm{i:03d}".encode() in passwd

    def test_fresh_hosts_get_delta_payloads(self, deployment):
        d = deployment
        add_user(d.direct_client(), "deltaed", 21100)
        d.pump_cdc()
        # the hesiod host was converged to the previous generation, so
        # it received only the files whose bytes changed
        assert d.cdc.stats["delta_pushes"] >= 1
        row = [h for h in host_rows(d, "HESIOD")][0]
        assert row["success"] == 1


# -- byte identity against the cron oracle (randomized interleavings) ---------


class MutationScript:
    """A seeded mutation stream applied identically to two worlds."""

    OPS = ("add_user", "shell", "status", "list_add", "list_del",
           "machine", "noop_round")

    def __init__(self, seed: int):
        self.rng = random.Random(seed)
        self.next_uid = 22000 + seed * 500
        self.users: list[str] = []
        self.listed: list[str] = []

    def setup(self, clients):
        for c in clients:
            c.query("add_list", "cdcpool", 1, 1, 0, 1, 0, 0,
                    "LIST", "cdcpool", "cdc interleaving pool")

    def step(self, clients):
        op = self.rng.choice(self.OPS)
        if op == "add_user" or not self.users:
            login = f"mix{self.next_uid}"
            uid = self.next_uid
            self.next_uid += 1
            for c in clients:
                add_user(c, login, uid)
            self.users.append(login)
        elif op == "shell":
            login = self.rng.choice(self.users)
            sh = self.rng.choice(["/bin/sh", "/bin/csh", "/bin/tcsh"])
            for c in clients:
                c.query("update_user_shell", login, sh)
        elif op == "status":
            login = self.rng.choice(self.users)
            status = self.rng.choice(["1", "2"])
            for c in clients:
                c.query("update_user_status", login, status)
        elif op == "list_add":
            login = self.rng.choice(self.users)
            if login not in self.listed:
                for c in clients:
                    c.query("add_member_to_list", "cdcpool", "USER",
                            login)
                self.listed.append(login)
        elif op == "list_del":
            if self.listed:       # the delete-only shape
                login = self.listed.pop(
                    self.rng.randrange(len(self.listed)))
                for c in clients:
                    c.query("delete_member_from_list", "cdcpool",
                            "USER", login)
        elif op == "machine":
            name = f"CDCM{self.next_uid}"
            self.next_uid += 1
            for c in clients:
                c.query("add_machine", name, "VAX")
        elif op == "noop_round":
            # net no-op: two journaled writes, zero content change
            login = self.rng.choice(self.users)
            for c in clients:
                c.query("update_user_status", login, "2")
                c.query("update_user_status", login, "1")


class TestByteIdentityOracle:
    @pytest.mark.parametrize("seed", [1, 2])
    def test_random_interleaving_matches_cron_oracle(self, seed):
        """CDC-converged host files must be byte-identical to what a
        from-scratch cron deployment builds from the same mutations."""
        cdc_world = make_deployment()
        cron_world = make_deployment(cdc=False)
        for d in (cdc_world, cron_world):
            d.run_hours(7)
        clients = [cdc_world.direct_client(), cron_world.direct_client()]
        script = MutationScript(seed)
        script.setup(clients)
        cdc_world.pump_cdc()
        for _ in range(4):
            for _ in range(script.rng.randrange(1, 6)):
                script.step(clients)
            cdc_world.pump_cdc()       # converge per batch, not per cycle
        assert cdc_world.cdc.cursor_lag() == 0
        # the oracle converges the slow way: full cron cycles
        cron_world.run_hours(25)
        assert installed_files(cdc_world) == installed_files(cron_world)

    def test_delete_only_round(self):
        cdc_world = make_deployment()
        cron_world = make_deployment(cdc=False)
        for d in (cdc_world, cron_world):
            d.run_hours(7)
        clients = [cdc_world.direct_client(), cron_world.direct_client()]
        lists = cdc_world.handles.maillist_names
        victim = cdc_world.db.table("members").select(
            {"list_id": cdc_world.db.table("list").select(
                {"name": lists[0]})[0]["list_id"],
             "member_type": "USER"})[0]
        login = cdc_world.db.table("users").select(
            {"users_id": victim["member_id"]})[0]["login"]
        for c in clients:
            c.query("delete_member_from_list", lists[0], "USER", login)
        summary = cdc_world.pump_cdc()
        assert summary["converged"]
        cron_world.run_hours(25)
        assert installed_files(cdc_world) == installed_files(cron_world)

    def test_no_change_mutation_keeps_hosts_converged(self, deployment):
        """A journaled write whose regenerated bytes are identical must
        not bump dfgen: converged hosts stay converged and cron stays a
        no-op."""
        d = deployment
        client = d.direct_client()
        login = d.handles.logins[0]
        dfgen = service_row(d, "HESIOD")["dfgen"]
        client.query("update_user_status", login, "2")
        client.query("update_user_status", login, "1")
        summary = d.pump_cdc()
        outcomes = {o["service"]: o["status"] for o in
                    summary["outcomes"]}
        assert outcomes["HESIOD"] == "no_change"
        assert service_row(d, "HESIOD")["dfgen"] == dfgen
        assert d.cdc.stats["converges_no_change"] >= 1

    def test_cron_noop_after_cdc_convergence(self, deployment):
        d = deployment
        add_user(d.direct_client(), "settled", 21200)
        d.pump_cdc()
        before = installed_files(d)
        report = d.dcm.run_once()
        assert report.propagations_attempted == 0
        assert installed_files(d) == before


# -- origin-seq attribution (stuck consumers name their commit) ----------------


class TestOriginAttribution:
    def test_hard_failure_carries_origin_seq(self, deployment):
        d = deployment
        daemon = d.daemons[d.handles.mailhub_machine]
        daemon.register_command("install_aliases", lambda: 1)
        add_user(d.direct_client(), "stuckon", 21300)
        origin = d.journal.current_seq()
        summary = d.pump_cdc()
        mail = [o for o in summary["outcomes"]
                if o["service"] == "MAIL"][0]
        assert mail["hard_failures"] == 1
        assert mail["origin_seq"] >= origin
        tagged = [n for n in d.notifications
                  if n[0] == "MOIRA" and "origin seq" in n[2]]
        assert tagged
        assert f"origin seq {mail['origin_seq']}" in tagged[0][2]
        assert any("origin seq" in m for _a, m in d.mail_sent)

    def test_cron_path_reports_origins_too(self, deployment):
        d = deployment
        daemon = d.daemons[d.handles.mailhub_machine]
        daemon.register_command("install_aliases", lambda: 1)
        add_user(d.direct_client(), "cronstuck", 21301)
        d.clock.advance(24 * 3600)      # MAIL due; cron path, no pump
        report = d.dcm.run_once()
        origins = report.hard_failure_origins
        assert any("MAIL" in what for what, _seq in origins)
        assert all(seq > 0 for _what, seq in origins)


# -- observability -------------------------------------------------------------


class TestObservability:
    def test_dcm_stats_exposes_cdc_rows(self, deployment):
        d = deployment
        add_user(d.direct_client(), "statrow", 21400)
        d.pump_cdc()
        client = MoiraClient(dispatcher=d.server).connect()
        rows = client.query("_dcm_stats")
        client.close()
        cdc = {r[1]: r[2] for r in rows if r[0] == "_cdc"}
        assert int(cdc["cursor"]) == d.journal.current_seq()
        assert int(cdc["cursor_lag"]) == 0
        assert int(cdc["debounce_occupancy"]) == 0
        assert int(cdc["converges"]) >= 1
        assert int(cdc["pumps"]) >= 1
        per_service = {r[1]: r for r in rows if r[0] == "_cdc.service"}
        assert "HESIOD" in per_service
        hesiod = per_service["HESIOD"]
        assert int(hesiod[2]) > 0      # last_converged_seq
        assert int(hesiod[3]) >= 1     # converges

    def test_repl_status_lists_cursor(self, deployment):
        d = deployment
        d.pump_cdc()
        client = MoiraClient(dispatcher=d.server).connect()
        rows = client.query("_repl_status")
        client.close()
        cursors = {r[1]: int(r[2]) for r in rows if r[0] == CURSOR_ROW}
        assert cursors["cdc"] == d.cdc.cursor.seq


# -- the extraction-replica shape ----------------------------------------------


class TestReplicaSource:
    def test_extraction_from_replica(self):
        d = make_deployment(cdc_source="replica", replicas=1)
        d.run_hours(7)
        replica = d.replica_cluster.replicas[0]
        assert d.cdc.extract_db is replica.db
        add_user(d.direct_client(), "offloaded", 21500)
        summary = d.pump_cdc()      # poll steps the replica first
        assert "HESIOD" in summary["converged"]
        hesiod = d.hosts[d.handles.hesiod_machine.upper()]
        assert b"offloaded" in hesiod.fs.read("/etc/hesiod/passwd.db")
        # the durable cursor pins the PRIMARY journal either way
        assert d.journal.cursors()["cdc"] == d.cdc.cursor.seq

    def test_replica_resync_triggers_full_reconvergence(self):
        d = make_deployment(cdc_source="replica", replicas=1)
        d.run_hours(7)
        add_user(d.direct_client(), "resynced", 21501)
        # wipe the replica's incremental stream: snapshot reload
        replica = d.replica_cluster.replicas[0]
        replica.sync_snapshot()
        summary = d.pump_cdc()
        assert d.cdc.stats["resyncs"] >= 1
        assert set(summary["converged"]) >= {"HESIOD", "MAIL", "NFS",
                                             "ZEPHYR"}
        hesiod = d.hosts[d.handles.hesiod_machine.upper()]
        assert b"resynced" in hesiod.fs.read("/etc/hesiod/passwd.db")
