"""Tests for the user/finger/pobox predefined queries (§7.0.1)."""

from __future__ import annotations

import pytest

from repro.db.schema import UNIQUE_LOGIN, UNIQUE_UID
from repro.errors import (
    MoiraError,
    MR_BAD_CLASS,
    MR_IN_USE,
    MR_MACHINE,
    MR_NO_MATCH,
    MR_NO_POBOX,
    MR_NOT_UNIQUE,
    MR_TYPE,
    MR_USER,
)
from tests.conftest import make_user


def expect_error(code, fn, *args):
    with pytest.raises(MoiraError) as exc:
        fn(*args)
    assert exc.value.code == code, exc.value


class TestAddUser:
    def test_add_and_get(self, run):
        run("add_user", "babette", 6530, "/bin/csh", "Fowler", "Harmon",
            "C", 1, "crypt", "1990")
        row = run("get_user_by_login", "babette")[0]
        assert row[0] == "babette"
        assert row[1] == 6530
        assert row[6] == 1

    def test_unique_uid_sentinel_allocates(self, run):
        run("add_user", "u1", UNIQUE_UID, "/bin/csh", "A", "B", "", 1,
            "", "1990")
        run("add_user", "u2", UNIQUE_UID, "/bin/csh", "A", "B", "", 1,
            "", "1990")
        uid1 = run("get_user_by_login", "u1")[0][1]
        uid2 = run("get_user_by_login", "u2")[0][1]
        assert uid2 == uid1 + 1

    def test_unique_login_sentinel(self, run):
        run("add_user", UNIQUE_LOGIN, 7000, "/bin/csh", "A", "B", "", 0,
            "", "1990")
        row = run("get_user_by_login", "#7000")[0]
        assert row[0] == "#7000"

    def test_duplicate_login_rejected(self, run):
        make_user(run, "dup")
        expect_error(MR_NOT_UNIQUE, run, "add_user", "dup", UNIQUE_UID,
                     "/bin/csh", "A", "B", "", 1, "", "1990")

    def test_bad_class_rejected(self, run):
        expect_error(MR_BAD_CLASS, run, "add_user", "x", UNIQUE_UID,
                     "/bin/csh", "A", "B", "", 1, "", "NOCLASS")

    def test_add_initializes_pobox_none(self, run):
        make_user(run, "fresh")
        assert run("get_pobox", "fresh")[0][1] == "NONE"

    def test_add_initializes_finger_fullname(self, run):
        run("add_user", "finger", UNIQUE_UID, "/bin/csh", "Last", "First",
            "M", 1, "", "1990")
        finger = run("get_finger_by_login", "finger")[0]
        assert finger[1] == "First M Last"


class TestGetUsers:
    def test_wildcard_login(self, run):
        make_user(run, "wilma")
        make_user(run, "wilbur")
        make_user(run, "fred")
        rows = run("get_user_by_login", "wil*")
        assert {r[0] for r in rows} == {"wilma", "wilbur"}

    def test_get_by_uid(self, run):
        make_user(run, "byuid", uid=4242)
        assert run("get_user_by_uid", "4242")[0][0] == "byuid"

    def test_get_by_name_wildcards(self, run):
        run("add_user", "n1", UNIQUE_UID, "/bin/csh", "Smith", "Alice",
            "", 1, "", "1990")
        run("add_user", "n2", UNIQUE_UID, "/bin/csh", "Smith", "Bob", "",
            1, "", "1990")
        rows = run("get_user_by_name", "*", "Smith")
        assert len(rows) == 2

    def test_get_by_class(self, run):
        make_user(run, "grad", year="G")
        make_user(run, "senior", year="1989")
        rows = run("get_user_by_class", "G")
        assert [r[0] for r in rows] == ["grad"]

    def test_no_match_raises(self, run):
        expect_error(MR_NO_MATCH, run, "get_user_by_login", "ghost")

    def test_all_vs_active_logins(self, run):
        make_user(run, "active1", status=1)
        make_user(run, "inactive", status=0)
        all_rows = run("get_all_logins")
        active_rows = run("get_all_active_logins")
        assert {r[0] for r in all_rows} == {"active1", "inactive"}
        assert {r[0] for r in active_rows} == {"active1"}


class TestUpdateUser:
    def test_rename_preserves_identity(self, run):
        make_user(run, "oldname")
        uid = run("get_user_by_login", "oldname")[0][1]
        run("update_user", "oldname", "newname", uid, "/bin/sh", "N",
            "N", "", 1, "", "1990")
        assert run("get_user_by_login", "newname")[0][1] == uid
        expect_error(MR_NO_MATCH, run, "get_user_by_login", "oldname")

    def test_rename_to_taken_name(self, run):
        make_user(run, "a")
        make_user(run, "b")
        uid = run("get_user_by_login", "a")[0][1]
        expect_error(MR_NOT_UNIQUE, run, "update_user", "a", "b", uid,
                     "/bin/csh", "A", "A", "", 1, "", "1990")

    def test_update_shell(self, run):
        make_user(run, "sheller")
        run("update_user_shell", "sheller", "/bin/sh")
        assert run("get_user_by_login", "sheller")[0][2] == "/bin/sh"

    def test_update_status(self, run):
        make_user(run, "st", status=1)
        run("update_user_status", "st", 3)
        assert run("get_user_by_login", "st")[0][6] == 3

    def test_update_nonexistent_user(self, run):
        expect_error(MR_USER, run, "update_user_shell", "ghost",
                     "/bin/sh")

    def test_wildcard_matching_multiple_users_not_unique(self, run):
        make_user(run, "pat1")
        make_user(run, "pat2")
        expect_error(MR_NOT_UNIQUE, run, "update_user_shell", "pat*",
                     "/bin/sh")


class TestDeleteUser:
    def test_delete_requires_status_zero(self, run):
        make_user(run, "victim", status=1)
        expect_error(MR_IN_USE, run, "delete_user", "victim")
        run("update_user_status", "victim", 0)
        run("delete_user", "victim")
        expect_error(MR_NO_MATCH, run, "get_user_by_login", "victim")

    def test_delete_list_member_refused(self, run):
        make_user(run, "member", status=0)
        run("add_list", "keeper", 1, 0, 0, 1, 0, 0, "NONE", "NONE", "d")
        run("add_member_to_list", "keeper", "USER", "member")
        expect_error(MR_IN_USE, run, "delete_user", "member")

    def test_delete_by_uid(self, run):
        make_user(run, "byuid2", status=0, uid=5151)
        run("delete_user_by_uid", 5151)
        expect_error(MR_NO_MATCH, run, "get_user_by_login", "byuid2")

    def test_delete_ace_holder_refused(self, run):
        make_user(run, "acer", status=0)
        run("add_list", "guarded", 1, 0, 0, 1, 0, 0, "USER", "acer", "d")
        expect_error(MR_IN_USE, run, "delete_user", "acer")


class TestFinger:
    def test_update_and_get(self, run):
        make_user(run, "fingered")
        run("update_finger_by_login", "fingered", "Full Name", "nick",
            "1 Home St", "555-1234", "E40-342", "555-9876", "EECS",
            "undergraduate")
        row = run("get_finger_by_login", "fingered")[0]
        assert row[1] == "Full Name"
        assert row[2] == "nick"
        assert row[7] == "EECS"

    def test_finger_modtime_separate_from_user_modtime(self, ctx, run,
                                                       clock):
        make_user(run, "fmod")
        before = run("get_user_by_login", "fmod")[0][9]
        clock.advance(100)
        run("update_finger_by_login", "fmod", "F", "", "", "", "", "", "",
            "")
        row = run("get_finger_by_login", "fmod")[0]
        assert row[9] == before + 100   # fmodtime updated
        assert run("get_user_by_login", "fmod")[0][9] == before


class TestPobox:
    def _machine(self, run, name="E40-PO.MIT.EDU"):
        run("add_machine", name, "VAX")
        return name

    def test_set_pop_pobox(self, run):
        make_user(run, "popper")
        machine = self._machine(run)
        run("set_pobox", "popper", "POP", machine)
        row = run("get_pobox", "popper")[0]
        assert row[1] == "POP"
        assert row[2] == machine

    def test_pop_box_requires_real_machine(self, run):
        """The paper's e40-p0 typo scenario."""
        make_user(run, "typo")
        self._machine(run, "E40-PO.MIT.EDU")
        expect_error(MR_MACHINE, run, "set_pobox", "typo", "POP",
                     "E40-P0.MIT.EDU")

    def test_smtp_pobox(self, run):
        make_user(run, "smtper")
        run("set_pobox", "smtper", "SMTP", "smtper@other.edu")
        row = run("get_pobox", "smtper")[0]
        assert row[1] == "SMTP"
        assert row[2] == "smtper@other.edu"

    def test_bad_type(self, run):
        make_user(run, "badtype")
        expect_error(MR_TYPE, run, "set_pobox", "badtype", "UUCP", "x")

    def test_delete_pobox_sets_none(self, run):
        make_user(run, "deleter")
        machine = self._machine(run)
        run("set_pobox", "deleter", "POP", machine)
        run("delete_pobox", "deleter")
        assert run("get_pobox", "deleter")[0][1] == "NONE"

    def test_set_pobox_pop_restores_previous(self, run):
        make_user(run, "restorer")
        machine = self._machine(run)
        run("set_pobox", "restorer", "POP", machine)
        run("delete_pobox", "restorer")
        run("set_pobox_pop", "restorer")
        row = run("get_pobox", "restorer")[0]
        assert row[1] == "POP"
        assert row[2] == machine

    def test_set_pobox_pop_without_history_fails(self, run):
        make_user(run, "nohist")
        expect_error(MR_MACHINE, run, "set_pobox_pop", "nohist")

    def test_get_poboxes_filtered_by_type(self, run):
        make_user(run, "p1")
        make_user(run, "p2")
        machine = self._machine(run)
        run("set_pobox", "p1", "POP", machine)
        run("set_pobox", "p2", "SMTP", "p2@elsewhere.org")
        pops = run("get_poboxes_pop")
        smtps = run("get_poboxes_smtp")
        assert [r[0] for r in pops] == ["p1"]
        assert [r[0] for r in smtps] == ["p2"]
        assert {r[0] for r in run("get_all_poboxes")} == {"p1", "p2"}


class TestRegisterUser:
    def _setup_infrastructure(self, run):
        run("add_machine", "PO.MIT.EDU", "VAX")
        run("add_server_info", "POP", 0, "", "", "REPLICAT", 1, "NONE",
            "NONE")
        run("add_server_host_info", "POP", "PO.MIT.EDU", 1, 0, 100, "")
        run("add_machine", "FS.MIT.EDU", "VAX")
        run("add_nfsphys", "FS.MIT.EDU", "/u1", "ra81", 1, 0, 10000)

    def test_full_registration(self, run, db):
        self._setup_infrastructure(run)
        run("add_user", UNIQUE_LOGIN, 7100, "/bin/csh", "Student", "New",
            "", 0, "hash", "1992")
        run("register_user", 7100, "newkid", 1)
        row = run("get_user_by_login", "newkid")[0]
        assert row[6] == 2  # half-registered
        # pobox assigned
        assert run("get_pobox", "newkid")[0][1] == "POP"
        # personal group created with the user as member
        members = run("get_members_of_list", "newkid")
        assert members == [("USER", "newkid")]
        # home filesystem + quota
        fs = run("get_filesys_by_label", "newkid")[0]
        assert fs[10] == "HOMEDIR"
        quota = run("get_nfs_quota", "newkid", "newkid")[0]
        assert int(quota[2]) == db.get_value("def_quota")

    def test_register_taken_login(self, run):
        self._setup_infrastructure(run)
        make_user(run, "taken")
        run("add_user", UNIQUE_LOGIN, 7200, "/bin/csh", "S", "T", "", 0,
            "", "1992")
        expect_error(MR_IN_USE, run, "register_user", 7200, "taken", 1)

    def test_register_active_account_refused(self, run):
        self._setup_infrastructure(run)
        make_user(run, "already", status=1, uid=7300)
        expect_error(MR_IN_USE, run, "register_user", 7300, "again", 1)

    def test_register_without_pop_space(self, run):
        run("add_machine", "FS.MIT.EDU", "VAX")
        run("add_nfsphys", "FS.MIT.EDU", "/u1", "ra81", 1, 0, 10000)
        run("add_user", UNIQUE_LOGIN, 7400, "/bin/csh", "S", "T", "", 0,
            "", "1992")
        expect_error(MR_NO_POBOX, run, "register_user", 7400, "nopop", 1)

    def test_registration_updates_pop_load(self, run, db):
        self._setup_infrastructure(run)
        run("add_user", UNIQUE_LOGIN, 7500, "/bin/csh", "S", "T", "", 0,
            "", "1992")
        run("register_user", 7500, "loaded", 1)
        row = run("get_server_host_info", "POP", "PO.MIT.EDU")[0]
        assert row[10] == 1  # value1 incremented
