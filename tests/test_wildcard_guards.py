"""New object names must not contain wildcard characters — a name like
``bab*`` would poison every later exact-match lookup."""

from __future__ import annotations

import pytest

from repro.errors import MoiraError, MR_WILDCARD
from tests.conftest import make_user


def expect_wildcard(run, name, *args):
    with pytest.raises(MoiraError) as exc:
        run(name, *args)
    assert exc.value.code == MR_WILDCARD


class TestWildcardGuards:
    def test_add_user(self, run):
        expect_wildcard(run, "add_user", "bab*", -1, "/bin/csh", "L",
                        "F", "", 1, "", "1990")
        expect_wildcard(run, "add_user", "who?", -1, "/bin/csh", "L",
                        "F", "", 1, "", "1990")

    def test_unique_login_sentinel_still_works(self, run):
        # "#" is the UNIQUE_LOGIN sentinel, not a wildcard
        run("add_user", "#", 7777, "/bin/csh", "L", "F", "", 0, "",
            "1990")
        assert run("get_user_by_login", "#7777")

    def test_rename_user(self, run):
        make_user(run, "renameme")
        uid = run("get_user_by_login", "renameme")[0][1]
        expect_wildcard(run, "update_user", "renameme", "re*named", uid,
                        "/bin/csh", "L", "F", "", 1, "", "1990")

    def test_register_user(self, run):
        run("add_user", "#", 7778, "/bin/csh", "L", "F", "", 0, "",
            "1992")
        expect_wildcard(run, "register_user", 7778, "new*kid", 1)

    def test_add_list(self, run):
        expect_wildcard(run, "add_list", "every*", 1, 0, 0, 1, 0, 0,
                        "NONE", "NONE", "")

    def test_add_machine(self, run):
        expect_wildcard(run, "add_machine", "HOST?.MIT.EDU", "VAX")

    def test_add_cluster(self, run):
        expect_wildcard(run, "add_cluster", "bldg*", "", "")

    def test_wildcards_still_fine_in_lookups(self, run):
        make_user(run, "wildok")
        assert run("get_user_by_login", "wild*")
