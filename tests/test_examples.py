"""Smoke tests: every shipped example must run to completion."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("example", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(example):
    result = subprocess.run(
        [sys.executable, str(example)],
        capture_output=True, text=True, timeout=300)
    assert result.returncode == 0, result.stderr[-2000:]
    assert any(marker in result.stdout
               for marker in ("Done", "End of day"))
