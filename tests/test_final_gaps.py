"""Final coverage batch: generator exceptions, cache eviction, config
toggles, and seeding idempotency."""

from __future__ import annotations

import pytest

from repro.core import AthenaDeployment, DeploymentConfig
from repro.dcm.generators.base import Generator, register_generator
from repro.server.access import AccessCache, seed_capacls
from repro.workload import PopulationSpec

SMALL = PopulationSpec(users=15, unregistered_users=0, nfs_servers=2,
                       maillists=3, clusters=1, machines_per_cluster=1,
                       printers=1, network_services=3)


class ExplodingGenerator(Generator):
    """A generator whose extract crashes — a coding error in a .gen."""

    service = "BROKEN"
    tables = ("values",)

    def generate(self, ctx):
        """Always raise."""
        raise RuntimeError("bug in the generator")


class TestGeneratorCrash:
    def test_generator_exception_is_service_hard_error(self):
        d = AthenaDeployment(DeploymentConfig(population=SMALL))
        register_generator(ExplodingGenerator())
        client = d.direct_client()
        client.query("add_machine", "B.MIT.EDU", "VAX")
        client.query("add_server_info", "BROKEN", 30, "/tmp/b.out",
                     "/bin/b.sh", "UNIQUE", 1, "NONE", "NONE")
        client.query("add_server_host_info", "BROKEN", "B.MIT.EDU", 1,
                     0, 0, "")
        d.run_hours(1)
        row = d.db.table("servers").select({"name": "BROKEN"})[0]
        assert row["harderror"] == 1
        assert "generator failed" in row["errmsg"]
        # the operators heard about it
        assert any("BROKEN" in n[2] for n in d.notifications)
        # and the other services were unaffected
        d.run_hours(7)
        hesiod = d.db.table("servers").select({"name": "HESIOD"})[0]
        assert hesiod["harderror"] == 0
        assert hesiod["dfgen"] > 0


class TestAccessCacheEviction:
    def test_cache_bounded(self):
        cache = AccessCache(max_entries=8)
        for i in range(20):
            cache.store("user", "query", (str(i),), True)
        # the cache clears itself rather than growing without bound
        assert len(cache._cache) <= 8

    def test_generation_isolates_entries(self):
        cache = AccessCache()
        cache.store("u", "q", ("a",), True)
        assert cache.lookup("u", "q", ("a",)) is True
        cache.invalidate()
        assert cache.lookup("u", "q", ("a",)) is None


class TestSeedIdempotency:
    def test_seed_capacls_twice_is_safe(self, db):
        first = seed_capacls(db)
        count = len(db.table("capacls"))
        second = seed_capacls(db)
        assert first == second
        assert len(db.table("capacls")) == count


class TestConfigToggles:
    def test_journal_disabled(self):
        d = AthenaDeployment(DeploymentConfig(
            population=SMALL, journal_changes=False))
        assert d.journal is None
        d.direct_client().query("add_machine", "NJ.MIT.EDU", "VAX")
        # no journal anywhere, yet everything still works
        assert d.db.table("machine").select({"name": "NJ.MIT.EDU"})

    def test_access_cache_disabled_deployment(self):
        d = AthenaDeployment(DeploymentConfig(
            population=SMALL, access_cache=False))
        assert not d.server.access_cache.enabled

    def test_run_hours_returns_cron_firings(self):
        d = AthenaDeployment(DeploymentConfig(population=SMALL))
        fired = d.run_hours(1)
        assert fired == 4  # the 15-minute DCM cron


class TestDeploymentSurface:
    def test_client_for_reuses_principal(self):
        d = AthenaDeployment(DeploymentConfig(population=SMALL))
        login = d.handles.logins[0]
        c1 = d.client_for(login, "pw", "a")
        c2 = d.client_for(login, "pw", "b")  # same password works
        c1.close()
        c2.close()
        from repro.errors import MoiraError
        with pytest.raises(MoiraError):
            d.client_for(login, "wrong", "c")

    def test_pop_value1_matches_reality_at_build(self):
        d = AthenaDeployment(DeploymentConfig(population=SMALL))
        for row in d.db.table("serverhosts").select({"service": "POP"}):
            actual = d.db.table("users").count(
                {"pop_id": row["mach_id"], "potype": "POP"})
            assert row["value1"] == actual
