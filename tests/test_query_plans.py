"""Oracle and regression tests for the compiled query-plan layer:
composite indexes, the per-(table, WHERE-shape) plan cache, the pattern
LRU, and the covered ``count()`` fast path.

The oracle is a brute-force predicate scan over ``Table.rows`` (plus
the seed's per-call ``_iter_select_legacy`` path, kept verbatim) — the
fast path must agree with both on every shape, including randomised
ones, as a *multiset* of row objects."""

from __future__ import annotations

import random

import pytest

from repro.db.engine import (
    _PLAN_CACHE_LIMIT,
    Column,
    Table,
    WildcardPattern,
)
from repro.db.schema import build_database
from repro.errors import MoiraError

NAMES = ["Alpha", "alpha", "ALPHA-7", "beta", "Gamma", "delta*lit",
         "churn-a", "churn-b", "churn-c", "other"]
TAGS = ["", "x", "hot", "cold"]
KINDS = ["USER", "LIST", "STRING"]


def make_table() -> Table:
    return Table(
        "probe",
        [
            Column("id", int),
            Column("kind", str, max_len=8),
            Column("owner", int),
            Column("name", str, max_len=32, fold_case=True),
            Column("tag", str, max_len=16),
        ],
        indexes=["id", "kind", "name"],
        composite_indexes=[("kind", "owner"), ("id", "kind", "owner")],
    )


def fill(table: Table, rng: random.Random, n: int = 400) -> None:
    for _ in range(n):
        table.insert({
            "id": rng.randrange(40),
            "kind": rng.choice(KINDS),
            "owner": rng.randrange(25),
            "name": rng.choice(NAMES),
            "tag": rng.choice(TAGS),
        })


def brute_force(table: Table, where: dict) -> list:
    """Scan-only oracle: no indexes, no plans, fresh patterns."""
    out = []
    for row in table.rows:
        ok = True
        for name, value in where.items():
            column = table.columns[name]
            if column.kind is str and WildcardPattern.is_wild(str(value)):
                pattern = WildcardPattern(str(value), column.fold_case)
                if not pattern.matches(str(row[name])):
                    ok = False
                    break
            elif not column.equal(row[name], column.coerce(value)):
                ok = False
                break
        if ok:
            out.append(row)
    return out


def row_ids(rows) -> list[int]:
    """Order-insensitive multiset of row object identities."""
    return sorted(id(r) for r in rows)


def assert_oracle_agreement(table: Table, where: dict) -> None:
    expected = row_ids(brute_force(table, where))
    assert row_ids(table.select(where)) == expected
    assert row_ids(table._iter_select_legacy(dict(where))) == expected
    assert table.count(where) == len(expected)


SHAPES = [
    {},
    {"id": 7},
    {"id": "7"},                      # string-typed int argument
    {"kind": "USER"},
    {"kind": "USER", "owner": 3},     # covered by ("kind", "owner")
    {"id": 7, "kind": "LIST", "owner": 3},   # covered by the 3-column
    {"id": 7, "kind": "LIST", "owner": 3, "tag": "x"},  # residual filter
    {"name": "alpha"},                # fold_case exact
    {"name": "ALPHA"},
    {"name": "Alph*"},                # literal-prefix wildcard
    {"name": "*a*"},                  # scan wildcard
    {"name": "?lpha"},
    {"kind": "US*"},                  # wildcard on indexed column
    {"tag": "hot"},                   # unindexed exact
    {"tag": "h*", "kind": "USER"},    # mixed wildcard + covered-ish
    {"id": 999},                      # empty bucket
    {"kind": "USER", "owner": 9999},  # empty composite bucket
]


class TestPlanOracle:
    def test_fixed_shapes_match_scan_oracle(self):
        table = make_table()
        fill(table, random.Random(11))
        for where in SHAPES:
            assert_oracle_agreement(table, where)

    def test_randomised_shapes_match_scan_oracle(self):
        rng = random.Random(23)
        table = make_table()
        fill(table, rng)
        pools = {
            "id": lambda: rng.randrange(45),
            "kind": lambda: rng.choice(KINDS + ["US*", "*"]),
            "owner": lambda: rng.randrange(28),
            "name": lambda: rng.choice(NAMES + ["Al*", "*a*", "??ta",
                                                "zzz*"]),
            "tag": lambda: rng.choice(TAGS + ["h*"]),
        }
        for _ in range(300):
            cols = rng.sample(sorted(pools), rng.randrange(1, 5))
            where = {c: pools[c]() for c in cols}
            assert_oracle_agreement(table, where)

    def test_oracle_survives_update_delete_churn(self):
        rng = random.Random(37)
        table = make_table()
        fill(table, rng, n=200)
        for step in range(60):
            roll = rng.random()
            if roll < 0.4 or not table.rows:
                fill(table, rng, n=3)
            elif roll < 0.7:
                victim = rng.choice(table.rows)
                table.update_rows([victim],
                                  {"owner": rng.randrange(25),
                                   "kind": rng.choice(KINDS)})
            else:
                doomed = rng.sample(table.rows,
                                    min(3, len(table.rows)))
                table.delete_rows(doomed)
            for where in ({"kind": "USER", "owner": 3},
                          {"id": 7, "kind": "LIST", "owner": 3},
                          {"name": "Alph*"}):
                assert_oracle_agreement(table, where)

    def test_unknown_column_raises_both_paths(self):
        table = make_table()
        with pytest.raises(MoiraError):
            table.select({"nope": 1})
        table.set_fast_path(False)
        with pytest.raises(MoiraError):
            table.select({"nope": 1})


class TestPlanCache:
    def test_plan_reused_across_calls(self):
        table = make_table()
        fill(table, random.Random(5), n=50)
        table.select({"kind": "USER", "owner": 3})
        plan_before = dict(table._plans)
        table.select({"owner": 9, "kind": "LIST"})  # same shape, any order
        assert dict(table._plans) == plan_before
        assert len(plan_before) == 1

    def test_add_index_invalidates_plans(self):
        table = make_table()
        fill(table, random.Random(5), n=80)
        table.select({"tag": "hot"})
        shape = next(iter(table._plans))
        stale = table._plans[shape]
        assert stale.single == ()  # tag had no index
        table.add_index("tag")
        assert_oracle_agreement(table, {"tag": "hot"})
        fresh = table._plans[shape]
        assert fresh is not stale
        assert fresh.covered  # single indexed column, whole WHERE

    def test_add_composite_index_backfills_and_invalidates(self):
        table = make_table()
        fill(table, random.Random(5), n=80)
        table.select({"name": "alpha", "kind": "USER"})
        table.add_composite_index(("name", "kind"))
        assert_oracle_agreement(table, {"name": "ALPHA", "kind": "USER"})
        plan, exact, wild = table._bind_plan(
            {"name": "ALPHA", "kind": "USER"})
        assert plan.covered and plan.composite is not None
        assert plan.composite.names == ("name", "kind")

    def test_cache_stays_bounded(self):
        table = make_table()
        for i in range(_PLAN_CACHE_LIMIT * 3):
            # distinct shapes: vary the wildcard-ness and column mix
            table.select({"tag": f"t{i}*" if i % 2 else "t",
                          "owner" if i % 3 else "id": i})
        assert len(table._plans) <= _PLAN_CACHE_LIMIT

    def test_composite_needs_two_columns(self):
        table = make_table()
        with pytest.raises(ValueError):
            table.add_composite_index(("id",))


class TestCoveredCount:
    def test_covered_count_never_iterates(self, monkeypatch):
        table = make_table()
        fill(table, random.Random(5), n=120)
        expected_pair = len(brute_force(table,
                                        {"kind": "USER", "owner": 3}))
        expected_single = len(brute_force(table, {"id": 7}))

        def boom(*a, **k):  # pragma: no cover - guard
            raise AssertionError("covered count() must not iterate")

        monkeypatch.setattr(table, "iter_select", boom)
        assert table.count({"kind": "USER", "owner": 3}) == expected_pair
        assert table.count({"id": 7}) == expected_single
        assert table.count() == len(table.rows)

    def test_uncovered_count_still_right(self):
        table = make_table()
        fill(table, random.Random(5), n=120)
        where = {"name": "Alph*"}
        assert table.count(where) == len(brute_force(table, where))


class TestIndexGuards:
    def test_prefix_lookup_skips_int_keys(self):
        """Regression: a prefix probe against an int-column index used
        to crash on ``int.startswith``; now it just matches nothing."""
        table = make_table()
        fill(table, random.Random(5), n=30)
        assert table._indexes["id"].prefix_lookup("1") == []

    def test_prefix_lookup_folds_case(self):
        table = make_table()
        table.insert({"id": 1, "kind": "USER", "owner": 1,
                      "name": "MixedCase", "tag": ""})
        found = table._indexes["name"].prefix_lookup("mixed")
        assert [r["name"] for r in found] == ["MixedCase"]


class TestPatternLRU:
    def test_compiled_patterns_are_shared(self):
        a = WildcardPattern.compile("zz-shared-*")
        b = WildcardPattern.compile("zz-shared-*")
        assert a is b
        folded = WildcardPattern.compile("zz-shared-*", fold_case=True)
        assert folded is not a
        assert folded.matches("ZZ-SHARED-thing")
        assert not a.matches("ZZ-SHARED-thing")

    def test_lru_semantics_match_fresh_compile(self):
        for pattern in ("a*b?c", "*", "??", "lit[eral]*"):
            cached = WildcardPattern.compile(pattern)
            fresh = WildcardPattern(pattern)
            for probe in ("axbyc", "a*b?c", "lit[eral]x", "literal",
                          "", "zz"):
                assert cached.matches(probe) == fresh.matches(probe)


class TestSchemaComposites:
    def test_members_probe_is_covered(self):
        db = build_database()
        members = db.table("members")
        plan, _, _ = members._bind_plan(
            {"list_id": 1, "member_type": "USER", "member_id": 2})
        assert plan.covered
        assert plan.composite is not None
        assert set(plan.composite.names) == {"list_id", "member_type",
                                             "member_id"}
        plan2, _, _ = members._bind_plan(
            {"member_type": "USER", "member_id": 2})
        assert plan2.covered

    def test_ace_and_alias_probes_are_covered(self):
        db = build_database()
        for table, where in (
            ("list", {"acl_type": "LIST", "acl_id": 3}),
            ("servers", {"acl_type": "USER", "acl_id": 3}),
            ("hostaccess", {"acl_type": "LIST", "acl_id": 3}),
            ("alias", {"name": "x", "type": "TYPE"}),
            ("nfsquota", {"users_id": 1, "filsys_id": 2}),
            ("mcmap", {"mach_id": 1, "clu_id": 2}),
        ):
            plan, _, _ = db.table(table)._bind_plan(where)
            assert plan.covered, f"{table} probe not covered"

    def test_fast_path_toggle_is_database_wide(self):
        db = build_database()
        db.set_fast_path(False)
        assert not db.closure_enabled
        assert not db.table("members")._fast_path
        db.set_fast_path(True)
        assert db.closure_enabled
        assert db.table("members")._fast_path
