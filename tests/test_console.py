"""Tests for the unified administrative console."""

from __future__ import annotations

import pytest

from repro.apps.console import MoiraConsole
from repro.core import AthenaDeployment, DeploymentConfig
from repro.workload import PopulationSpec


@pytest.fixture(scope="module")
def console_world():
    d = AthenaDeployment(DeploymentConfig(population=PopulationSpec(
        users=30, unregistered_users=0, nfs_servers=2, maillists=5,
        clusters=2, machines_per_cluster=2, printers=3,
        network_services=5)))
    admin = d.handles.logins[0]
    d.make_admin(admin)
    client = d.client_for(admin, "pw", "console")
    return d, MoiraConsole(client)


class TestConsole:
    def test_menu_renders_all_sections(self, console_world):
        _, console = console_world
        text = console.build_menu().render()
        for section in ("User accounts", "Lists and groups",
                        "Machines and clusters",
                        "Filesystems and quotas", "Printers",
                        "DCM control"):
            assert section in text

    def test_user_lookup_via_menu(self, console_world):
        d, console = console_world
        target = d.handles.logins[1]
        session = console.run(["1", "1", target, "q", "q"])
        assert any(target in str(r) for r in session.results)

    def test_change_quota_via_menu(self, console_world):
        d, console = console_world
        target = d.handles.logins[2]
        session = console.run(["1", "5", target, "777", "q", "q"])
        assert 777 in session.results
        assert console.users.get_quota(target) == 777

    def test_add_machine_and_map(self, console_world):
        d, console = console_world
        session = console.run([
            "3", "2", "CONSOLE.MIT.EDU", "VAX",
            "1", "CONSOLE*", "q", "q",
        ])
        assert any("CONSOLE.MIT.EDU" in str(r)
                   for r in session.results if r)

    def test_dcm_force_update_via_menu(self, console_world):
        d, console = console_world
        runs = d.dcm.runs
        console.run(["6", "3", "HESIOD", d.handles.hesiod_machine,
                     "q", "q"])
        assert d.dcm.runs == runs + 1

    def test_raw_query_passthrough(self, console_world):
        _, console = console_world
        session = console.run(["7", "get_value", "dcm_enable", "q"])
        assert any("1 tuple(s); ok" in str(r) for r in session.results)

    def test_errors_surface_in_transcript(self, console_world):
        _, console = console_world
        session = console.run(["1", "1", "no-such-user", "q", "q"])
        assert any("error" in line for line in session.transcript)

    def test_printer_lifecycle_via_menu(self, console_world):
        d, console = console_world
        host = d.handles.hesiod_machine
        session = console.run([
            "5", "2", "console-lp", host,
            "1", "console-*",
            "3", "console-lp", "q", "q",
        ])
        shown = [r for r in session.results if isinstance(r, list)]
        assert any(p["printer"] == "console-lp"
                   for group in shown for p in group)
