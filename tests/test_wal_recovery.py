"""Crash-safe WAL tests: durability, torn tails, and the every-boundary
crash-recovery sweep (snapshot + replay == never-crashed oracle)."""

from __future__ import annotations

import json

import pytest

from repro.db.backup import mrbackup
from repro.db.journal import Journal, JournalEntry
from repro.db.recovery import checkpoint, read_watermark, recover
from repro.db.schema import build_database
from repro.errors import MoiraError
from repro.queries.base import QueryContext, execute_query
from repro.sim.clock import DEFAULT_EPOCH, Clock
from repro.sim.faults import FaultInjector, ServerCrash

BASE = DEFAULT_EPOCH + 1000


def mutations(n):
    """A deterministic mutation schedule: users and lists."""
    muts = []
    for i in range(n):
        if i % 3 == 2:
            muts.append(("add_list",
                         [f"list{i}", "1", "1", "0", "1", "0", str(900 + i),
                          "NONE", "NONE", f"list number {i}"]))
        else:
            muts.append(("add_user",
                         [f"user{i}", str(7000 + i), "/bin/csh",
                          f"Last{i}", "First", "", "1", f"mitid{i}",
                          "1990"]))
    return muts


def apply_one(db, journal, clock, when, name, args):
    clock.set(when)
    ctx = QueryContext(db=db, clock=clock, caller="root", client="test",
                      privileged=True, journal=journal)
    execute_query(ctx, name, args)


def dump(db, directory):
    mrbackup(db, directory)
    return {p.name: p.read_bytes() for p in directory.iterdir()}


class TestDurableJournal:
    def test_wal_roundtrip(self, tmp_path):
        wal = tmp_path / "wal"
        journal = Journal(path=wal)
        journal.record(BASE, "root", "add_user", ("a", "b"))
        journal.record(BASE + 5, "root", "add_list", ("c",))
        journal.close()
        loaded = Journal.load(wal)
        assert [e.query for e in loaded.entries] == ["add_user",
                                                     "add_list"]
        assert loaded.entries[0].seq == 1
        assert loaded.entries[1].seq == 2
        assert not loaded.torn_tail

    def test_torn_tail_is_dropped(self, tmp_path):
        wal = tmp_path / "wal"
        journal = Journal(path=wal)
        journal.record(BASE, "root", "add_user", ("a",))
        journal.close()
        with open(wal, "a", encoding="utf-8") as fh:
            fh.write('{"seq": 2, "when": 5679946')  # torn mid-record
        loaded = Journal.load(wal)
        assert len(loaded.entries) == 1
        assert loaded.torn_tail
        # strict mode refuses instead
        with pytest.raises(ValueError):
            Journal.load(wal, strict=True)

    def test_malformed_line_variants(self):
        for bad in ["", "{", "[1,2]", '{"when": 1}',
                    '{"when": 1, "who": "x", "query": "q", "args": "no"}',
                    "not json at all"]:
            with pytest.raises(ValueError):
                JournalEntry.from_line(bad)
        good = JournalEntry(when=1, who="x", query="q", args=("a",))
        assert JournalEntry.from_line(good.to_line()) == good

    def test_legacy_records_get_positional_seq(self, tmp_path):
        wal = tmp_path / "wal"
        with open(wal, "w", encoding="utf-8") as fh:
            for i in range(3):   # seed-era records had no seq field
                fh.write(json.dumps({"when": BASE + i, "who": "root",
                                     "query": "q", "args": []}) + "\n")
        loaded = Journal.load(wal)
        assert [e.seq for e in loaded.entries] == [1, 2, 3]
        entry = loaded.record(BASE + 9, "root", "q2", ())
        assert entry.seq == 4

    def test_since_bisects_and_matches_linear(self):
        journal = Journal()
        for i in range(50):
            journal.record(BASE + i * 7, "root", "q", (str(i),))
        for probe in (BASE - 1, BASE, BASE + 70, BASE + 71,
                      BASE + 49 * 7, BASE + 49 * 7 + 1):
            expect = [e for e in journal.entries if e.when >= probe]
            assert journal.since(probe) == expect

    def test_since_with_out_of_order_stamps(self):
        """Worker-pool timing can journal a smaller `when` after a
        larger one; since() must fall back to the exact linear scan."""
        journal = Journal()
        journal.record(BASE + 100, "root", "q", ())
        journal.record(BASE + 50, "root", "q", ())   # out of order
        journal.record(BASE + 200, "root", "q", ())
        got = journal.since(BASE + 60)
        assert [e.when for e in got] == [BASE + 100, BASE + 200]

    def test_after_seq(self):
        journal = Journal()
        for i in range(10):
            journal.record(BASE + i, "root", "q", ())
        assert [e.seq for e in journal.after_seq(7)] == [8, 9, 10]
        assert journal.after_seq(10) == []
        assert len(journal.after_seq(0)) == 10

    def test_truncate_rewrites_file(self, tmp_path):
        wal = tmp_path / "wal"
        journal = Journal(path=wal)
        for i in range(10):
            journal.record(BASE + i, "root", "q", (str(i),))
        dropped = journal.truncate(6)
        assert dropped == 6
        assert [e.seq for e in journal.entries] == [7, 8, 9, 10]
        loaded = Journal.load(wal)
        assert [e.seq for e in loaded.entries] == [7, 8, 9, 10]
        # appends after a truncate continue the sequence
        journal.record(BASE + 99, "root", "q", ())
        assert journal.last_seq() == 11


class TestCheckpointRecover:
    def test_checkpoint_then_recover(self, tmp_path):
        db = build_database()
        journal = Journal(path=tmp_path / "wal")
        clock = Clock()
        muts = mutations(12)
        for i, (name, args) in enumerate(muts[:8]):
            apply_one(db, journal, clock, BASE + i * 10, name, args)
        watermark = checkpoint(db, journal, tmp_path / "snap")
        assert watermark == 8
        assert read_watermark(tmp_path / "snap") == 8
        assert len(journal) == 0     # WAL truncated behind the snapshot
        for i, (name, args) in enumerate(muts[8:], start=8):
            apply_one(db, journal, clock, BASE + i * 10, name, args)
        journal.close()

        rec = recover(tmp_path / "snap", wal_path=tmp_path / "wal")
        assert rec.watermark == 8
        assert rec.replayed == 4
        assert rec.skipped_conflicts == 0
        assert dump(rec.db, tmp_path / "d1") == dump(db, tmp_path / "d2")

    def test_recover_tolerates_already_applied(self, tmp_path):
        """Crash between mrbackup and truncate: the snapshot already
        contains journaled entries; replay skips the conflicts."""
        db = build_database()
        journal = Journal(path=tmp_path / "wal")
        clock = Clock()
        for i, (name, args) in enumerate(mutations(6)):
            apply_one(db, journal, clock, BASE + i * 10, name, args)
        mrbackup(db, tmp_path / "snap")   # snapshot WITHOUT watermark
        journal.close()
        rec = recover(tmp_path / "snap", wal_path=tmp_path / "wal")
        assert rec.watermark == 0
        assert rec.skipped_conflicts == 6
        assert dump(rec.db, tmp_path / "d1") == dump(db, tmp_path / "d2")


CRASH_KINDS = ("record", "torn", "appended")


def arm(faults, kind, boundary):
    if kind == "record":
        faults.crash_server("journal.record", at_call=boundary)
    elif kind == "torn":
        faults.tear_write("journal.write", at_call=boundary)
    else:
        faults.crash_server("journal.appended", at_call=boundary)


def run_workload_with_crash(tmp_path, kind, boundary, muts):
    """Run the schedule, crash at the armed WAL boundary, recover from
    snapshot+WAL, resume the schedule; returns the final database."""
    wal_path = tmp_path / "wal"
    snap = tmp_path / "snap"
    faults = FaultInjector()
    arm(faults, kind, boundary)
    db = build_database()
    journal = Journal(path=wal_path, faults=faults)
    checkpoint(db, journal, snap)     # baseline snapshot, watermark 0
    clock = Clock()
    crashed_at = None
    for i, (name, args) in enumerate(muts):
        try:
            apply_one(db, journal, clock, BASE + i * 10, name, args)
        except ServerCrash:
            crashed_at = i
            break
    if crashed_at is None:
        journal.close()
        return db
    # --- the server process is dead; everything in memory is gone ---
    journal.close()
    rec = recover(snap, wal_path=wal_path)
    db = rec.db
    journal = Journal.load(wal_path)
    clock = Clock()
    # the client re-runs its failed mutation and the rest of the
    # schedule; a conflict means the WAL already made it durable
    for j in range(crashed_at, len(muts)):
        name, args = muts[j]
        try:
            apply_one(db, journal, clock, BASE + j * 10, name, args)
        except MoiraError:
            pass
    journal.close()
    return db


class TestEveryBoundarySweep:
    """Kill the server at every journal boundary of a mutation
    workload, in all three crash kinds; snapshot + WAL replay + client
    retry must land byte-identical to the never-crashed oracle."""

    N = 40

    @pytest.fixture(scope="class")
    def oracle_dump(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("oracle")
        db = build_database()
        journal = Journal(path=tmp / "wal")
        clock = Clock()
        for i, (name, args) in enumerate(mutations(self.N)):
            apply_one(db, journal, clock, BASE + i * 10, name, args)
        journal.close()
        return dump(db, tmp / "dump")

    @pytest.mark.parametrize("kind", CRASH_KINDS)
    def test_sweep(self, kind, oracle_dump, tmp_path):
        muts = mutations(self.N)
        for boundary in range(1, self.N + 1):
            workdir = tmp_path / f"{kind}-{boundary}"
            workdir.mkdir()
            db = run_workload_with_crash(workdir, kind, boundary, muts)
            got = dump(db, workdir / "dump")
            assert got == oracle_dump, (
                f"divergence after {kind} crash at boundary {boundary}")

    def test_torn_crash_leaves_torn_tail_on_disk(self, tmp_path):
        """Sanity: the torn-write kind really does leave a partial
        final record for load() to truncate."""
        faults = FaultInjector()
        faults.tear_write("journal.write", at_call=3)
        journal = Journal(path=tmp_path / "wal", faults=faults)
        db = build_database()
        clock = Clock()
        crashed = False
        for i, (name, args) in enumerate(mutations(5)):
            try:
                apply_one(db, journal, clock, BASE + i * 10, name, args)
            except ServerCrash:
                crashed = True
                break
        assert crashed
        journal.close()
        loaded = Journal.load(tmp_path / "wal")
        assert loaded.torn_tail
        assert len(loaded.entries) == 2
