"""Resilient propagation + graceful degradation tests.

Covers the :class:`PropagationGovernor` state machine (backoff,
circuit breaker, per-cycle retry budget), its integration into the DCM
cycle report and the ``_dcm_stats`` pseudo-query, and the server's
bounded-admission load shedding with client-side MR_BUSY retry.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.client.lib import MoiraClient
from repro.core import AthenaDeployment, DeploymentConfig
from repro.db.schema import build_database
from repro.dcm.retry import (
    BreakerState,
    PropagationGovernor,
    RetryPolicy,
)
from repro.errors import MR_BUSY
from repro.protocol.wire import (
    MajorRequest,
    decode_reply,
    encode_reply,
    encode_request,
)
from repro.server.moira_server import MoiraServer
from repro.sim import FaultInjector
from repro.sim.clock import Clock
from repro.workload import PopulationSpec


class TestRetryPolicy:
    def test_backoff_ladder(self):
        policy = RetryPolicy(jitter_frac=0.0)
        rng = random.Random(0)
        assert policy.backoff(0, rng) == 0.0
        assert policy.backoff(1, rng) == 60.0
        assert policy.backoff(2, rng) == 120.0
        assert policy.backoff(3, rng) == 240.0
        assert policy.backoff(10, rng) == 3600.0   # capped

    def test_jitter_bounds(self):
        policy = RetryPolicy(jitter_frac=0.25)
        rng = random.Random(42)
        for failures in (1, 2, 5):
            base = min(60.0 * 2.0 ** (failures - 1), 3600.0)
            for _ in range(50):
                got = policy.backoff(failures, rng)
                assert 0.75 * base <= got <= 1.25 * base


class TestGovernor:
    def gov(self, **kw):
        defaults = dict(jitter_frac=0.0, backoff_base=60.0,
                        breaker_threshold=3, breaker_cooldown=1800.0,
                        cycle_budget=64)
        defaults.update(kw)
        return PropagationGovernor(RetryPolicy(**defaults))

    def test_first_attempt_always_admitted(self):
        gov = self.gov()
        ok, reason = gov.admit("HESIOD", "ws1", now=0)
        assert ok and reason == "ok"

    def test_backoff_defers_then_readmits(self):
        gov = self.gov()
        gov.admit("HESIOD", "ws1", now=0)
        gov.record_soft("HESIOD", "ws1", now=0)   # next at 60
        assert gov.admit("HESIOD", "ws1", now=30) == (False, "backoff")
        assert gov.cycle_deferred == 1
        ok, reason = gov.admit("HESIOD", "ws1", now=61)
        assert ok and reason == "ok"

    def test_breaker_opens_after_threshold(self):
        gov = self.gov()
        now = 0
        for _ in range(3):
            gov.admit("HESIOD", "ws1", now=now)
            gov.record_soft("HESIOD", "ws1", now=now)
            now += 900
        health = gov.health("HESIOD", "ws1")
        assert health.breaker is BreakerState.OPEN
        assert health.breaker_opens == 1
        # within cooldown: skipped without an attempt
        assert gov.admit("HESIOD", "ws1", now=now) == \
            (False, "breaker_open")
        assert gov.cycle_breaker_skips == 1
        assert gov.open_hosts() == [("HESIOD", "WS1")]

    def test_half_open_probe_then_close(self):
        gov = self.gov()
        now = 0
        for _ in range(3):
            gov.admit("HESIOD", "ws1", now=now)
            gov.record_soft("HESIOD", "ws1", now=now)
            now += 900
        opened_at = gov.health("HESIOD", "ws1").opened_at
        probe_time = opened_at + 1801
        ok, reason = gov.admit("HESIOD", "ws1", now=probe_time)
        assert ok and reason == "probe"
        assert gov.cycle_probes == 1
        gov.record_success("HESIOD", "ws1")
        health = gov.health("HESIOD", "ws1")
        assert health.breaker is BreakerState.CLOSED
        assert health.consecutive_soft == 0

    def test_failed_probe_reopens(self):
        gov = self.gov()
        now = 0
        for _ in range(3):
            gov.admit("HESIOD", "ws1", now=now)
            gov.record_soft("HESIOD", "ws1", now=now)
            now += 900
        probe_time = gov.health("HESIOD", "ws1").opened_at + 1801
        ok, reason = gov.admit("HESIOD", "ws1", now=probe_time)
        assert ok and reason == "probe"
        gov.record_soft("HESIOD", "ws1", now=probe_time)
        assert gov.health("HESIOD", "ws1").breaker is BreakerState.OPEN

    def test_one_probe_per_cooldown_window(self):
        gov = self.gov()
        now = 0
        for _ in range(3):
            gov.admit("HESIOD", "ws1", now=now)
            gov.record_soft("HESIOD", "ws1", now=now)
            now += 900
        probe_time = gov.health("HESIOD", "ws1").opened_at + 1801
        assert gov.admit("HESIOD", "ws1", now=probe_time)[1] == "probe"
        # half-open, probe outstanding: the next cycles are skipped
        # until a full cooldown window has passed
        assert gov.admit("HESIOD", "ws1", now=probe_time + 900) == \
            (False, "breaker_open")
        assert gov.admit("HESIOD", "ws1",
                         now=probe_time + 1801)[1] == "probe"

    def test_budget_spares_first_attempts(self):
        gov = self.gov(cycle_budget=1)
        # two targets with a failure history, one fresh
        for machine in ("ws1", "ws2"):
            gov.admit("HESIOD", machine, now=0)
            gov.record_soft("HESIOD", machine, now=0)
        gov.begin_cycle()
        assert gov.admit("HESIOD", "ws1", now=100)[0]        # budget 1->0
        assert gov.admit("HESIOD", "ws2", now=100) == (False, "budget")
        assert gov.cycle_budget_deferred == 1
        # a first-attempt target is never charged against the budget
        assert gov.admit("HESIOD", "ws3", now=100) == (True, "ok")

    def test_hard_failure_resets_state(self):
        gov = self.gov()
        gov.admit("HESIOD", "ws1", now=0)
        gov.record_soft("HESIOD", "ws1", now=0)
        gov.record_hard("HESIOD", "ws1")
        health = gov.health("HESIOD", "ws1")
        assert health.breaker is BreakerState.CLOSED
        assert health.consecutive_soft == 0
        assert health.hard_failures == 1

    def test_stats_tuples_shape(self):
        gov = self.gov()
        gov.admit("HESIOD", "ws1", now=0)
        gov.record_soft("HESIOD", "ws1", now=0)
        rows = gov.stats_tuples()
        assert rows == [("HESIOD", "WS1", "closed", "1", "0", "1", "0",
                         "0", "1")]


def small_deployment(faults=None, **cfg):
    return AthenaDeployment(DeploymentConfig(
        population=PopulationSpec(
            users=15, unregistered_users=0, nfs_servers=2, maillists=2,
            clusters=1, machines_per_cluster=1, printers=1,
            network_services=3),
        faults=faults, **cfg))


class TestDCMResilience:
    def test_breaker_caps_attempts_to_dead_host(self):
        """A host dead for many cycles: the breaker limits attempts to
        the threshold plus one half-open probe per cooldown window,
        instead of one timeout-burning attempt every cycle."""
        faults = FaultInjector(seed=5)
        d = small_deployment(faults)
        hesiod = d.handles.hesiod_machine
        d.network.partition(hesiod)
        d.run_hours(7)   # generation due at 6h; pushes start failing
        d.run_hours(6)
        health = d.dcm.governor.health("HESIOD", hesiod)
        assert health.breaker is BreakerState.OPEN
        # ~7h of failures; retry-every-cycle would burn 4/h = 28+
        # timeouts.  The breaker concedes threshold (3) plus one probe
        # per 1800 s cooldown window (2/h), halving the attempt rate
        # and skipping the rest outright.
        assert 3 < health.attempts <= 3 + 2 * 7 + 1
        assert health.successes == 0
        # heal: the next probe closes the breaker and converges
        d.network.heal(hesiod)
        d.run_hours(2)
        row = d.db.table("serverhosts").select({"service": "HESIOD"})[0]
        assert row["success"] == 1
        assert d.dcm.governor.health(
            "HESIOD", hesiod).breaker is BreakerState.CLOSED

    def test_report_counters_surface_breaker_state(self):
        faults = FaultInjector(seed=5)
        d = small_deployment(faults)
        hesiod = d.handles.hesiod_machine
        d.network.partition(hesiod)
        d.run_hours(8)
        report = d.dcm.run_once()
        assert report.breaker_skips + report.breaker_probes >= 1
        assert ("HESIOD", hesiod) in report.breaker_open_hosts

    def test_legacy_pipeline_retries_every_cycle(self):
        """The seed-era pipeline keeps the paper's retry-every-cycle
        behaviour: no governor admission at all."""
        d = small_deployment(legacy_dcm=True)
        hesiod = d.handles.hesiod_machine
        d.network.set_loss_rate(hesiod, 1.0)
        d.run_hours(7)   # generation due at 6h; transfers start failing
        before = d.network.messages_lost
        d.run_hours(1)   # 4 more cycles -> 4 more full-cost attempts
        assert d.network.messages_lost - before >= 4
        # and the governor was never consulted
        assert d.dcm.governor.health("HESIOD", hesiod).attempts == 0

    def test_dcm_stats_pseudo_query(self):
        faults = FaultInjector(seed=5)
        d = small_deployment(faults)
        d.network.partition(d.handles.hesiod_machine)
        d.run_hours(7)
        client = MoiraClient(dispatcher=d.server).connect()
        rows = client.query("_dcm_stats")
        client.close()
        by_first = {r[0] for r in rows}
        assert "_server" in by_first
        assert "HESIOD" in by_first
        hesiod_row = [r for r in rows if r[0] == "HESIOD"][0]
        assert hesiod_row[1] == d.handles.hesiod_machine
        assert int(hesiod_row[5]) >= 1   # soft failures recorded


def query_frame(name, *args):
    """A QUERY request frame body, as submit_frame receives it."""
    return encode_request(MajorRequest.QUERY, [name, *args])[4:]


class Replies:
    def __init__(self):
        self.frames = []
        self.done = threading.Event()

    def on_reply(self, frame):
        self.frames.append(decode_reply(frame[4:]))
        return True

    def on_done(self):
        self.done.set()


class TestLoadShedding:
    def make_server(self, **kw):
        db = build_database()
        return MoiraServer(db, Clock(), workers=1, **kw)

    def test_admission_limit_sheds_with_busy(self):
        server = self.make_server(admission_limit=1)
        conn = server.open_connection("test")
        started = threading.Event()
        release = threading.Event()

        def blocker():
            started.set()
            release.wait(timeout=10)

        # occupy the single worker, then fill the one admission slot
        server._pool.submit("blocker", blocker)
        assert started.wait(timeout=10)
        queued = Replies()
        assert server.submit_frame(conn, query_frame("_list_users"),
                                   queued.on_reply, queued.on_done)
        shed = Replies()
        assert server.submit_frame(conn, query_frame("_list_users"),
                                   shed.on_reply, shed.on_done)
        assert shed.done.wait(timeout=10)   # answered immediately
        assert shed.frames[-1].code == MR_BUSY
        assert server.stats.requests_shed == 1
        release.set()
        assert queued.done.wait(timeout=10)
        assert queued.frames[-1].code == 0  # the accepted one completed
        server.shutdown()

    def test_deadline_expires_queued_request(self):
        server = self.make_server(request_deadline=0.0)
        conn = server.open_connection("test")
        r = Replies()
        assert server.submit_frame(conn, query_frame("_list_users"),
                                   r.on_reply, r.on_done)
        assert r.done.wait(timeout=10)
        assert r.frames[-1].code == MR_BUSY
        assert server.stats.deadlines_expired == 1
        server.shutdown()

    def test_no_limit_no_shedding(self):
        server = self.make_server()
        conn = server.open_connection("test")
        r = Replies()
        assert server.submit_frame(conn, query_frame("_list_users"),
                                   r.on_reply, r.on_done)
        assert r.done.wait(timeout=10)
        assert r.frames[-1].code == 0
        assert server.stats.requests_shed == 0
        server.shutdown()


class BusyDispatcher:
    """A stub server: answers MR_BUSY *busy* times, then succeeds."""

    def __init__(self, busy):
        self.busy_left = busy
        self.calls = 0

    def open_connection(self, peer):
        return 1

    def close_connection(self, conn_id):
        pass

    def handle_frame_stream(self, conn_id, frame):
        self.calls += 1
        if self.busy_left > 0:
            self.busy_left -= 1
            yield encode_reply(MR_BUSY, ("busy",))
            return
        yield encode_reply(0)


class TestClientBusyRetry:
    def test_idempotent_query_retries_until_success(self):
        stub = BusyDispatcher(busy=2)
        client = MoiraClient(dispatcher=stub, busy_backoff=0.0)
        client.connect()
        assert client.mr_query("get_user_by_login", ["x"]) == 0
        assert stub.calls == 3
        assert client.busy_retried == 2

    def test_retries_exhausted_reports_busy(self):
        stub = BusyDispatcher(busy=99)
        client = MoiraClient(dispatcher=stub, busy_retries=2,
                             busy_backoff=0.0)
        client.connect()
        assert client.mr_query("get_user_by_login", ["x"]) == MR_BUSY
        assert stub.calls == 3   # initial + 2 retries

    def test_mutation_is_never_retried(self):
        stub = BusyDispatcher(busy=99)
        client = MoiraClient(dispatcher=stub, busy_backoff=0.0)
        client.connect()
        assert client.mr_query("add_user", ["x"] * 9) == MR_BUSY
        assert stub.calls == 1   # MR_BUSY surfaced to the caller
        assert client.busy_retried == 0

    def test_pseudo_query_is_retryable(self):
        stub = BusyDispatcher(busy=1)
        client = MoiraClient(dispatcher=stub, busy_backoff=0.0)
        client.connect()
        assert client.mr_query("_dcm_stats", []) == 0
        assert stub.calls == 2
