"""Tests for the simulated Kerberos (KDC, tickets, crypt, CBC)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import (
    MoiraError,
    KRB_BAD_PASSWORD,
    KRB_NO_TICKET,
    KRB_PRINCIPAL_EXISTS,
    KRB_REPLAY,
    KRB_SKEW,
    KRB_TICKET_EXPIRED,
    KRB_UNKNOWN_PRINCIPAL,
    KRB_BAD_INTEGRITY,
)
from repro.kerberos.crypt import des_cbc_decrypt, des_cbc_encrypt, unix_crypt
from repro.kerberos.kdc import KDC
from repro.sim.clock import Clock


def expect_krb(code, fn, *args, **kwargs):
    with pytest.raises(MoiraError) as exc:
        fn(*args, **kwargs)
    assert exc.value.code == code, exc.value


@pytest.fixture
def world():
    clock = Clock()
    kdc = KDC(clock)
    kdc.add_principal("babette", "secret")
    kdc.add_service("moira")
    return clock, kdc


class TestKinit:
    def test_success(self, world):
        _, kdc = world
        cache = kdc.kinit("babette", "secret")
        assert cache.principal == "babette"

    def test_wrong_password(self, world):
        _, kdc = world
        expect_krb(KRB_BAD_PASSWORD, kdc.kinit, "babette", "wrong")

    def test_unknown_principal(self, world):
        _, kdc = world
        expect_krb(KRB_UNKNOWN_PRINCIPAL, kdc.kinit, "nobody", "x")

    def test_duplicate_principal(self, world):
        _, kdc = world
        expect_krb(KRB_PRINCIPAL_EXISTS, kdc.add_principal, "babette",
                   "again")


class TestTickets:
    def test_issue_and_verify(self, world):
        clock, kdc = world
        cache = kdc.kinit("babette", "secret")
        ticket = kdc.get_service_ticket(cache, "moira")
        auth = kdc.make_authenticator(ticket, clock.now())
        assert kdc.verify_authenticator(auth, "moira") == "babette"

    def test_ticket_expiry(self, world):
        clock, kdc = world
        cache = kdc.kinit("babette", "secret")
        ticket = kdc.get_service_ticket(cache, "moira", lifetime=3600)
        clock.advance(3601)
        auth = kdc.make_authenticator(ticket, clock.now())
        expect_krb(KRB_TICKET_EXPIRED, kdc.verify_authenticator, auth,
                   "moira")

    def test_replay_detected(self, world):
        """§4: safe from "replay of transactions"."""
        clock, kdc = world
        cache = kdc.kinit("babette", "secret")
        ticket = kdc.get_service_ticket(cache, "moira")
        auth = kdc.make_authenticator(ticket, clock.now())
        kdc.verify_authenticator(auth, "moira")
        expect_krb(KRB_REPLAY, kdc.verify_authenticator, auth, "moira")

    def test_clock_skew_rejected(self, world):
        clock, kdc = world
        cache = kdc.kinit("babette", "secret")
        ticket = kdc.get_service_ticket(cache, "moira")
        auth = kdc.make_authenticator(ticket, clock.now() - 3600)
        expect_krb(KRB_SKEW, kdc.verify_authenticator, auth, "moira")

    def test_forged_signature_rejected(self, world):
        clock, kdc = world
        cache = kdc.kinit("babette", "secret")
        ticket = kdc.get_service_ticket(cache, "moira")
        from dataclasses import replace
        forged = replace(ticket, client="root")
        auth = kdc.make_authenticator(forged, clock.now())
        expect_krb(KRB_BAD_INTEGRITY, kdc.verify_authenticator, auth,
                   "moira")

    def test_wrong_service_rejected(self, world):
        clock, kdc = world
        kdc.add_service("other")
        cache = kdc.kinit("babette", "secret")
        ticket = kdc.get_service_ticket(cache, "other")
        auth = kdc.make_authenticator(ticket, clock.now())
        expect_krb(KRB_BAD_INTEGRITY, kdc.verify_authenticator, auth,
                   "moira")

    def test_cache_miss(self, world):
        _, kdc = world
        cache = kdc.kinit("babette", "secret")
        expect_krb(KRB_NO_TICKET, cache.get, "moira")


class TestAdminInterface:
    def test_reserve_then_set_password(self, world):
        _, kdc = world
        kdc.reserve_principal("newkid")
        assert kdc.principal_exists("newkid")
        # reserved names cannot kinit yet
        expect_krb(KRB_UNKNOWN_PRINCIPAL, kdc.kinit, "newkid", "x")
        kdc.set_password("newkid", "firstpw")
        assert kdc.kinit("newkid", "firstpw").principal == "newkid"

    def test_reserve_taken_name(self, world):
        _, kdc = world
        expect_krb(KRB_PRINCIPAL_EXISTS, kdc.reserve_principal, "babette")

    def test_delete_principal(self, world):
        _, kdc = world
        kdc.delete_principal("babette")
        expect_krb(KRB_UNKNOWN_PRINCIPAL, kdc.kinit, "babette", "secret")


class TestCrypt:
    def test_deterministic(self):
        assert unix_crypt("1234567", "HF") == unix_crypt("1234567", "HF")

    def test_salt_prefix(self):
        assert unix_crypt("x", "AB").startswith("AB")
        assert len(unix_crypt("x", "AB")) == 13

    def test_salt_changes_hash(self):
        assert unix_crypt("same", "AA") != unix_crypt("same", "BB")

    def test_only_first_eight_chars_matter(self):
        assert unix_crypt("12345678ZZZ", "AB") == \
            unix_crypt("12345678YYY", "AB")

    def test_short_salt_padded(self):
        assert len(unix_crypt("x", "")) == 13


class TestCbc:
    def test_roundtrip(self):
        data = b"123456789|lfIenQqC/O/OE|newlogin"
        blob = des_cbc_encrypt("key", data)
        assert des_cbc_decrypt("key", blob) == data

    def test_wrong_key_fails(self):
        blob = des_cbc_encrypt("key", b"payload")
        with pytest.raises(ValueError):
            des_cbc_decrypt("other", blob)

    def test_error_propagation(self):
        """Damage anywhere garbles everything after it (EP-CBC)."""
        blob = bytearray(des_cbc_encrypt("key", b"A" * 64))
        blob[8] ^= 0x01
        with pytest.raises(ValueError):
            des_cbc_decrypt("key", bytes(blob))

    def test_unaligned_rejected(self):
        with pytest.raises(ValueError):
            des_cbc_decrypt("key", b"abc")

    @given(st.binary(max_size=200))
    def test_roundtrip_property(self, data):
        blob = des_cbc_encrypt(b"k", data)
        assert des_cbc_decrypt(b"k", blob) == data

    @given(st.binary(min_size=1, max_size=64))
    def test_ciphertext_differs_from_plaintext(self, data):
        assert des_cbc_encrypt(b"k", data) != data
