"""Tests for the managed services: Hesiod, NFS, mail hub, Zephyr (§5.8)."""

from __future__ import annotations

import pytest

from repro.hosts.host import SimulatedHost
from repro.servers.hesiod import HesiodError, HesiodServer
from repro.servers.mailhub import MailHub
from repro.servers.nfs import NFSServer
from repro.servers.zephyrd import ZephyrServer


@pytest.fixture
def hesiod():
    host = SimulatedHost("suomi.mit.edu")
    server = HesiodServer(host)
    host.fs.write("/etc/hesiod/passwd.db", "\n".join([
        'babette.passwd HS UNSPECA "babette:*:6530:101:Harmon C '
        'Fowler,,,,:/mit/babette:/bin/csh"',
        'abarba.passwd HS UNSPECA "abarba:*:6531:101:Angela '
        'Barba,,,,:/mit/abarba:/bin/csh"',
    ]).encode())
    host.fs.write("/etc/hesiod/uid.db", "\n".join([
        "6530.uid HS CNAME babette.passwd",
        "6531.uid HS CNAME abarba.passwd",
    ]).encode())
    host.fs.write("/etc/hesiod/pobox.db",
                  b'babette.pobox HS UNSPECA '
                  b'"POP ATHENA-PO-2.MIT.EDU babette"')
    host.fs.write("/etc/hesiod/filsys.db",
                  b'aab.filsys HS UNSPECA "NFS /mit/aab charon w '
                  b'/mit/aab"')
    host.fs.fsync()
    server.start()
    return host, server


class TestHesiod:
    def test_resolve(self, hesiod):
        _, server = hesiod
        records = server.resolve("babette", "passwd")
        assert records[0].startswith("babette:*:6530")

    def test_cname_following(self, hesiod):
        _, server = hesiod
        assert server.resolve("6530", "uid") == \
            server.resolve("babette", "passwd")

    def test_getpwnam(self, hesiod):
        _, server = hesiod
        pw = server.getpwnam("babette")
        assert pw["uid"] == 6530
        assert pw["home"] == "/mit/babette"
        assert pw["shell"] == "/bin/csh"

    def test_getpwuid(self, hesiod):
        _, server = hesiod
        assert server.getpwuid(6531)["login"] == "abarba"

    def test_get_pobox(self, hesiod):
        _, server = hesiod
        box = server.get_pobox("babette")
        assert box == {"type": "POP", "machine": "ATHENA-PO-2.MIT.EDU",
                       "box": "babette"}

    def test_get_filsys(self, hesiod):
        _, server = hesiod
        fs = server.get_filsys("aab")
        assert fs["fstype"] == "NFS"
        assert fs["server"] == "charon"
        assert fs["mount"] == "/mit/aab"

    def test_unknown_name(self, hesiod):
        _, server = hesiod
        with pytest.raises(HesiodError):
            server.resolve("ghost", "passwd")

    def test_lookup_case_insensitive(self, hesiod):
        _, server = hesiod
        assert server.resolve("BABETTE", "PASSWD")

    def test_restart_reloads_files(self, hesiod):
        host, server = hesiod
        host.fs.write("/etc/hesiod/passwd.db",
                      b'newguy.passwd HS UNSPECA "newguy:*:1:1:N:/m:/s"')
        host.fs.fsync()
        # old data still served until restart
        assert server.resolve("babette", "passwd")
        assert server.restart() == 0
        assert server.resolve("newguy", "passwd")
        with pytest.raises(HesiodError):
            server.resolve("babette", "passwd")

    def test_boot_hook_restarts_server(self, hesiod):
        host, server = hesiod
        host.crash()
        with pytest.raises(Exception):
            server.resolve("babette", "passwd")
        host.reboot()
        assert server.resolve("babette", "passwd")

    def test_cname_loop_detected(self):
        host = SimulatedHost("h")
        server = HesiodServer(host)
        host.fs.write("/etc/hesiod/loop.db", b"\n".join([
            b"a.x HS CNAME b.x",
            b"b.x HS CNAME a.x",
        ]))
        host.fs.fsync()
        server.start()
        with pytest.raises(HesiodError):
            server.resolve("a", "x")

    def test_malformed_file_raises(self):
        host = SimulatedHost("h")
        server = HesiodServer(host)
        host.fs.write("/etc/hesiod/bad.db", b"not a record")
        host.fs.fsync()
        with pytest.raises(HesiodError):
            server.start()

    def test_comments_ignored(self):
        host = SimulatedHost("h")
        server = HesiodServer(host)
        host.fs.write("/etc/hesiod/c.db",
                      b'; comment line\nx.y HS UNSPECA "data"\n')
        host.fs.fsync()
        server.start()
        assert server.resolve("x", "y") == ["data"]


@pytest.fixture
def nfs():
    host = SimulatedHost("locker-1.mit.edu")
    server = NFSServer(host, ["/u1"])
    host.fs.write("/etc/nfs/credentials",
                  b"mtalford:14956:5904:689\nmstai:9296:5899\n")
    host.fs.write("/etc/nfs/quotas", b"14956 300\n9296 500\n")
    host.fs.write("/etc/nfs/directories",
                  b"/u1/mtalford 14956 5904 HOMEDIR\n"
                  b"/u1/proj 9296 5899 PROJECT\n")
    host.fs.fsync()
    return host, server


class TestNFS:
    def test_apply_update(self, nfs):
        host, server = nfs
        assert server.apply_update() == 0
        assert server.access_allowed("mtalford")
        assert not server.access_allowed("stranger")
        assert server.quota_for(14956) == 300
        assert server.locker_exists("/u1/mtalford")
        assert server.locker_exists("/u1/proj")

    def test_homedir_gets_init_files(self, nfs):
        host, server = nfs
        server.apply_update()
        assert host.fs.exists("/u1/mtalford/.cshrc")
        # PROJECT lockers do not get init files
        assert not host.fs.exists("/u1/proj/.cshrc")

    def test_directory_ownership(self, nfs):
        host, server = nfs
        server.apply_update()
        meta = host.fs.dir_meta("/u1/mtalford")
        assert meta["uid"] == 14956
        assert meta["gid"] == 5904

    def test_idempotent(self, nfs):
        """"extra installations are not harmful" (§5.9)."""
        host, server = nfs
        assert server.apply_update() == 0
        created = list(server.lockers_created)
        assert server.apply_update() == 0
        assert server.lockers_created == created

    def test_credential_gid_list(self, nfs):
        _, server = nfs
        server.apply_update()
        assert server.credentials["mtalford"].gids == (5904, 689)


@pytest.fixture
def mailhub():
    host = SimulatedHost("athena.mit.edu")
    hub = MailHub(host)
    host.fs.write("/usr/lib/aliases", b"\n".join([
        b"# Video Users",
        b"owner-video-users: paul",
        b"video-users: smyser, paul, rubin@media-lab.mit.edu,",
        b"\tdanapple, agarvin",
        b"babette: babette@ATHENA-PO-2.LOCAL",
        b"paul: paul@ATHENA-PO-1.LOCAL",
        b"loop-a: loop-b",
        b"loop-b: loop-a",
    ]))
    host.fs.write("/etc/passwd",
                  b"babette:*:6530:101:Harmon C Fowler,,,:/mit/babette:"
                  b"/bin/csh\n")
    host.fs.fsync()
    hub.reload()
    return host, hub


class TestMailHub:
    def test_alias_expansion_with_continuation(self, mailhub):
        _, hub = mailhub
        resolved = hub.resolve("video-users")
        assert "rubin@media-lab.mit.edu" in resolved
        assert "danapple" not in hub.aliases  # continuation merged in
        assert "paul@athena-po-1.local" in resolved

    def test_pobox_alias(self, mailhub):
        _, hub = mailhub
        assert hub.resolve("babette") == ["babette@athena-po-2.local"]

    def test_external_address_passthrough(self, mailhub):
        _, hub = mailhub
        assert hub.resolve("x@y.edu") == ["x@y.edu"]

    def test_alias_loop_bounces(self, mailhub):
        _, hub = mailhub
        result = hub.deliver("loop-a")
        assert result.bounced

    def test_finger_knows_everybody(self, mailhub):
        _, hub = mailhub
        assert hub.finger("babette")["uid"] == 6530
        assert hub.finger("nobody") is None

    def test_spool_disabled_during_switchover(self, mailhub):
        host, hub = mailhub
        hub.spool_enabled = False
        with pytest.raises(RuntimeError):
            hub.resolve("babette")
        assert hub.install_aliases() == 0
        assert hub.spool_enabled
        assert hub.resolve("babette")


@pytest.fixture
def zephyr():
    host = SimulatedHost("zephyr-1.mit.edu")
    server = ZephyrServer(host)
    host.fs.write("/etc/zephyr/acl/MOIRA.xmt.acl", b"moira\noperator\n")
    host.fs.write("/etc/zephyr/acl/MOIRA.sub.acl", b"*.*@*\n")
    host.fs.write("/etc/zephyr/acl/secrets.xmt.acl", b"alice\n")
    host.fs.write("/etc/zephyr/acl/secrets.sub.acl", b"alice\nbob\n")
    host.fs.fsync()
    server.reload_acls()
    return host, server


class TestZephyr:
    def test_controlled_transmit(self, zephyr):
        _, server = zephyr
        assert server.authorized("moira", "MOIRA", "xmt")
        assert not server.authorized("randomuser", "MOIRA", "xmt")

    def test_wildcard_entry_allows_anyone(self, zephyr):
        _, server = zephyr
        assert server.authorized("anyone", "MOIRA", "sub")

    def test_uncontrolled_class_open(self, zephyr):
        _, server = zephyr
        assert server.authorized("anyone", "chatter", "xmt")

    def test_send_enforces_acl(self, zephyr):
        _, server = zephyr
        assert server.send("moira", "MOIRA", "DCM", "hesiod failed")
        assert not server.send("eve", "secrets", "i", "spam")
        notices = server.notices_for("MOIRA", "DCM")
        assert len(notices) == 1
        assert notices[0].message == "hesiod failed"

    def test_subscribe_enforces_acl(self, zephyr):
        _, server = zephyr
        assert server.subscribe("bob", "secrets")
        assert not server.subscribe("eve", "secrets")

    def test_reload_picks_up_new_acls(self, zephyr):
        host, server = zephyr
        host.fs.write("/etc/zephyr/acl/secrets.xmt.acl", b"alice\neve\n")
        host.fs.fsync()
        assert not server.authorized("eve", "secrets", "xmt")
        server.install_acls()
        assert server.authorized("eve", "secrets", "xmt")
