"""Tests for the wire protocol (§5.3) and transports."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import (
    MoiraError,
    MR_ABORTED,
    MR_MORE_DATA,
    MR_VERSION_MISMATCH,
)
from repro.kerberos.kdc import KDC
from repro.protocol.wire import (
    MajorRequest,
    decode_reply,
    decode_request,
    encode_reply,
    encode_request,
    pack_authenticator,
    unpack_authenticator,
)
from repro.sim.clock import Clock


class TestRequestEncoding:
    def test_roundtrip(self):
        frame = encode_request(MajorRequest.QUERY,
                               ["get_user_by_login", "babette"])
        request = decode_request(frame[4:])
        assert request.major is MajorRequest.QUERY
        assert request.str_args() == ["get_user_by_login", "babette"]

    def test_empty_args(self):
        frame = encode_request(MajorRequest.NOOP, [])
        request = decode_request(frame[4:])
        assert request.major is MajorRequest.NOOP
        assert request.args == ()

    def test_binary_arg_passthrough(self):
        blob = bytes(range(256))
        frame = encode_request(MajorRequest.AUTHENTICATE, ["prog", blob])
        request = decode_request(frame[4:])
        assert request.args[1] == blob

    def test_version_mismatch_detected(self):
        frame = bytearray(encode_request(MajorRequest.NOOP, []))
        frame[4:6] = (99).to_bytes(2, "big")  # clobber the version
        with pytest.raises(MoiraError) as exc:
            decode_request(bytes(frame[4:]))
        assert exc.value.code == MR_VERSION_MISMATCH

    def test_truncated_request_aborts(self):
        frame = encode_request(MajorRequest.QUERY, ["abc"])
        with pytest.raises(MoiraError) as exc:
            decode_request(frame[4:-1])
        assert exc.value.code == MR_ABORTED

    def test_trailing_garbage_aborts(self):
        frame = encode_request(MajorRequest.QUERY, ["abc"])
        with pytest.raises(MoiraError) as exc:
            decode_request(frame[4:] + b"x")
        assert exc.value.code == MR_ABORTED

    @given(st.integers(0, 4),
           st.lists(st.text(max_size=30), max_size=6))
    def test_roundtrip_property(self, major, args):
        frame = encode_request(MajorRequest(major), list(args))
        request = decode_request(frame[4:])
        assert request.str_args() == list(args)


class TestReplyEncoding:
    def test_roundtrip(self):
        frame = encode_reply(0, ("babette", 6530, "/bin/csh"))
        reply = decode_reply(frame[4:])
        assert reply.code == 0
        assert reply.str_fields() == ("babette", "6530", "/bin/csh")

    def test_negative_code(self):
        # codes are signed on the wire (errno convention allows any int)
        frame = encode_reply(-1, ())
        assert decode_reply(frame[4:]).code == -1

    def test_large_moira_code(self):
        from repro.errors import MR_PERM
        frame = encode_reply(MR_PERM, ())
        assert decode_reply(frame[4:]).code == MR_PERM

    @given(st.lists(st.text(max_size=50), max_size=10))
    def test_fields_roundtrip_property(self, fields):
        frame = encode_reply(MR_MORE_DATA, tuple(fields))
        reply = decode_reply(frame[4:])
        assert list(reply.str_fields()) == fields


class TestAuthenticatorPacking:
    def test_roundtrip(self):
        clock = Clock()
        kdc = KDC(clock)
        kdc.add_principal("user", "pw")
        kdc.add_service("moira")
        cache = kdc.kinit("user", "pw")
        ticket = kdc.get_service_ticket(cache, "moira")
        auth = kdc.make_authenticator(ticket, clock.now())
        blob = pack_authenticator(auth)
        restored = unpack_authenticator(blob)
        assert restored.ticket.client == "user"
        assert restored.ticket.session_key == ticket.session_key
        assert restored.mac == auth.mac
        # the restored authenticator still verifies
        assert kdc.verify_authenticator(restored, "moira") == "user"

    def test_damaged_blob_rejected(self):
        clock = Clock()
        kdc = KDC(clock)
        kdc.add_principal("user", "pw")
        kdc.add_service("moira")
        cache = kdc.kinit("user", "pw")
        ticket = kdc.get_service_ticket(cache, "moira")
        auth = kdc.make_authenticator(ticket, clock.now())
        blob = pack_authenticator(auth)
        with pytest.raises(MoiraError):
            unpack_authenticator(blob[:-3])


class TestTcpTransport:
    def test_many_clients_one_server_process(self, server, kdc, clock,
                                             run):
        """§5.4: one process, multiple simultaneous TCP connections."""
        from repro.client import MoiraClient
        from repro.protocol.transport import TcpServerTransport
        from tests.conftest import make_user

        make_user(run, "tcpuser")
        kdc.add_principal("tcpuser", "pw")
        run("add_machine", "M.MIT.EDU", "VAX")

        tcp = TcpServerTransport(server).start()
        try:
            host, port = tcp.address
            clients = []
            for i in range(5):
                creds = kdc.kinit("tcpuser", "pw")
                c = MoiraClient(tcp_address=(host, port), kdc=kdc,
                                credentials=creds, clock=clock)
                c.connect().auth(f"tcp{i}")
                clients.append(c)
            for c in clients:
                assert c.query("get_machine", "M*")[0][0] == "M.MIT.EDU"
            # all connections visible in _list_users
            users = clients[0].query("_list_users")
            assert len(users) == 5
            for c in clients:
                c.close()
        finally:
            tcp.stop()

    def test_connection_refused_surfaces_aborted(self, kdc, clock):
        from repro.client import MoiraClient

        client = MoiraClient(tcp_address=("127.0.0.1", 1),  # nothing there
                             kdc=kdc, clock=clock)
        assert client.mr_connect() == MR_ABORTED

    def test_large_result_streams(self, server, run):
        """SUN RPC was rejected because it couldn't return large values;
        the streaming protocol must handle hundreds of tuples."""
        from repro.client import MoiraClient
        from repro.protocol.transport import TcpServerTransport

        for i in range(300):
            run("add_machine", f"BULK-{i:04d}.MIT.EDU", "VAX")
        tcp = TcpServerTransport(server).start()
        try:
            host, port = tcp.address
            c = MoiraClient(tcp_address=(host, port))
            c.connect()
            rows = c.query("get_machine", "BULK-*")
            assert len(rows) == 300
            c.close()
        finally:
            tcp.stop()
