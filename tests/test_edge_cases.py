"""Remaining edge cases: journal files, frame limits, rotation knobs,
index selection, and miscellaneous boundary behaviour."""

from __future__ import annotations

import pytest

from repro.db.backup import rotate
from repro.db.engine import Column, Table
from repro.db.journal import Journal, JournalEntry
from repro.errors import MoiraError, MR_ABORTED
from repro.protocol.wire import MAX_ARG, encode_request, read_frame
from repro.protocol.wire import MajorRequest


class TestJournalFile:
    def test_persists_and_reloads(self, tmp_path):
        path = tmp_path / "journal"
        journal = Journal(path=path)
        journal.record(100, "root", "add_machine", ("A.MIT.EDU", "VAX"))
        journal.record(200, "admin", "add_user", ("x",))
        reloaded = Journal.load(path)
        assert len(reloaded) == 2
        assert reloaded.entries[0].query == "add_machine"
        assert reloaded.entries[1].when == 200

    def test_load_missing_file_is_empty(self, tmp_path):
        journal = Journal.load(tmp_path / "nothing")
        assert len(journal) == 0

    def test_since_filters(self):
        journal = Journal()
        journal.record(100, "a", "q1", ())
        journal.record(200, "a", "q2", ())
        journal.record(300, "a", "q3", ())
        assert [e.query for e in journal.since(200)] == ["q2", "q3"]

    def test_entry_roundtrip_with_odd_characters(self):
        entry = JournalEntry(when=1, who="x", query="q",
                             args=("colon:here", 'quote"there', "new\nline"))
        assert JournalEntry.from_line(entry.to_line()) == entry

    def test_args_stringified(self):
        journal = Journal()
        entry = journal.record(1, "a", "q", (1, 2))
        assert entry.args == ("1", "2")


class TestFrameLimits:
    def test_oversized_counted_string_rejected(self):
        frame = bytearray(encode_request(MajorRequest.QUERY, ["abc"]))
        # clobber the counted-string length to something absurd
        frame[9:13] = (MAX_ARG + 1).to_bytes(4, "big")
        from repro.protocol.wire import decode_request
        with pytest.raises(MoiraError) as exc:
            decode_request(bytes(frame[4:]))
        assert exc.value.code == MR_ABORTED

    def test_read_frame_clean_eof(self):
        chunks = [b""]

        def recv(n):
            return chunks.pop(0) if chunks else b""

        assert read_frame(recv) == b""

    def test_read_frame_mid_frame_eof(self):
        payload = encode_request(MajorRequest.NOOP, [])
        stream = payload[:-1]  # truncated
        pos = [0]

        def recv(n):
            if pos[0] >= len(stream):
                return b""
            chunk = stream[pos[0]:pos[0] + n]
            pos[0] += len(chunk)
            return chunk

        with pytest.raises(MoiraError) as exc:
            read_frame(recv)
        assert exc.value.code == MR_ABORTED

    def test_read_frame_reassembles_fragments(self):
        payload = encode_request(MajorRequest.QUERY, ["q", "arg"])
        pos = [0]

        def recv(n):
            take = min(n, 3)  # dribble three bytes at a time
            chunk = payload[pos[0]:pos[0] + take]
            pos[0] += len(chunk)
            return chunk

        frame = read_frame(recv)
        assert frame == payload[4:]

    def test_zero_length_frame_rejected(self):
        def recv(n, chunks=[b"\x00\x00\x00\x00"]):
            return chunks.pop(0) if chunks else b""

        with pytest.raises(MoiraError):
            read_frame(recv)


class TestRotationKnobs:
    def test_keep_two(self, tmp_path):
        for i in range(4):
            target = rotate(tmp_path, keep=2)
            (target / "stamp").write_text(str(i))
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == ["backup_1", "backup_2"]
        assert (tmp_path / "backup_1" / "stamp").read_text() == "3"


class TestIndexSelection:
    def test_most_selective_index_used(self):
        """With two indexed columns, the smaller bucket drives the scan
        (observable through correctness under skew)."""
        t = Table("t", [Column("a", int), Column("b", int)],
                  indexes=["a", "b"])
        for i in range(100):
            t.insert({"a": i % 2, "b": i})  # a: huge buckets, b: unique
        rows = t.select({"a": 1, "b": 51})
        assert len(rows) == 1
        assert rows[0]["b"] == 51

    def test_index_with_case_folded_column(self):
        t = Table("t", [Column("name", fold_case=True)],
                  indexes=["name"], unique=[("name",)])
        t.insert({"name": "MixedCase"})
        assert t.select({"name": "mixedcase"})
        assert t.select({"name": "MIXEDCASE"})
        with pytest.raises(MoiraError):
            t.insert({"name": "mixedCASE"})


class TestMenuEdge:
    def test_nested_quit_returns_to_parent(self):
        from repro.client.menu import Menu, MenuSession

        hits = []
        root = Menu("Root")
        sub = Menu("Sub")
        sub.add_action("1", "inner", lambda: hits.append("inner"))
        root.add_submenu("s", "enter sub", sub)
        root.add_action("r", "outer", lambda: hits.append("outer"))
        session = MenuSession(root,
                              inputs=["s", "1", "q", "r", "q"])
        session.run()
        assert hits == ["inner", "outer"]
