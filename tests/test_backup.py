"""Tests for mrbackup/mrrestore (paper §5.2.2)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.db.backup import (
    escape_field,
    mrbackup,
    mrrestore,
    rotate,
    unescape_field,
)
from repro.db.schema import build_database


class TestEscaping:
    def test_colon(self):
        assert escape_field("a:b") == "a\\:b"

    def test_backslash(self):
        assert escape_field("a\\b") == "a\\\\b"

    def test_newline_is_octal(self):
        assert escape_field("a\nb") == "a\\012b"

    def test_control_char_octal(self):
        assert escape_field("\x07") == "\\007"

    def test_roundtrip_specials(self):
        for text in ["plain", "a:b:c", "tr\\ick", "line\nbreak",
                     "tab\there", "", ":" * 5, "\\" * 3]:
            assert unescape_field(escape_field(text)) == text

    @given(st.text(max_size=64))
    def test_roundtrip_property(self, text):
        assert unescape_field(escape_field(text)) == text

    @given(st.lists(st.text(max_size=16), min_size=1, max_size=6))
    def test_no_raw_separators_in_escaped_output(self, fields):
        line = ":".join(escape_field(f) for f in fields)
        # splitting on unescaped colons must recover the field count
        from repro.db.backup import _split_escaped
        assert [unescape_field(p) for p in _split_escaped(line)] == fields


def populate(db, n_users=5):
    users = db.table("users")
    for i in range(n_users):
        users.insert({
            "login": f"user{i}", "users_id": i + 1, "uid": 6500 + i,
            "shell": "/bin/csh", "last": f"Last:{i}", "first": "First",
            "status": 1, "fullname": "has\nnewline" if i == 0 else "x",
        })
    db.table("machine").insert(
        {"name": "SUOMI.MIT.EDU", "mach_id": 1, "type": "VAX"})


class TestBackupRestore:
    def test_roundtrip_preserves_every_row(self, tmp_path):
        db = build_database()
        populate(db)
        sizes = mrbackup(db, tmp_path / "backup_1")

        restored = build_database()
        counts = mrrestore(restored, tmp_path / "backup_1")
        assert counts["users"] == 5
        assert counts["machine"] == 1
        for name, table in db.tables.items():
            rtable = restored.tables[name]
            assert len(rtable) == len(table), name
            assert rtable.rows == table.rows, name
        assert sizes["users"] > 0

    def test_backup_writes_one_file_per_relation(self, tmp_path):
        db = build_database()
        mrbackup(db, tmp_path / "b")
        files = {p.name for p in (tmp_path / "b").iterdir()}
        assert files == set(db.tables)

    def test_restore_wipes_existing_contents(self, tmp_path):
        db = build_database()
        populate(db)
        mrbackup(db, tmp_path / "b")
        target = build_database()
        target.table("users").insert({"login": "stale", "users_id": 999})
        mrrestore(target, tmp_path / "b")
        assert not target.table("users").select({"login": "stale"})
        assert len(target.table("users")) == 5

    def test_colon_field_roundtrip_through_files(self, tmp_path):
        db = build_database()
        db.table("users").insert(
            {"login": "tricky", "users_id": 1,
             "fullname": "a:b\\c\nd"})
        mrbackup(db, tmp_path / "b")
        restored = build_database()
        mrrestore(restored, tmp_path / "b")
        assert restored.table("users").select(
            {"login": "tricky"})[0]["fullname"] == "a:b\\c\nd"

    def test_restore_does_not_inflate_stats(self, tmp_path):
        db = build_database()
        populate(db)
        mrbackup(db, tmp_path / "b")
        restored = build_database()
        mrrestore(restored, tmp_path / "b")
        assert restored.table("users").stats.appends == 0

    def test_malformed_line_rejected(self, tmp_path):
        db = build_database()
        mrbackup(db, tmp_path / "b")
        (tmp_path / "b" / "machine").write_text("only:two\n")
        with pytest.raises(ValueError):
            mrrestore(build_database(), tmp_path / "b")


class TestRotation:
    def test_rotate_keeps_last_three(self, tmp_path):
        base = tmp_path / "backups"
        seen = []
        for i in range(5):
            newest = rotate(base)
            (newest / "stamp").write_text(str(i))
            seen.append(newest)
        dirs = sorted(p.name for p in base.iterdir())
        assert dirs == ["backup_1", "backup_2", "backup_3"]
        # newest has the last stamp, oldest is two generations back
        assert (base / "backup_1" / "stamp").read_text() == "4"
        assert (base / "backup_3" / "stamp").read_text() == "2"

    def test_nightly_flow(self, tmp_path):
        """The nightly.sh flow: rotate, then dump into backup_1."""
        db = build_database()
        populate(db)
        target = rotate(tmp_path)
        mrbackup(db, target)
        restored = build_database()
        mrrestore(restored, tmp_path / "backup_1")
        assert len(restored.table("users")) == 5
