"""Concurrency tests: simultaneous clients, competing DCMs, threaded
TCP traffic against the single-process server, the reader–writer
database lock, the worker pool, and the thread-safe access cache."""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro.client import MoiraClient
from repro.core import AthenaDeployment, DeploymentConfig
from repro.db.locks import LockManager, LockMode
from repro.db.rwlock import RWLock
from repro.dcm.dcm import DCM
from repro.protocol.transport import TcpServerTransport
from repro.server import AccessCache, WorkerPool
from repro.workload import PopulationSpec


@pytest.fixture
def deployment():
    return AthenaDeployment(DeploymentConfig(population=PopulationSpec(
        users=50, unregistered_users=0, nfs_servers=2, maillists=5,
        clusters=1, machines_per_cluster=2, printers=2,
        network_services=5)))


class TestConcurrentClients:
    def test_threaded_tcp_clients(self, deployment):
        """Many threads hammer the server over real sockets; every
        query gets a correct, uncorrupted answer."""
        d = deployment
        tcp = TcpServerTransport(d.server).start()
        errors: list[Exception] = []

        def worker(index: int):
            try:
                host, port = tcp.address
                client = MoiraClient(tcp_address=(host, port))
                client.connect()
                for i in range(20):
                    login = d.handles.logins[
                        (index * 7 + i) % len(d.handles.logins)]
                    rows = client.query("get_filesys_by_label", login)
                    assert rows[0][0] == login
                client.close()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(8)]
        try:
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
        finally:
            tcp.stop()
        assert not errors

    def test_interleaved_mutations_stay_consistent(self, deployment):
        """Concurrent writers through the server never corrupt the
        database (the engine serialises on its lock)."""
        from repro.apps import MrCheck

        d = deployment
        errors: list[Exception] = []

        def writer(index: int):
            try:
                client = MoiraClient(dispatcher=d.server)
                client.connect()
                # use the privileged direct path for the ACL-free writes
                direct = d.direct_client()
                for i in range(15):
                    direct.query("add_machine",
                                 f"T{index}-{i}.MIT.EDU", "VAX")
                client.close()
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(i,))
                   for i in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors
        assert len(d.db.table("machine").select({"name": "T*"})) == 90
        assert MrCheck(d.db).run() == []


class TestCompetingDCMs:
    def test_two_dcms_share_locks(self, deployment):
        """Two DCM processes with a shared lock manager never update the
        same service concurrently; one skips what the other holds."""
        d = deployment
        shared_locks = LockManager()
        dcm_a = DCM(d.db, d.clock, network=d.network,
                    lock_manager=shared_locks)
        dcm_b = DCM(d.db, d.clock, network=d.network,
                    lock_manager=shared_locks)
        for (svc, machine), binding in d.dcm._bindings.items():
            dcm_a.bind_host(svc, machine, binding)
            dcm_b.bind_host(svc, machine, binding)

        d.clock.advance(7 * 3600)
        # b grabs the hesiod lock as if mid-update
        token = shared_locks.acquire("service:HESIOD",
                                     LockMode.EXCLUSIVE)
        report_a = dcm_a.run_once()
        assert report_a.skipped_locked >= 1
        hesiod = d.db.table("servers").select({"name": "HESIOD"})[0]
        assert hesiod["dfgen"] == 0  # a did not generate
        shared_locks.release("service:HESIOD", token)
        report_a2 = dcm_a.run_once()
        assert d.db.table("servers").select(
            {"name": "HESIOD"})[0]["dfgen"] > 0

    def test_shared_lock_allows_parallel_host_scans(self, deployment):
        """A UNIQUE service takes a shared lock for its host scan, so a
        second DCM can scan concurrently; EXCLUSIVE (replicated) cannot."""
        locks = LockManager()
        t1 = locks.try_acquire("service:NFS", LockMode.SHARED)
        t2 = locks.try_acquire("service:NFS", LockMode.SHARED)
        assert t1 and t2
        assert locks.try_acquire("service:ZEPHYR",
                                 LockMode.EXCLUSIVE)
        assert locks.try_acquire("service:ZEPHYR",
                                 LockMode.EXCLUSIVE) is None

    def test_inprogress_flag_is_advisory_not_locking(self, deployment):
        """§5.7.1: InProgress "is NOT relied upon for locking" — a
        stale flag (crashed DCM) does not wedge future updates."""
        d = deployment
        client = d.direct_client()
        client.query("set_server_internal_flags", "HESIOD", 0, 0, 1, 0,
                     "")  # stale inprogress, as after a DCM crash
        d.run_hours(7)
        row = d.db.table("servers").select({"name": "HESIOD"})[0]
        assert row["dfgen"] > 0  # updated anyway
        assert row["inprogress"] == 0


class TestRWLock:
    def test_readers_share(self):
        lock = RWLock()
        inside = threading.Barrier(2, timeout=5)

        def reader():
            with lock.shared():
                inside.wait()  # both threads inside simultaneously

        threads = [threading.Thread(target=reader) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5)
        assert lock.readers == 0

    def test_writer_excludes_readers(self):
        lock = RWLock()
        observed = []
        lock.acquire_exclusive()
        done = threading.Event()

        def reader():
            with lock.shared():
                observed.append(lock.write_locked)
            done.set()

        t = threading.Thread(target=reader)
        t.start()
        time.sleep(0.05)
        assert not done.is_set()  # reader parked behind the writer
        lock.release_exclusive()
        assert done.wait(timeout=5)
        t.join(timeout=5)
        assert observed == [False]

    def test_waiting_writer_blocks_new_readers(self):
        """Writer preference: once a writer queues, fresh readers wait
        behind it instead of starving it."""
        lock = RWLock()
        lock.acquire_shared()
        writer_got_it = threading.Event()
        reader_got_it = threading.Event()

        def writer():
            with lock.exclusive():
                writer_got_it.set()

        def late_reader():
            with lock.shared():
                reader_got_it.set()

        wt = threading.Thread(target=writer)
        wt.start()
        time.sleep(0.05)  # writer is now waiting on the held shared lock
        rt = threading.Thread(target=late_reader)
        rt.start()
        time.sleep(0.05)
        assert not reader_got_it.is_set()  # queued behind the writer
        assert not writer_got_it.is_set()
        lock.release_shared()
        assert writer_got_it.wait(timeout=5)
        assert reader_got_it.wait(timeout=5)
        wt.join(timeout=5)
        rt.join(timeout=5)

    def test_exclusive_is_reentrant(self):
        lock = RWLock()
        with lock.exclusive():
            with lock.exclusive():  # Database.next_id under a mutation
                assert lock.write_locked
            assert lock.write_locked
        assert not lock.write_locked

    def test_shared_reentry_and_shared_under_exclusive(self):
        lock = RWLock()
        with lock.shared():
            with lock.shared():
                assert lock.readers == 1
        with lock.exclusive():
            with lock.shared():  # read helper inside a mutation: no-op
                assert lock.write_locked
        assert lock.readers == 0

    def test_upgrade_raises(self):
        lock = RWLock()
        with lock.shared():
            with pytest.raises(RuntimeError):
                lock.acquire_exclusive()

    def test_plain_with_is_exclusive(self):
        """``with lock:`` keeps the old coarse-mutex contract."""
        lock = RWLock()
        with lock:
            assert lock.write_locked


class TestWorkerPool:
    def test_fifo_per_key(self):
        pool = WorkerPool(4)
        order: list[int] = []
        done = threading.Event()

        def job(i):
            order.append(i)
            if i == 49:
                done.set()

        for i in range(50):
            pool.submit("conn-1", lambda i=i: job(i))
        assert done.wait(timeout=10)
        pool.shutdown()
        assert order == list(range(50))

    def test_different_keys_run_in_parallel(self):
        pool = WorkerPool(2)
        both_running = threading.Barrier(2, timeout=5)
        ok: list[bool] = []

        def job():
            both_running.wait()  # only passes if both keys run at once
            ok.append(True)

        pool.submit("a", job)
        pool.submit("b", job)
        deadline = time.monotonic() + 5
        while len(ok) < 2 and time.monotonic() < deadline:
            time.sleep(0.01)
        pool.shutdown()
        assert ok == [True, True]

    def test_shutdown_drains_queued_jobs(self):
        pool = WorkerPool(1)
        ran: list[int] = []
        for i in range(10):
            pool.submit("k", lambda i=i: ran.append(i))
        pool.shutdown(wait=True)
        assert ran == list(range(10))
        with pytest.raises(RuntimeError):
            pool.submit("k", lambda: None)


class TestAccessCacheEviction:
    def test_fifo_eviction_keeps_newest(self):
        cache = AccessCache(max_entries=4)
        for i in range(4):
            cache.store("p", f"q{i}", (), True)
        cache.store("p", "q4", (), True)  # evicts q0 only, not the lot
        assert len(cache._cache) == 4
        assert cache.lookup("p", "q0", ()) is None
        for i in range(1, 5):
            assert cache.lookup("p", f"q{i}", ()) is True

    def test_store_never_exceeds_max(self):
        cache = AccessCache(max_entries=8)
        for i in range(50):
            cache.store("p", f"q{i}", (), bool(i % 2))
        assert len(cache._cache) <= 8

    def test_scoped_invalidation(self):
        cache = AccessCache()
        cache.store("p", "q", (), True)
        gen = cache.generation
        # a mutation that touched no ACL-relevant relation: cache survives
        assert cache.invalidate({"cluster", "numvalues"}) is False
        assert cache.generation == gen
        assert cache.lookup("p", "q", ()) is True
        # membership moved: everything goes
        assert cache.invalidate({"members"}) is True
        assert cache.generation == gen + 1
        assert cache.lookup("p", "q", ()) is None

    def test_unscoped_invalidation_still_clears(self):
        cache = AccessCache()
        cache.store("p", "q", (), True)
        assert cache.invalidate() is True
        assert cache.lookup("p", "q", ()) is None

    def test_server_skips_invalidation_for_non_acl_mutations(
            self, deployment):
        """End to end: a cluster add (no ACL-relevant table touched)
        keeps the access cache; a machine add clears it."""
        d = deployment
        client = MoiraClient(dispatcher=d.server)
        client.connect()
        client.query("get_machine", "*")  # warm a cache entry
        login = d.handles.logins[0]
        d.make_admin(login)
        ac = d.client_for(login, "pw")
        gen = d.server.access_cache.generation
        ac.query("add_cluster", "cache-test", "d", "l")
        assert d.server.access_cache.generation == gen
        ac.query("add_machine", "CACHETEST.MIT.EDU", "VAX")
        assert d.server.access_cache.generation > gen
        ac.close()
        client.close()


class TestAccessCacheTOCTOU:
    def test_store_with_stale_generation_is_discarded(self):
        """An invalidation landing between check and store must not let
        the pre-mutation decision into the new generation."""
        cache = AccessCache()
        gen = cache.generation_now()
        assert cache.invalidate({"members"}) is True  # mid-check bump
        cache.store("p", "q", (), True, generation=gen)
        assert cache.lookup("p", "q", ()) is None  # discarded

    def test_store_with_current_generation_lands(self):
        cache = AccessCache()
        cache.store("p", "q", (), True, generation=cache.generation_now())
        assert cache.lookup("p", "q", ()) is True


class TestJournalOrdering:
    def test_server_journals_inside_exclusive_lock(self, deployment):
        """Journal.record must run while the writer still holds the
        exclusive lock, so journal order always matches mutation order
        (replay after a restore converges)."""
        d = deployment
        login = d.handles.logins[0]
        d.make_admin(login)
        client = d.client_for(login, "pw")
        seen: list[bool] = []
        original = d.server.journal.record

        def spying_record(when, who, query, args, **kw):
            seen.append(d.db.lock.write_locked)
            return original(when, who, query, args, **kw)

        d.server.journal.record = spying_record
        try:
            client.query("add_machine", "JORDER.MIT.EDU", "VAX")
        finally:
            d.server.journal.record = original
            client.close()
        assert seen == [True]

    def test_direct_library_journals_inside_exclusive_lock(
            self, deployment):
        """Same invariant on the execute_query (glue library) path."""
        d = deployment
        direct = d.direct_client()
        seen: list[bool] = []
        original = d.server.journal.record

        def spying_record(when, who, query, args, **kw):
            seen.append(d.db.lock.write_locked)
            return original(when, who, query, args, **kw)

        d.server.journal.record = spying_record
        try:
            direct.query("add_machine", "JDIRECT.MIT.EDU", "VAX")
        finally:
            d.server.journal.record = original
        assert seen == [True]


class TestBackpressureStall:
    """A connected-but-stalled client must not hold workers (and any
    shared DB lock they carry) hostage: past stall_timeout without
    drain progress the backpressure wait gives up and the connection
    is handed to the selector for dropping."""

    def _transport_and_state(self, deployment, **kwargs):
        tcp = TcpServerTransport(deployment.server, **kwargs)
        from repro.protocol.transport import _ConnState
        a, b = socket.socketpair()
        state = _ConnState(deployment.server.open_connection("stall"))
        tcp._conn_state[a] = state
        return tcp, a, b, state

    def test_stalled_connection_is_dropped(self, deployment):
        tcp, a, b, state = self._transport_and_state(
            deployment, high_water=64, low_water=32, stall_timeout=0.2)
        try:
            on_reply, on_done = tcp._reply_sinks(a, state)
            with state.cv:
                state.buffered = tcp.high_water  # nothing ever drains
            start = time.monotonic()
            assert on_reply(b"x" * 16) is False
            assert time.monotonic() - start >= 0.2
            with tcp._flush_lock:
                assert a in tcp._kill_set  # queued for selector drop
            assert state.open is False
            on_done()
        finally:
            b.close()
            tcp.stop()  # never started: just drops conns, closes fds

    def test_draining_connection_survives_past_timeout(self, deployment):
        """Progress resets the stall clock: a slow-but-draining client
        waits through several timeout windows without being dropped."""
        tcp, a, b, state = self._transport_and_state(
            deployment, high_water=64, low_water=32, stall_timeout=0.3)
        try:
            on_reply, on_done = tcp._reply_sinks(a, state)
            with state.cv:
                state.buffered = tcp.high_water

            def drain_slowly():
                # two partial drains inside separate timeout windows,
                # then drop below high_water
                for step in (8, 8, 40):
                    time.sleep(0.2)
                    with state.cv:
                        state.buffered -= step
                        state.cv.notify_all()

            t = threading.Thread(target=drain_slowly)
            t.start()
            assert on_reply(b"x" * 16) is True  # not dropped
            t.join(timeout=5)
            with tcp._flush_lock:
                assert a not in tcp._kill_set
            on_done()
        finally:
            b.close()
            tcp.stop()

    def test_stalled_reader_releases_shared_lock_for_writers(
            self, deployment):
        """End to end at the server layer: a lazy retrieve whose client
        sink stalls forever is abandoned, the reply generator is
        closed, and the shared lock is released (a writer proceeds)."""
        d = deployment
        server = d.server
        from repro.protocol.wire import MajorRequest, encode_request
        conn_id = server.open_connection("stall-e2e")
        frame = encode_request(
            MajorRequest.QUERY, ["get_machine", "*"])[4:]
        abandoned = threading.Event()

        def on_reply(reply: bytes) -> bool:
            return False  # client sink gives up immediately (stall)

        def on_done() -> None:
            abandoned.set()

        server._run_frame(conn_id, frame, on_reply, on_done)
        assert abandoned.wait(timeout=5)
        # the shared lock must be free again: a writer gets through
        got_exclusive = threading.Event()

        def writer():
            with d.db.lock:
                got_exclusive.set()

        t = threading.Thread(target=writer)
        t.start()
        assert got_exclusive.wait(timeout=5)
        t.join(timeout=5)
        server.close_connection(conn_id)


class TestConcurrentReads:
    def test_readers_overlap_under_simulated_backend_latency(
            self, deployment):
        """Four pooled readers with a 0.2 s simulated INGRES round trip
        finish in ~one round trip, not four (shared lock mode)."""
        d = deployment
        d.db.sim_backend_latency = 0.2
        try:
            errors: list[Exception] = []

            def reader(i):
                try:
                    client = MoiraClient(dispatcher=d.server)
                    client.connect()
                    client.query("get_machine", "*")
                    client.close()
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [threading.Thread(target=reader, args=(i,))
                       for i in range(4)]
            start = time.monotonic()
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
            elapsed = time.monotonic() - start
        finally:
            d.db.sim_backend_latency = 0.0
        assert not errors
        assert elapsed < 0.6  # serial would be >= 0.8

    def test_writers_still_serialise(self, deployment):
        """Two mutations with the same simulated latency take two round
        trips (exclusive mode is untouched by the rwlock change)."""
        d = deployment
        login = d.handles.logins[1]
        d.make_admin(login)
        clients = [d.client_for(login, "pw2") for _ in range(2)]
        d.db.sim_backend_latency = 0.1
        try:
            errors: list[Exception] = []

            def writer(i):
                try:
                    clients[i].query(
                        "add_machine", f"SER{i}.MIT.EDU", "VAX")
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [threading.Thread(target=writer, args=(i,))
                       for i in range(2)]
            start = time.monotonic()
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
            elapsed = time.monotonic() - start
        finally:
            d.db.sim_backend_latency = 0.0
            for c in clients:
                c.close()
        assert not errors
        assert elapsed >= 0.19
