"""Concurrency tests: simultaneous clients, competing DCMs, threaded
TCP traffic against the single-process server."""

from __future__ import annotations

import threading

import pytest

from repro.client import MoiraClient
from repro.core import AthenaDeployment, DeploymentConfig
from repro.db.locks import LockManager, LockMode
from repro.dcm.dcm import DCM
from repro.protocol.transport import TcpServerTransport
from repro.workload import PopulationSpec


@pytest.fixture
def deployment():
    return AthenaDeployment(DeploymentConfig(population=PopulationSpec(
        users=50, unregistered_users=0, nfs_servers=2, maillists=5,
        clusters=1, machines_per_cluster=2, printers=2,
        network_services=5)))


class TestConcurrentClients:
    def test_threaded_tcp_clients(self, deployment):
        """Many threads hammer the server over real sockets; every
        query gets a correct, uncorrupted answer."""
        d = deployment
        tcp = TcpServerTransport(d.server).start()
        errors: list[Exception] = []

        def worker(index: int):
            try:
                host, port = tcp.address
                client = MoiraClient(tcp_address=(host, port))
                client.connect()
                for i in range(20):
                    login = d.handles.logins[
                        (index * 7 + i) % len(d.handles.logins)]
                    rows = client.query("get_filesys_by_label", login)
                    assert rows[0][0] == login
                client.close()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(8)]
        try:
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
        finally:
            tcp.stop()
        assert not errors

    def test_interleaved_mutations_stay_consistent(self, deployment):
        """Concurrent writers through the server never corrupt the
        database (the engine serialises on its lock)."""
        from repro.apps import MrCheck

        d = deployment
        errors: list[Exception] = []

        def writer(index: int):
            try:
                client = MoiraClient(dispatcher=d.server)
                client.connect()
                # use the privileged direct path for the ACL-free writes
                direct = d.direct_client()
                for i in range(15):
                    direct.query("add_machine",
                                 f"T{index}-{i}.MIT.EDU", "VAX")
                client.close()
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(i,))
                   for i in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors
        assert len(d.db.table("machine").select({"name": "T*"})) == 90
        assert MrCheck(d.db).run() == []


class TestCompetingDCMs:
    def test_two_dcms_share_locks(self, deployment):
        """Two DCM processes with a shared lock manager never update the
        same service concurrently; one skips what the other holds."""
        d = deployment
        shared_locks = LockManager()
        dcm_a = DCM(d.db, d.clock, network=d.network,
                    lock_manager=shared_locks)
        dcm_b = DCM(d.db, d.clock, network=d.network,
                    lock_manager=shared_locks)
        for (svc, machine), binding in d.dcm._bindings.items():
            dcm_a.bind_host(svc, machine, binding)
            dcm_b.bind_host(svc, machine, binding)

        d.clock.advance(7 * 3600)
        # b grabs the hesiod lock as if mid-update
        token = shared_locks.acquire("service:HESIOD",
                                     LockMode.EXCLUSIVE)
        report_a = dcm_a.run_once()
        assert report_a.skipped_locked >= 1
        hesiod = d.db.table("servers").select({"name": "HESIOD"})[0]
        assert hesiod["dfgen"] == 0  # a did not generate
        shared_locks.release("service:HESIOD", token)
        report_a2 = dcm_a.run_once()
        assert d.db.table("servers").select(
            {"name": "HESIOD"})[0]["dfgen"] > 0

    def test_shared_lock_allows_parallel_host_scans(self, deployment):
        """A UNIQUE service takes a shared lock for its host scan, so a
        second DCM can scan concurrently; EXCLUSIVE (replicated) cannot."""
        locks = LockManager()
        t1 = locks.try_acquire("service:NFS", LockMode.SHARED)
        t2 = locks.try_acquire("service:NFS", LockMode.SHARED)
        assert t1 and t2
        assert locks.try_acquire("service:ZEPHYR",
                                 LockMode.EXCLUSIVE)
        assert locks.try_acquire("service:ZEPHYR",
                                 LockMode.EXCLUSIVE) is None

    def test_inprogress_flag_is_advisory_not_locking(self, deployment):
        """§5.7.1: InProgress "is NOT relied upon for locking" — a
        stale flag (crashed DCM) does not wedge future updates."""
        d = deployment
        client = d.direct_client()
        client.query("set_server_internal_flags", "HESIOD", 0, 0, 1, 0,
                     "")  # stale inprogress, as after a DCM crash
        d.run_hours(7)
        row = d.db.table("servers").select({"name": "HESIOD"})[0]
        assert row["dfgen"] > 0  # updated anyway
        assert row["inprogress"] == 0
