"""Tests for the relational engine (repro.db.engine)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.db.engine import Column, Database, Table, WildcardPattern
from repro.errors import (
    MoiraError,
    MR_ARG_TOO_LONG,
    MR_BAD_CHAR,
    MR_EXISTS,
    MR_INTEGER,
    MR_NO_ID,
)


def people_table() -> Table:
    return Table(
        "people",
        [
            Column("name", str, max_len=16, checked=True),
            Column("uid", int),
            Column("host", str, fold_case=True),
        ],
        unique=[("name",)],
        indexes=["uid"],
    )


class TestColumnCoercion:
    def test_int_parse(self):
        col = Column("n", int)
        assert col.coerce("42") == 42
        assert col.coerce(" 7 ") == 7
        assert col.coerce(True) == 1

    def test_int_parse_failure(self):
        with pytest.raises(MoiraError) as exc:
            Column("n", int).coerce("seven")
        assert exc.value.code == MR_INTEGER

    def test_string_too_long(self):
        with pytest.raises(MoiraError) as exc:
            Column("s", str, max_len=3).coerce("abcd")
        assert exc.value.code == MR_ARG_TOO_LONG

    def test_bad_char_in_checked_column(self):
        with pytest.raises(MoiraError) as exc:
            Column("s", str, checked=True).coerce("a\x01b")
        assert exc.value.code == MR_BAD_CHAR

    def test_unchecked_column_allows_control_chars(self):
        assert Column("s", str).coerce("a\tb") == "a\tb"

    def test_defaults(self):
        assert Column("n", int).default == 0
        assert Column("s", str).default == ""


class TestWildcards:
    def test_star(self):
        assert WildcardPattern("bab*").matches("babette")
        assert not WildcardPattern("bab*").matches("abba")

    def test_question(self):
        assert WildcardPattern("e40-p?").matches("e40-po")
        assert not WildcardPattern("e40-p?").matches("e40-p")

    def test_fold_case(self):
        assert WildcardPattern("SUOMI*", fold_case=True).matches(
            "suomi.mit.edu")

    def test_is_wild(self):
        assert WildcardPattern.is_wild("a*b")
        assert WildcardPattern.is_wild("a?b")
        assert not WildcardPattern.is_wild("plain")

    def test_bracket_is_literal(self):
        assert WildcardPattern("a[b]c").matches("a[b]c")
        assert not WildcardPattern("a[b]c").matches("abc")

    @given(st.text(alphabet=st.characters(blacklist_categories=("Cs",)),
                   max_size=20))
    def test_exact_text_matches_itself_when_not_wild(self, text):
        if not WildcardPattern.is_wild(text):
            assert WildcardPattern(text).matches(text)


class TestTable:
    def test_insert_and_select(self):
        t = people_table()
        t.insert({"name": "ann", "uid": 1, "host": "X.MIT.EDU"})
        t.insert({"name": "bob", "uid": 2, "host": "Y.MIT.EDU"})
        assert len(t) == 2
        assert t.select({"name": "ann"})[0]["uid"] == 1

    def test_insert_fills_defaults(self):
        t = people_table()
        row = t.insert({"name": "ann"})
        assert row["uid"] == 0
        assert row["host"] == ""

    def test_unique_violation(self):
        t = people_table()
        t.insert({"name": "ann", "uid": 1})
        with pytest.raises(MoiraError) as exc:
            t.insert({"name": "ann", "uid": 2})
        assert exc.value.code == MR_EXISTS

    def test_update_maintains_indexes(self):
        t = people_table()
        row = t.insert({"name": "ann", "uid": 1})
        t.update_rows([row], {"uid": 99})
        assert t.select({"uid": 99}) == [row]
        assert t.select({"uid": 1}) == []

    def test_update_unique_violation(self):
        t = people_table()
        t.insert({"name": "ann", "uid": 1})
        row = t.insert({"name": "bob", "uid": 2})
        with pytest.raises(MoiraError):
            t.update_rows([row], {"name": "ann"})
        # failed update leaves the row unchanged
        assert t.select({"name": "bob"}) == [row]

    def test_update_to_same_value_is_not_violation(self):
        t = people_table()
        row = t.insert({"name": "ann", "uid": 1})
        t.update_rows([row], {"name": "ann", "uid": 5})
        assert row["uid"] == 5

    def test_delete_maintains_indexes(self):
        t = people_table()
        row = t.insert({"name": "ann", "uid": 1})
        t.delete_rows([row])
        assert len(t) == 0
        assert t.select({"uid": 1}) == []
        # name can be reused after delete
        t.insert({"name": "ann", "uid": 3})

    def test_case_insensitive_column(self):
        t = people_table()
        t.insert({"name": "ann", "uid": 1, "host": "SUOMI.MIT.EDU"})
        assert len(t.select({"host": "suomi.mit.edu"})) == 1

    def test_wildcard_select(self):
        t = people_table()
        for i, name in enumerate(["babette", "barb", "carol"]):
            t.insert({"name": name, "uid": i})
        assert {r["name"] for r in t.select({"name": "ba*"})} == {
            "babette", "barb"}

    def test_predicate_select(self):
        t = people_table()
        for i in range(10):
            t.insert({"name": f"u{i}", "uid": i})
        rows = t.select(predicate=lambda r: r["uid"] % 2 == 0)
        assert len(rows) == 5

    def test_count(self):
        t = people_table()
        for i in range(4):
            t.insert({"name": f"u{i}", "uid": i % 2})
        assert t.count() == 4
        assert t.count({"uid": 0}) == 2

    def test_stats_track_mutations(self):
        t = people_table()
        row = t.insert({"name": "ann", "uid": 1}, now=100)
        assert t.stats.appends == 1
        assert t.stats.modtime == 100
        t.update_rows([row], {"uid": 2}, now=200)
        assert t.stats.updates == 1
        t.delete_rows([row], now=300)
        assert t.stats.deletes == 1
        assert t.stats.modtime == 300

    def test_unknown_column_rejected(self):
        t = people_table()
        with pytest.raises(MoiraError):
            t.insert({"name": "x", "bogus": 1})

    def test_add_index_on_existing_rows(self):
        t = people_table()
        t.insert({"name": "ann", "uid": 1, "host": "H1"})
        t.add_index("host")
        assert len(t.select({"host": "h1"})) == 1


class TestDatabase:
    def test_values_and_next_id(self):
        db = Database()
        db.create_table(Table("values", [Column("name"),
                                         Column("value", int)],
                              unique=[("name",)]))
        db.set_value("users_id", 10)
        assert db.next_id("users_id") == 10
        assert db.next_id("users_id") == 11
        assert db.get_value("users_id") == 12

    def test_missing_hint_raises_no_id(self):
        db = Database()
        db.create_table(Table("values", [Column("name"),
                                         Column("value", int)],
                              unique=[("name",)]))
        with pytest.raises(MoiraError) as exc:
            db.next_id("nonexistent")
        assert exc.value.code == MR_NO_ID

    def test_duplicate_table_rejected(self):
        db = Database()
        db.create_table(Table("t", [Column("a")]))
        with pytest.raises(ValueError):
            db.create_table(Table("t", [Column("a")]))

    def test_table_stats_listing(self):
        db = Database()
        t = db.create_table(Table("t", [Column("a")]))
        t.insert({"a": "x"}, now=5)
        stats = db.table_stats()
        assert stats == [("t", 0, 1, 0, 0, 5)]


class TestPropertyBased:
    @given(st.lists(st.tuples(st.integers(0, 50), st.integers(0, 1000)),
                    max_size=60))
    def test_index_agrees_with_scan(self, ops):
        """Hash-index lookups must always agree with a full scan."""
        t = Table("t", [Column("k", int), Column("v", int)], indexes=["k"])
        rows = []
        for key, value in ops:
            rows.append(t.insert({"k": key, "v": value}))
        for key in {k for k, _ in ops}:
            via_index = t.select({"k": key})
            via_scan = [r for r in t.rows if r["k"] == key]
            assert via_index == via_scan

    @given(st.lists(st.sampled_from("abcdefgh"), min_size=1, max_size=8),
           st.lists(st.text(alphabet="abcdefgh*?", min_size=1, max_size=4),
                    min_size=1, max_size=5))
    def test_wildcard_select_equals_filter(self, names, patterns):
        t = Table("t", [Column("name")], indexes=["name"])
        for i, name in enumerate(names):
            try:
                t.insert({"name": name + str(i)})
            except MoiraError:
                pass
        for pattern in patterns:
            matcher = WildcardPattern(pattern)
            got = {r["name"] for r in t.select({"name": pattern})}
            expect = {r["name"] for r in t.rows
                      if matcher.matches(r["name"])}
            assert got == expect
