"""Tests for the KLOGIN generator (hostaccess -> /.klogin)."""

from __future__ import annotations

import pytest

from repro.core import AthenaDeployment, DeploymentConfig
from repro.dcm.dcm import ServiceBinding
from repro.dcm.generators import get_generator
from repro.dcm.generators.base import GenContext
from repro.workload import PopulationSpec


@pytest.fixture
def world():
    d = AthenaDeployment(DeploymentConfig(population=PopulationSpec(
        users=10, unregistered_users=0, nfs_servers=2, maillists=2,
        clusters=1, machines_per_cluster=1, printers=1,
        network_services=3)))
    client = d.direct_client()
    client.query("add_machine", "ROOTBOX.MIT.EDU", "VAX")
    client.query("add_server_info", "KLOGIN", 60, "/tmp/klogin.out",
                 "/bin/klogin.sh", "UNIQUE", 1, "NONE", "NONE")
    client.query("add_server_host_info", "KLOGIN", "ROOTBOX.MIT.EDU",
                 1, 0, 0, "")
    host = d._make_host("ROOTBOX.MIT.EDU")
    d.dcm.bind_host("KLOGIN", "ROOTBOX.MIT.EDU", ServiceBinding(
        host=host, daemon=d.daemons["ROOTBOX.MIT.EDU"]))
    return d, client, host


def generate(d):
    gen = get_generator("KLOGIN")
    hosts = d.db.table("serverhosts").select({"service": "KLOGIN"})
    return gen.generate(GenContext(d.db, d.clock.now(), hosts=hosts))


class TestKloginGenerator:
    def test_user_ace(self, world):
        d, client, _ = world
        operator = d.handles.logins[0]
        client.query("add_server_host_access", "ROOTBOX.MIT.EDU",
                     "USER", operator)
        result = generate(d)
        klogin = result.host_files["ROOTBOX.MIT.EDU"]["/.klogin"]
        assert klogin == f"{operator}.root@ATHENA.MIT.EDU\n".encode()

    def test_list_ace_expanded(self, world):
        d, client, _ = world
        ops = d.handles.logins[:3]
        client.query("add_list", "root-ops", 1, 0, 0, 0, 0, 0, "NONE",
                     "NONE", "")
        for login in ops:
            client.query("add_member_to_list", "root-ops", "USER",
                         login)
        client.query("add_server_host_access", "ROOTBOX.MIT.EDU",
                     "LIST", "root-ops")
        result = generate(d)
        klogin = result.host_files["ROOTBOX.MIT.EDU"][
            "/.klogin"].decode()
        assert klogin.splitlines() == sorted(
            f"{login}.root@ATHENA.MIT.EDU" for login in ops)

    def test_no_hostaccess_means_empty_file(self, world):
        d, _, _ = world
        result = generate(d)
        assert result.host_files["ROOTBOX.MIT.EDU"]["/.klogin"] == b""

    def test_inactive_users_excluded(self, world):
        d, client, _ = world
        operator = d.handles.logins[0]
        client.query("add_server_host_access", "ROOTBOX.MIT.EDU",
                     "USER", operator)
        client.query("update_user_status", operator, 3)
        result = generate(d)
        assert result.host_files["ROOTBOX.MIT.EDU"]["/.klogin"] == b""

    def test_dcm_ships_it(self, world):
        d, client, host = world
        operator = d.handles.logins[1]
        client.query("add_server_host_access", "ROOTBOX.MIT.EDU",
                     "USER", operator)
        d.run_hours(2)
        assert host.fs.read("/.klogin") == \
            f"{operator}.root@ATHENA.MIT.EDU\n".encode()

    def test_access_change_propagates(self, world):
        d, client, host = world
        first, second = d.handles.logins[2], d.handles.logins[3]
        client.query("add_server_host_access", "ROOTBOX.MIT.EDU",
                     "USER", first)
        d.run_hours(2)
        client.query("update_server_host_access", "ROOTBOX.MIT.EDU",
                     "USER", second)
        d.run_hours(2)
        assert second.encode() in host.fs.read("/.klogin")
        assert first.encode() not in host.fs.read("/.klogin")
