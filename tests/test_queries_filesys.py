"""Tests for filesystem/nfsphys/quota queries (§7.0.5)."""

from __future__ import annotations

import pytest

from repro.errors import (
    MoiraError,
    MR_FILESYS,
    MR_NO_MATCH,
    MR_FILESYS_ACCESS,
    MR_FSTYPE,
    MR_IN_USE,
    MR_NFS,
    MR_NFSPHYS,
    MR_QUOTA,
    MR_USER,
)
from tests.conftest import make_user


def expect_error(code, fn, *args):
    with pytest.raises(MoiraError) as exc:
        fn(*args)
    assert exc.value.code == code, exc.value


@pytest.fixture
def nfs_world(run):
    """A server machine with one exported partition, a user, a group."""
    run("add_machine", "CHARON.MIT.EDU", "VAX")
    run("add_nfsphys", "CHARON.MIT.EDU", "/u1", "ra81a", 1, 0, 10000)
    make_user(run, "aab")
    run("add_list", "aab-group", 1, 0, 0, 0, 1, -1, "USER", "aab", "g")
    return "CHARON.MIT.EDU"


def add_fs(run, label="aab", machine="CHARON.MIT.EDU",
           packname="/u1/aab", mount="/mit/aab", fstype="NFS",
           access="w", owner="aab", owners="aab-group", create=1,
           lockertype="HOMEDIR"):
    run("add_filesys", label, fstype, machine, packname, mount, access,
        "", owner, owners, create, lockertype)


class TestFilesys:
    def test_add_and_get(self, run, nfs_world):
        add_fs(run)
        row = run("get_filesys_by_label", "aab")[0]
        assert row[0] == "aab"
        assert row[1] == "NFS"
        assert row[2] == "CHARON.MIT.EDU"
        assert row[7] == "aab"        # owner login
        assert row[8] == "aab-group"  # owners list

    def test_nfs_requires_exported_partition(self, run, nfs_world):
        expect_error(MR_NFS, run, "add_filesys", "bad", "NFS",
                     "CHARON.MIT.EDU", "/u2/bad", "/mit/bad", "w", "",
                     "aab", "aab-group", 1, "HOMEDIR")

    def test_nfs_access_mode_checked(self, run, nfs_world):
        expect_error(MR_FILESYS_ACCESS, run, "add_filesys", "bad", "NFS",
                     "CHARON.MIT.EDU", "/u1/bad", "/mit/bad", "rw", "",
                     "aab", "aab-group", 1, "HOMEDIR")

    def test_rvd_skips_nfs_checks(self, run, nfs_world):
        run("add_filesys", "ade", "RVD", "CHARON.MIT.EDU", "ade-pack",
            "/mnt/ade", "r", "", "aab", "aab-group", 0, "SYSTEM")
        assert run("get_filesys_by_label", "ade")[0][1] == "RVD"

    def test_bad_fstype(self, run, nfs_world):
        expect_error(MR_FSTYPE, run, "add_filesys", "x", "AFS",
                     "CHARON.MIT.EDU", "/u1/x", "/mit/x", "w", "", "aab",
                     "aab-group", 1, "HOMEDIR")

    def test_get_by_machine(self, run, nfs_world):
        add_fs(run)
        rows = run("get_filesys_by_machine", "CHARON.MIT.EDU")
        assert [r[0] for r in rows] == ["aab"]

    def test_get_by_nfsphys(self, run, nfs_world):
        add_fs(run)
        rows = run("get_filesys_by_nfsphys", "CHARON.MIT.EDU", "/u1")
        assert [r[0] for r in rows] == ["aab"]

    def test_get_by_group(self, run, nfs_world):
        add_fs(run)
        rows = run("get_filesys_by_group", "aab-group")
        assert [r[0] for r in rows] == ["aab"]

    def test_update_rename(self, run, nfs_world):
        add_fs(run)
        run("update_filesys", "aab", "aab2", "NFS", "CHARON.MIT.EDU",
            "/u1/aab", "/mit/aab2", "w", "", "aab", "aab-group", 1,
            "HOMEDIR")
        assert run("get_filesys_by_label", "aab2")[0][4] == "/mit/aab2"

    def test_delete_returns_quota_allocation(self, run, nfs_world):
        add_fs(run)
        run("add_nfs_quota", "aab", "aab", 500)
        before = run("get_nfsphys", "CHARON.MIT.EDU", "/u1")[0]
        assert before[4] == 500
        run("delete_filesys", "aab")
        after = run("get_nfsphys", "CHARON.MIT.EDU", "/u1")[0]
        assert after[4] == 0
        expect_error(MR_NO_MATCH, run, "get_nfs_quota", "aab", "aab")


class TestNfsphys:
    def test_get_all(self, run, nfs_world):
        rows = run("get_all_nfsphys")
        assert rows[0][0] == "CHARON.MIT.EDU"
        assert rows[0][5] == 10000

    def test_adjust_allocation(self, run, nfs_world):
        run("adjust_nfsphys_allocation", "CHARON.MIT.EDU", "/u1", 250)
        assert run("get_nfsphys", "CHARON.MIT.EDU", "/u1")[0][4] == 250
        run("adjust_nfsphys_allocation", "CHARON.MIT.EDU", "/u1", -50)
        assert run("get_nfsphys", "CHARON.MIT.EDU", "/u1")[0][4] == 200

    def test_update(self, run, nfs_world):
        run("update_nfsphys", "CHARON.MIT.EDU", "/u1", "ra90", 3, 10,
            20000)
        row = run("get_nfsphys", "CHARON.MIT.EDU", "/u1")[0]
        assert row[2] == "ra90"
        assert row[5] == 20000

    def test_delete_in_use_refused(self, run, nfs_world):
        add_fs(run)
        expect_error(MR_IN_USE, run, "delete_nfsphys", "CHARON.MIT.EDU",
                     "/u1")

    def test_delete_unknown(self, run, nfs_world):
        expect_error(MR_NFSPHYS, run, "delete_nfsphys", "CHARON.MIT.EDU",
                     "/u9")


class TestQuotas:
    def test_add_updates_allocation(self, run, nfs_world):
        add_fs(run)
        run("add_nfs_quota", "aab", "aab", 300)
        assert run("get_nfsphys", "CHARON.MIT.EDU", "/u1")[0][4] == 300
        row = run("get_nfs_quota", "aab", "aab")[0]
        assert int(row[2]) == 300
        assert row[4] == "CHARON.MIT.EDU"

    def test_update_adjusts_allocation_delta(self, run, nfs_world):
        add_fs(run)
        run("add_nfs_quota", "aab", "aab", 300)
        run("update_nfs_quota", "aab", "aab", 500)
        assert run("get_nfsphys", "CHARON.MIT.EDU", "/u1")[0][4] == 500

    def test_delete_returns_allocation(self, run, nfs_world):
        add_fs(run)
        run("add_nfs_quota", "aab", "aab", 300)
        run("delete_nfs_quota", "aab", "aab")
        assert run("get_nfsphys", "CHARON.MIT.EDU", "/u1")[0][4] == 0

    def test_negative_quota_rejected(self, run, nfs_world):
        add_fs(run)
        expect_error(MR_QUOTA, run, "add_nfs_quota", "aab", "aab", -5)

    def test_quota_requires_existing_filesystem(self, run, nfs_world):
        expect_error(MR_FILESYS, run, "add_nfs_quota", "ghost", "aab",
                     10)

    def test_quotas_by_partition(self, run, nfs_world):
        add_fs(run)
        make_user(run, "second")
        run("add_nfs_quota", "aab", "aab", 300)
        run("add_nfs_quota", "aab", "second", 200)
        rows = run("get_nfs_quotas_by_partition", "CHARON.MIT.EDU",
                   "/u1")
        assert {(r[1], int(r[2])) for r in rows} == {("aab", 300),
                                                     ("second", 200)}
