"""A semester of simulated operation — the long-haul soak test.

Six weeks of life at Athena: term-start registration burst, steady
administrative churn (shell changes, list membership, quota bumps,
machines coming and going), users leaving, occasional host crashes —
with the DCM running on its cron the whole time.  At the end: every
service healthy, every extract consistent with the database, the
consistency checker clean, and the managed servers serving the truth.
"""

from __future__ import annotations

import random

import pytest

from repro.apps import MrCheck
from repro.core import AthenaDeployment, DeploymentConfig
from repro.errors import MoiraError
from repro.reg import RegistrationServer, UserReg
from repro.workload import PopulationSpec


@pytest.fixture(scope="module")
def semester():
    d = AthenaDeployment(DeploymentConfig(population=PopulationSpec(
        users=120, unregistered_users=30, nfs_servers=4, maillists=15,
        clusters=3, machines_per_cluster=2, printers=5,
        network_services=10)))
    rng = random.Random(1988)
    reg = RegistrationServer(d.db, d.clock, d.kdc)
    userreg = UserReg(reg, d.kdc)
    client = d.direct_client()

    # week 0: registration day
    registered = []
    for i, (first, last, mit_id) in enumerate(
            d.handles.unregistered_ids):
        outcome = userreg.register(first, last, mit_id, f"term{i:03d}",
                                   "pw")
        assert outcome.success, outcome.error
        client.query("update_user_status", outcome.login, 1)
        registered.append(outcome.login)
    d.run_hours(24)

    # weeks 1-6: churn
    all_logins = d.handles.logins + registered
    crashes = 0
    for week in range(6):
        for day in range(7):
            for _ in range(rng.randrange(2, 6)):
                action = rng.random()
                victim = rng.choice(all_logins)
                try:
                    if action < 0.3:
                        client.query("update_user_shell", victim,
                                     rng.choice(["/bin/csh", "/bin/sh"]))
                    elif action < 0.5:
                        lst = rng.choice(d.handles.maillist_names)
                        client.query("add_member_to_list", lst, "USER",
                                     victim)
                    elif action < 0.65:
                        lst = rng.choice(d.handles.maillist_names)
                        client.query("delete_member_from_list", lst,
                                     "USER", victim)
                    elif action < 0.8:
                        client.query("update_nfs_quota", victim, victim,
                                     rng.randrange(100, 900))
                    elif action < 0.9:
                        client.query(
                            "add_machine",
                            f"W{week}{day}{rng.randrange(99)}.MIT.EDU",
                            "RT")
                    else:
                        client.query("update_user_status", victim, 3)
                        all_logins.remove(victim)
                except MoiraError:
                    pass  # duplicate membership, already-removed, etc.
            # the occasional crash, healed a day later
            if rng.random() < 0.1:
                name = rng.choice(d.handles.nfs_machines)
                if d.hosts[name].alive:
                    d.hosts[name].crash()
                    crashes += 1
            d.run_hours(24)
            for name in d.handles.nfs_machines:
                if not d.hosts[name].alive:
                    d.hosts[name].reboot()
        d.run_hours(2)  # let retries settle at week's end

    d.run_hours(26)  # one final full propagation cycle
    return d, registered, crashes


class TestSemester:
    def test_no_hard_errors_survive(self, semester):
        d, _, _ = semester
        for row in d.db.table("servers").rows:
            assert row["harderror"] == 0, (row["name"], row["errmsg"])

    def test_every_host_converged(self, semester):
        d, _, crashes = semester
        for row in d.db.table("serverhosts").rows:
            if row["service"] in ("HESIOD", "NFS", "MAIL", "ZEPHYR"):
                assert row["success"] == 1, (row["service"],
                                             row["hosterrmsg"])

    def test_database_consistent(self, semester):
        d, _, _ = semester
        assert MrCheck(d.db).run() == []

    def test_hesiod_agrees_with_database(self, semester):
        """The nameserver's world view matches the database for every
        active user and no departed one."""
        d, _, _ = semester
        from repro.servers.hesiod import HesiodError

        active = d.db.table("users").select({"status": 1})
        for user in active[:30]:
            pw = d.hesiod.getpwnam(user["login"])
            assert pw["uid"] == user["uid"]
            assert pw["shell"] == user["shell"]
        departed = d.db.table("users").select({"status": 3})
        assert departed  # churn produced some
        for user in departed[:10]:
            with pytest.raises(HesiodError):
                d.hesiod.resolve(user["login"], "passwd")

    def test_mailhub_agrees_with_database(self, semester):
        d, _, _ = semester
        active = d.db.table("users").select({"status": 1,
                                             "potype": "POP"})
        for user in active[:15]:
            resolved = d.mailhub.resolve(user["login"])
            assert len(resolved) == 1
            assert resolved[0].endswith(".local")

    def test_nfs_quotas_agree_with_database(self, semester):
        d, _, _ = semester
        quota_rows = d.db.table("nfsquota").rows
        phys_host = {p["nfsphys_id"]: p["mach_id"]
                     for p in d.db.table("nfsphys").rows}
        machines = {m["mach_id"]: m["name"]
                    for m in d.db.table("machine").rows}
        users_by_id = {u["users_id"]: u
                       for u in d.db.table("users").rows}
        checked = 0
        for q in quota_rows:
            user = users_by_id.get(q["users_id"])
            if user is None or user["status"] != 1:
                continue
            machine = machines.get(phys_host.get(q["phys_id"]))
            server = d.nfs_servers.get(machine)
            if server is None:
                continue
            assert server.quota_for(user["uid"]) == q["quota"], \
                user["login"]
            checked += 1
            if checked >= 40:
                break
        assert checked > 10

    def test_registration_burst_landed(self, semester):
        d, registered, _ = semester
        still_active = [
            login for login in registered
            if d.db.table("users").select({"login": login,
                                           "status": 1})]
        assert len(still_active) > len(registered) // 2
        for login in still_active[:10]:
            assert d.hesiod.getpwnam(login)

    def test_dcm_did_real_work(self, semester):
        d, _, _ = semester
        assert d.dcm.total_generations > 20
        assert d.dcm.total_no_change > 20   # quiet intervals skipped
        assert d.dcm.total_propagations > 40
