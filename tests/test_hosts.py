"""Tests for simulated hosts: VFS crash semantics, processes, the
update daemon's install scripts (§5.9)."""

from __future__ import annotations

import pytest

from repro.dcm.generators.base import make_tar
from repro.errors import MR_CHECKSUM, MR_OCONFIG, MR_SCRIPT_FAILED, \
    MR_TAR_FAIL, MoiraError
from repro.hosts.host import HostDown, SimulatedHost
from repro.hosts.update_daemon import InstallScript, UpdateDaemon, checksum
from repro.hosts.vfs import VirtualFileSystem


class TestVfs:
    def test_write_read(self):
        fs = VirtualFileSystem()
        fs.write("/etc/passwd", b"root:0")
        assert fs.read("/etc/passwd") == b"root:0"

    def test_unsynced_writes_lost_on_crash(self):
        fs = VirtualFileSystem()
        fs.write("/durable", b"old")
        fs.fsync()
        fs.write("/durable", b"new")
        fs.write("/fresh", b"data")
        fs.crash()
        assert fs.read("/durable") == b"old"
        assert not fs.exists("/fresh")

    def test_synced_writes_survive_crash(self):
        fs = VirtualFileSystem()
        fs.write("/f", b"data")
        fs.fsync()
        fs.crash()
        assert fs.read("/f") == b"data"

    def test_unlink(self):
        fs = VirtualFileSystem()
        fs.write("/f", b"x")
        fs.fsync()
        fs.unlink("/f")
        assert not fs.exists("/f")
        # but the delete is itself not durable until sync
        fs.crash()
        assert fs.exists("/f")

    def test_rename_atomic_on_durable_data(self):
        fs = VirtualFileSystem()
        fs.write("/new", b"v2")
        fs.write("/cur", b"v1")
        fs.fsync()
        fs.rename("/new", "/cur")
        # even across a crash, we see exactly one version, never a tear
        fs.crash()
        assert fs.read("/cur") in (b"v1", b"v2")
        assert fs.read("/cur") == b"v2"  # durable rename committed

    def test_rename_of_unsynced_data_is_volatile(self):
        fs = VirtualFileSystem()
        fs.write("/cur", b"v1")
        fs.fsync()
        fs.write("/new", b"v2")   # not synced
        fs.rename("/new", "/cur")
        fs.crash()
        assert fs.read("/cur") == b"v1"

    def test_listdir_prefix(self):
        fs = VirtualFileSystem()
        fs.write("/etc/hesiod/passwd.db", b"")
        fs.write("/etc/hesiod/uid.db", b"")
        fs.write("/tmp/x", b"")
        fs.fsync()
        assert fs.listdir("/etc/hesiod/") == [
            "/etc/hesiod/passwd.db", "/etc/hesiod/uid.db"]

    def test_mkdir_and_meta(self):
        fs = VirtualFileSystem()
        fs.mkdir("/mit/user", owner_uid=6530, group_gid=101, mode=0o755)
        assert fs.isdir("/mit/user")
        assert fs.dir_meta("/mit/user")["uid"] == 6530
        fs.chown("/mit/user", 1, 2)
        assert fs.dir_meta("/mit/user")["uid"] == 1

    def test_read_missing(self):
        with pytest.raises(FileNotFoundError):
            VirtualFileSystem().read("/nothing")


class TestSimulatedHost:
    def test_crash_kills_processes(self):
        host = SimulatedHost("test.mit.edu")
        proc = host.spawn("daemon")
        host.crash()
        assert not proc.running
        with pytest.raises(HostDown):
            host.check_alive()

    def test_reboot_runs_boot_hooks(self):
        host = SimulatedHost("t")
        booted = []
        host.add_boot_hook(lambda h: booted.append(h.boot_count))
        host.crash()
        host.reboot()
        assert booted == [2]

    def test_signal_via_pid_file(self):
        host = SimulatedHost("t")
        got = []
        host.spawn("srv", on_signal=got.append, pid_file="/etc/srv.pid")
        host.signal_pid_file("/etc/srv.pid", 1)
        assert got == [1]

    def test_kill_removes_process(self):
        host = SimulatedHost("t")
        proc = host.spawn("srv")
        host.kill(proc.pid)
        assert host.find_process("srv") is None

    def test_crash_after_syncs_fault_injection(self):
        host = SimulatedHost("t")
        host.crash_after_syncs(2)
        host.fs.write("/a", b"1")
        host.fsync()
        host.fs.write("/b", b"2")
        with pytest.raises(HostDown):
            host.fsync()
        assert not host.alive


def staged_update(daemon, files, target="/tmp/out", post=None):
    """Run the transfer phase by hand."""
    payload = make_tar(files)
    daemon.authenticate("moira")
    daemon.receive_file(target, payload, checksum(payload))
    script = InstallScript()
    for name in sorted(files):
        script.extract(name).install(name)
    if post:
        script.execute(post)
    daemon.receive_script(script.serialize())
    daemon.flush()
    return target


class TestUpdateDaemon:
    def test_full_install(self):
        host = SimulatedHost("t")
        daemon = UpdateDaemon(host)
        target = staged_update(daemon, {"/etc/f1": b"one",
                                        "/etc/f2": b"two"})
        assert daemon.execute(target) == 0
        assert host.fs.read("/etc/f1") == b"one"
        assert host.fs.read("/etc/f2") == b"two"

    def test_checksum_mismatch_rejected(self):
        host = SimulatedHost("t")
        daemon = UpdateDaemon(host)
        daemon.authenticate("moira")
        with pytest.raises(MoiraError) as exc:
            daemon.receive_file("/tmp/out", b"damaged", checksum(b"good"))
        assert exc.value.code == MR_CHECKSUM

    def test_transfer_requires_authentication(self):
        host = SimulatedHost("t")
        daemon = UpdateDaemon(host)
        with pytest.raises(MoiraError) as exc:
            daemon.receive_file("/tmp/out", b"x", checksum(b"x"))
        assert exc.value.code == MR_OCONFIG

    def test_install_preserves_old_for_revert(self):
        host = SimulatedHost("t")
        host.fs.write("/etc/f", b"old")
        host.fs.fsync()
        daemon = UpdateDaemon(host)
        target = staged_update(daemon, {"/etc/f": b"new"})
        assert daemon.execute(target) == 0
        assert host.fs.read("/etc/f") == b"new"
        # revert puts the old file back
        daemon.receive_script(
            InstallScript().revert("/etc/f").serialize())
        daemon.flush()
        assert daemon.execute(target) == 0
        assert host.fs.read("/etc/f") == b"old"

    def test_missing_tar_member_fails(self):
        host = SimulatedHost("t")
        daemon = UpdateDaemon(host)
        payload = make_tar({"/etc/present": b"x"})
        daemon.authenticate("moira")
        daemon.receive_file("/tmp/out", payload, checksum(payload))
        daemon.receive_script(
            InstallScript().extract("/etc/absent").serialize())
        daemon.flush()
        assert daemon.execute("/tmp/out") == MR_TAR_FAIL

    def test_exec_command_dispatch(self):
        host = SimulatedHost("t")
        daemon = UpdateDaemon(host)
        ran = []
        daemon.register_command("restart", lambda: (ran.append(1), 0)[1])
        target = staged_update(daemon, {"/etc/f": b"x"}, post="restart")
        assert daemon.execute(target) == 0
        assert ran == [1]

    def test_failing_command_reports_script_failed(self):
        host = SimulatedHost("t")
        daemon = UpdateDaemon(host)
        daemon.register_command("bad", lambda: 1)
        target = staged_update(daemon, {"/etc/f": b"x"}, post="bad")
        assert daemon.execute(target) == MR_SCRIPT_FAILED

    def test_unknown_command_fails(self):
        host = SimulatedHost("t")
        daemon = UpdateDaemon(host)
        target = staged_update(daemon, {"/etc/f": b"x"}, post="nothere")
        assert daemon.execute(target) == MR_SCRIPT_FAILED

    def test_signal_step(self):
        host = SimulatedHost("t")
        got = []
        host.spawn("hesiod", on_signal=got.append,
                   pid_file="/etc/hesiod.pid")
        daemon = UpdateDaemon(host)
        daemon.authenticate("moira")
        daemon.receive_script(
            InstallScript().signal("/etc/hesiod.pid", 1).serialize())
        daemon.flush()
        assert daemon.execute("/tmp/none") == 0
        assert got == [1]

    def test_execute_without_script_is_oconfig(self):
        host = SimulatedHost("t")
        daemon = UpdateDaemon(host)
        assert daemon.execute("/tmp/out") == MR_OCONFIG

    def test_stale_update_cleanup(self):
        host = SimulatedHost("t")
        daemon = UpdateDaemon(host)
        host.fs.write("/tmp/out.moira_update", b"half-written")
        host.fs.fsync()
        assert daemon.cleanup_stale_update("/tmp/out")
        assert not host.fs.exists("/tmp/out.moira_update")
        assert not daemon.cleanup_stale_update("/tmp/out")

    def test_script_serialization_roundtrip(self):
        script = (InstallScript().extract("/a").install("/a")
                  .signal("/p.pid", 9).execute("cmd"))
        restored = InstallScript.deserialize(script.serialize())
        assert restored.steps == [("extract", "/a"), ("install", "/a"),
                                  ("signal", "/p.pid", "9"),
                                  ("exec", "cmd")]

    def test_crash_mid_install_leaves_consistent_state(self):
        """§5.9 B: "either the file will have been installed or it will
        not have been installed" — never a torn file."""
        host = SimulatedHost("t")
        host.fs.write("/etc/f", b"old")
        host.fs.fsync()
        daemon = UpdateDaemon(host)
        target = staged_update(daemon, {"/etc/f": b"new"})
        host.crash_after_syncs(1)  # dies at the end-of-install fsync
        with pytest.raises(HostDown):
            daemon.execute(target)
        host.reboot()
        assert host.fs.read("/etc/f") in (b"old", b"new")
